//! The overlay: peer table, neighbour graph, discovery, and message routing.
//!
//! Two discovery modes are implemented behind one API so experiments can
//! compare them on identical topologies (paper §3.7):
//!
//! * [`DiscoveryMode::Flooding`] — Gnutella-style TTL-limited flooding with
//!   duplicate suppression. "A number of P2P application utilise a
//!   'flooding' mechanism to forward messages to maximise reachability.
//!   This severely restricts the scalability of such approaches."
//! * [`DiscoveryMode::Rendezvous`] — JXTA-style super-peers: edge peers
//!   publish advertisements to an assigned rendezvous; queries visit the
//!   rendezvous tier only.
//! * [`DiscoveryMode::Routed`] — Kademlia-style structured discovery over
//!   the `triana-overlay` crate: XOR-routed iterative lookups against a
//!   provider-record DHT, with a super-peer tier carrying flaky peers'
//!   traffic (see `crate::routed`).

use crate::advert::Advertisement;
use crate::message::{LookupId, Message, P2pEvent, QueryId, QueryKind};
use crate::pipe::{PipeError, PipeId, PipeTable};
use crate::routed::{ActiveLookup, RoutedConfig, RoutedNode};
use netsim::{HostId, Network, Pcg32, Sim, SimTime};
use obs::Obs;
use std::collections::{HashMap, HashSet, VecDeque};
use std::fmt;

/// Index of a peer within the overlay.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PeerId(pub u32);

impl fmt::Debug for PeerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl fmt::Display for PeerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// How discovery queries propagate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DiscoveryMode {
    /// TTL-limited flooding over the neighbour graph.
    Flooding,
    /// Publish/lookup via rendezvous super-peers.
    Rendezvous,
    /// Kademlia-routed iterative lookups over the structured overlay.
    Routed,
}

/// Per-peer bound on the flood duplicate-suppression cache: old query IDs
/// are forgotten FIFO past this many, so a long-lived peer's memory does
/// not grow with the total number of queries ever flooded.
pub const SEEN_CACHE_CAP: usize = 4096;

/// Bounded duplicate-suppression cache: a FIFO window over the most
/// recent query IDs a peer has processed. `insert` returns `false` for a
/// duplicate within the window.
pub(crate) struct SeenCache {
    set: HashSet<QueryId>,
    order: VecDeque<QueryId>,
    cap: usize,
}

impl SeenCache {
    pub(crate) fn new(cap: usize) -> Self {
        SeenCache {
            set: HashSet::new(),
            order: VecDeque::new(),
            cap,
        }
    }

    /// Record a query ID; `false` means it was already in the window
    /// (a duplicate to suppress).
    pub(crate) fn insert(&mut self, id: QueryId) -> bool {
        if !self.set.insert(id) {
            return false;
        }
        self.order.push_back(id);
        while self.order.len() > self.cap {
            if let Some(old) = self.order.pop_front() {
                self.set.remove(&old);
            }
        }
        true
    }

    pub(crate) fn len(&self) -> usize {
        self.order.len()
    }

    pub(crate) fn clear(&mut self) {
        self.set.clear();
        self.order.clear();
    }
}

pub(crate) struct PeerState {
    pub(crate) host: HostId,
    pub(crate) neighbors: Vec<PeerId>,
    /// Locally published advertisements.
    pub(crate) ads: Vec<Advertisement>,
    /// Assigned rendezvous (edge peers in rendezvous mode; cold peers in
    /// routed mode).
    pub(crate) rendezvous: Option<PeerId>,
    pub(crate) is_rendezvous: bool,
    /// Advertisement cache (rendezvous peers only).
    pub(crate) cache: Vec<Advertisement>,
    /// Flood duplicate suppression (bounded FIFO window).
    pub(crate) seen: SeenCache,
    /// Structured-overlay state (routed mode; `None` until bootstrap).
    pub(crate) routed: Option<RoutedNode>,
}

/// Progress record of one discovery query.
#[derive(Clone, Debug)]
pub struct QueryStatus {
    pub kind: QueryKind,
    pub origin: PeerId,
    pub sent_at: SimTime,
    /// (arrival time, advert) per hit, in arrival order. May contain the
    /// same provider twice if it is reachable via several paths.
    pub hits: Vec<(SimTime, Advertisement)>,
    /// Overlay messages attributed to this query (queries + hits).
    pub messages: u64,
    /// Distinct peers that processed the query.
    pub peers_visited: u64,
    /// Routed mode only: the longest referral chain the iterative lookup
    /// followed (the structured analogue of flood TTL consumption). Zero
    /// in flooding/rendezvous mode and until the lookup resolves.
    pub hops: u64,
}

impl QueryStatus {
    /// Distinct providers among the hits.
    pub fn providers(&self) -> Vec<PeerId> {
        let mut seen = HashSet::new();
        self.hits
            .iter()
            .map(|(_, ad)| ad.peer())
            .filter(|p| seen.insert(*p))
            .collect()
    }

    /// Like [`QueryStatus::providers`], but drops hits whose advertisement
    /// has expired by `now` — between query emission and the end of the
    /// discovery window the TTL may lapse, and an expired advert carries no
    /// promise that the provider still holds the content. Returns the live
    /// providers plus the number of hits skipped as expired.
    pub fn providers_live(&self, now: SimTime) -> (Vec<PeerId>, u64) {
        let mut seen = HashSet::new();
        let mut expired = 0u64;
        let mut live = Vec::new();
        for (_, ad) in &self.hits {
            if ad.is_expired(now) {
                expired += 1;
                continue;
            }
            let p = ad.peer();
            if seen.insert(p) {
                live.push(p);
            }
        }
        (live, expired)
    }

    /// Latency from query emission to first hit.
    pub fn first_hit_latency(&self) -> Option<netsim::Duration> {
        self.hits.first().map(|(t, _)| t.since(self.sent_at))
    }
}

/// A notification surfaced to the embedding layer by [`P2p::handle`].
#[derive(Clone, Debug, PartialEq)]
pub enum Incoming {
    /// A query hit arrived at the origin (also recorded in [`QueryStatus`]).
    QueryHit { id: QueryId, advert: Advertisement },
    /// Application data arrived on a pipe.
    PipeData {
        to: PeerId,
        pipe: PipeId,
        tag: u64,
        bytes: u64,
    },
    /// Replicated-scheduler gossip arrived: either one delta (`count == 1`,
    /// `sync == false`) or an anti-entropy batch covering log entries
    /// `[seq, seq + count)`. The embedding layer applies the entries out of
    /// its shared delta log.
    Orch {
        to: PeerId,
        seq: u64,
        count: u64,
        sync: bool,
    },
}

/// The overlay network state.
pub struct P2p {
    pub mode: DiscoveryMode,
    pub(crate) peers: Vec<PeerState>,
    pub pipes: PipeTable,
    pub queries: HashMap<QueryId, QueryStatus>,
    next_query: u64,
    pub(crate) rendezvous_peers: Vec<PeerId>,
    /// Messages that could not be sent because an endpoint was offline.
    pub send_failures: u64,
    pub(crate) obs: Obs,
    /// Tuning for routed mode (read at bootstrap and per lookup).
    pub routed_cfg: RoutedConfig,
    /// In-progress iterative lookups, keyed by wire lookup ID.
    pub(crate) lookups: HashMap<LookupId, ActiveLookup>,
    pub(crate) next_lookup: u64,
    /// How many peers had routed state at the last bootstrap (lazy
    /// re-bootstrap trigger when peers are added afterwards).
    pub(crate) routed_peers: usize,
    /// Fault-injection hook: consulted before every overlay send with
    /// `(now, from, to, &msg)`; returning `false` silently discards the
    /// message before it touches the network (metered as
    /// `p2p.messages_filtered`, *not* as sent).
    #[allow(clippy::type_complexity)]
    send_filter: Option<Box<dyn FnMut(SimTime, PeerId, PeerId, &Message) -> bool>>,
    /// Recycled `closer` buffers for FIND reply messages: serving a
    /// lookup step fills one, the reply handler drains it and hands the
    /// capacity back, so steady-state lookup traffic builds replies
    /// without allocating.
    pub(crate) reply_contact_pool: Vec<Vec<(u64, PeerId)>>,
    /// Recycled `providers` buffers, same lifecycle as the contact pool.
    pub(crate) reply_advert_pool: Vec<Vec<Advertisement>>,
    /// Scratch for routing-table `closest_into` on the serve path.
    pub(crate) closest_scratch: Vec<::overlay::Contact>,
}

impl P2p {
    pub fn new(mode: DiscoveryMode) -> Self {
        P2p {
            mode,
            peers: Vec::new(),
            pipes: PipeTable::new(),
            queries: HashMap::new(),
            next_query: 0,
            rendezvous_peers: Vec::new(),
            send_failures: 0,
            obs: Obs::disabled(),
            routed_cfg: RoutedConfig::default(),
            lookups: HashMap::new(),
            next_lookup: 0,
            routed_peers: 0,
            send_filter: None,
            reply_contact_pool: Vec::new(),
            reply_advert_pool: Vec::new(),
            closest_scratch: Vec::new(),
        }
    }

    /// Cap on each reply-buffer pool: enough for any realistic number of
    /// concurrently in-flight replies; beyond it, returned buffers are
    /// simply dropped.
    const REPLY_POOL_CAP: usize = 256;

    pub(crate) fn take_contact_buf(&mut self) -> Vec<(u64, PeerId)> {
        self.reply_contact_pool.pop().unwrap_or_default()
    }

    pub(crate) fn recycle_contact_buf(&mut self, mut buf: Vec<(u64, PeerId)>) {
        if self.reply_contact_pool.len() < Self::REPLY_POOL_CAP {
            buf.clear();
            self.reply_contact_pool.push(buf);
        }
    }

    pub(crate) fn take_advert_buf(&mut self) -> Vec<Advertisement> {
        self.reply_advert_pool.pop().unwrap_or_default()
    }

    pub(crate) fn recycle_advert_buf(&mut self, mut buf: Vec<Advertisement>) {
        if self.reply_advert_pool.len() < Self::REPLY_POOL_CAP {
            buf.clear();
            self.reply_advert_pool.push(buf);
        }
    }

    /// Install a fault-injection send filter (see the `send_filter` field
    /// docs). Replaces any previous filter.
    #[allow(clippy::type_complexity)]
    pub fn set_send_filter(
        &mut self,
        filter: Box<dyn FnMut(SimTime, PeerId, PeerId, &Message) -> bool>,
    ) {
        self.send_filter = Some(filter);
    }

    /// Remove the send filter.
    pub fn clear_send_filter(&mut self) {
        self.send_filter = None;
    }

    /// Attach an observability handle; overlay message traffic, queries,
    /// advert cache activity and send failures are recorded through it.
    pub fn set_obs(&mut self, obs: Obs) {
        self.obs = obs;
    }

    /// Enrol a host as a peer.
    pub fn add_peer(&mut self, host: HostId) -> PeerId {
        let id = PeerId(self.peers.len() as u32);
        self.peers.push(PeerState {
            host,
            neighbors: Vec::new(),
            ads: Vec::new(),
            rendezvous: None,
            is_rendezvous: false,
            cache: Vec::new(),
            seen: SeenCache::new(SEEN_CACHE_CAP),
            routed: None,
        });
        id
    }

    pub fn len(&self) -> usize {
        self.peers.len()
    }

    pub fn is_empty(&self) -> bool {
        self.peers.is_empty()
    }

    pub fn host_of(&self, p: PeerId) -> HostId {
        self.peers[p.0 as usize].host
    }

    pub fn peer_ids(&self) -> impl Iterator<Item = PeerId> + '_ {
        (0..self.peers.len() as u32).map(PeerId)
    }

    pub fn neighbors(&self, p: PeerId) -> &[PeerId] {
        &self.peers[p.0 as usize].neighbors
    }

    pub fn is_rendezvous(&self, p: PeerId) -> bool {
        self.peers[p.0 as usize].is_rendezvous
    }

    /// Wire the neighbour graph: a ring (guaranteeing connectivity) plus
    /// random chords until each peer has ~`degree` neighbours. Deterministic
    /// for a given rng stream.
    pub fn wire_random(&mut self, degree: usize, rng: &mut Pcg32) {
        let n = self.peers.len();
        if n < 2 {
            return;
        }
        let connect = |a: usize, b: usize, peers: &mut Vec<PeerState>| {
            if a == b {
                return;
            }
            let (pa, pb) = (PeerId(a as u32), PeerId(b as u32));
            if !peers[a].neighbors.contains(&pb) {
                peers[a].neighbors.push(pb);
                peers[b].neighbors.push(pa);
            }
        };
        for i in 0..n {
            connect(i, (i + 1) % n, &mut self.peers);
        }
        for i in 0..n {
            while self.peers[i].neighbors.len() < degree.min(n - 1) {
                let j = rng.below(n as u64) as usize;
                if j == i || self.peers[i].neighbors.contains(&PeerId(j as u32)) {
                    // Avoid spinning forever on small dense graphs.
                    if self.peers[i].neighbors.len() >= n - 1 {
                        break;
                    }
                    continue;
                }
                connect(i, j, &mut self.peers);
            }
        }
    }

    /// Promote `count` peers (spread deterministically by the rng) to
    /// rendezvous, and assign every edge peer its rendezvous.
    pub fn assign_rendezvous(&mut self, count: usize, rng: &mut Pcg32) {
        assert!(count >= 1, "need at least one rendezvous");
        let n = self.peers.len();
        let mut idx: Vec<usize> = (0..n).collect();
        rng.shuffle(&mut idx);
        self.rendezvous_peers = idx[..count.min(n)]
            .iter()
            .map(|&i| PeerId(i as u32))
            .collect();
        for &r in &self.rendezvous_peers {
            self.peers[r.0 as usize].is_rendezvous = true;
        }
        for i in 0..n {
            if !self.peers[i].is_rendezvous {
                let r =
                    self.rendezvous_peers[rng.below(self.rendezvous_peers.len() as u64) as usize];
                self.peers[i].rendezvous = Some(r);
            }
        }
    }

    pub fn rendezvous_peers(&self) -> &[PeerId] {
        &self.rendezvous_peers
    }

    /// Query IDs currently held in `p`'s duplicate-suppression window
    /// (bounded by [`SEEN_CACHE_CAP`]).
    pub fn seen_cache_len(&self, p: PeerId) -> usize {
        self.peers[p.0 as usize].seen.len()
    }

    pub(crate) fn send<E: From<P2pEvent>>(
        &mut self,
        sim: &mut Sim<E>,
        net: &mut Network,
        from: PeerId,
        to: PeerId,
        msg: Message,
    ) -> bool {
        if let Some(filter) = self.send_filter.as_mut() {
            if !filter(sim.now(), from, to, &msg) {
                self.obs.incr("p2p.messages_filtered");
                return false;
            }
        }
        // Attribute query traffic. Routed lookup messages charge the query
        // that spawned the lookup (publish-driven lookups charge nobody).
        let qid = match &msg {
            Message::Query { id, .. } | Message::QueryHit { id, .. } => Some(*id),
            Message::FindNode { lid, .. }
            | Message::FindNodeReply { lid, .. }
            | Message::FindValue { lid, .. }
            | Message::FindValueReply { lid, .. } => {
                self.lookups.get(lid).and_then(ActiveLookup::query_id)
            }
            _ => None,
        };
        let bytes = msg.wire_size();
        let src = self.peers[from.0 as usize].host;
        let dst = self.peers[to.0 as usize].host;
        match net.transfer(sim.now(), src, dst, bytes) {
            Ok(delay) => {
                if let Some(id) = qid {
                    if let Some(q) = self.queries.get_mut(&id) {
                        q.messages += 1;
                    }
                }
                self.obs.incr("p2p.messages_sent");
                self.obs.add("p2p.bytes_sent", bytes);
                self.obs.incr(match &msg {
                    Message::Query { .. } => "p2p.sent.query",
                    Message::QueryHit { .. } => "p2p.sent.query_hit",
                    Message::Publish { .. } => "p2p.sent.publish",
                    Message::PipeData { .. } => "p2p.sent.pipe_data",
                    Message::OrchDelta { .. } => "p2p.sent.orch_delta",
                    Message::OrchSync { .. } => "p2p.sent.orch_sync",
                    Message::FindNode { .. } => "p2p.sent.find_node",
                    Message::FindNodeReply { .. } => "p2p.sent.find_node_reply",
                    Message::FindValue { .. } => "p2p.sent.find_value",
                    Message::FindValueReply { .. } => "p2p.sent.find_value_reply",
                    Message::StoreProvider { .. } => "p2p.sent.store_provider",
                });
                sim.schedule(delay, P2pEvent::Delivered { to, msg }.into());
                true
            }
            Err(_) => {
                self.send_failures += 1;
                self.obs.incr("p2p.send_failures");
                false
            }
        }
    }

    /// Publish an advertisement: stored locally; in rendezvous mode also
    /// pushed to the peer's rendezvous cache (or its own cache if it *is*
    /// a rendezvous); in routed mode stored on the k DHT nodes closest to
    /// each of the advert's derived keys (cold peers delegate to their hot
    /// rendezvous).
    pub fn publish<E: From<P2pEvent>>(
        &mut self,
        sim: &mut Sim<E>,
        net: &mut Network,
        peer: PeerId,
        advert: Advertisement,
    ) {
        self.obs.incr("p2p.publishes");
        self.peers[peer.0 as usize].ads.push(advert.clone());
        match self.mode {
            DiscoveryMode::Flooding => {}
            DiscoveryMode::Rendezvous => {
                if self.peers[peer.0 as usize].is_rendezvous {
                    self.obs.incr("p2p.advert_cache_inserts");
                    self.peers[peer.0 as usize].cache.push(advert);
                } else if let Some(r) = self.peers[peer.0 as usize].rendezvous {
                    self.send(sim, net, peer, r, Message::Publish { advert });
                }
            }
            DiscoveryMode::Routed => {
                self.ensure_routed(sim);
                self.routed_publish(sim, net, peer, advert);
            }
        }
    }

    /// Issue a discovery query from `origin`. `ttl` bounds flooding depth
    /// (ignored beyond the rendezvous tier in rendezvous mode).
    pub fn query<E: From<P2pEvent>>(
        &mut self,
        sim: &mut Sim<E>,
        net: &mut Network,
        origin: PeerId,
        kind: QueryKind,
        ttl: u8,
    ) -> QueryId {
        if self.mode == DiscoveryMode::Routed {
            self.ensure_routed(sim);
        }
        let id = QueryId(self.next_query);
        self.next_query += 1;
        self.obs.incr("p2p.queries");
        self.obs.event(sim.now().as_micros(), "p2p.query", || {
            format!("id={} origin={} ttl={ttl}", id.0, origin.0)
        });
        self.queries.insert(
            id,
            QueryStatus {
                kind: kind.clone(),
                origin,
                sent_at: sim.now(),
                hits: Vec::new(),
                messages: 0,
                peers_visited: 0,
                hops: 0,
            },
        );
        // The origin always answers from its own adverts first (free).
        self.local_hits(sim.now(), origin, id, &kind);
        self.peers[origin.0 as usize].seen.insert(id);
        if let Some(q) = self.queries.get_mut(&id) {
            q.peers_visited += 1;
        }
        match self.mode {
            DiscoveryMode::Flooding => {
                let neighbors = self.peers[origin.0 as usize].neighbors.clone();
                for nb in neighbors {
                    let msg = Message::Query {
                        id,
                        origin,
                        prev_hop: origin,
                        ttl,
                        kind: kind.clone(),
                    };
                    self.send(sim, net, origin, nb, msg);
                }
            }
            DiscoveryMode::Rendezvous => {
                let target = if self.peers[origin.0 as usize].is_rendezvous {
                    Some(origin)
                } else {
                    self.peers[origin.0 as usize].rendezvous
                };
                match target {
                    Some(r) if r != origin => {
                        let msg = Message::Query {
                            id,
                            origin,
                            prev_hop: origin,
                            ttl: 1,
                            kind,
                        };
                        self.send(sim, net, origin, r, msg);
                    }
                    Some(r) => {
                        // Origin is itself a rendezvous: answer from cache
                        // and fan out to the other rendezvous.
                        self.rendezvous_process(sim, net, r, id, origin, 1, kind);
                    }
                    None => {}
                }
            }
            DiscoveryMode::Routed => {
                self.routed_query(sim, net, origin, id, kind);
            }
        }
        id
    }

    /// Local adverts matching a query produce hits. At the origin these are
    /// recorded directly; elsewhere they are sent back over the network.
    fn local_hits(&mut self, now: SimTime, at: PeerId, id: QueryId, kind: &QueryKind) {
        let matching: Vec<Advertisement> = self.peers[at.0 as usize]
            .ads
            .iter()
            .filter(|ad| ad.matches(kind, now))
            .cloned()
            .collect();
        if let Some(q) = self.queries.get_mut(&id) {
            for ad in matching {
                q.hits.push((now, ad));
            }
        }
    }

    #[allow(clippy::too_many_arguments)] // internal dispatch: all fields are live routing state
    fn rendezvous_process<E: From<P2pEvent>>(
        &mut self,
        sim: &mut Sim<E>,
        net: &mut Network,
        rdv: PeerId,
        id: QueryId,
        origin: PeerId,
        ttl: u8,
        kind: QueryKind,
    ) {
        let now = sim.now();
        let cache_hits = self.peers[rdv.0 as usize]
            .cache
            .iter()
            .filter(|ad| ad.matches(&kind, now))
            .count() as u64;
        if cache_hits > 0 {
            self.obs.add("p2p.advert_cache_hits", cache_hits);
        }
        let hits: Vec<Advertisement> = self.peers[rdv.0 as usize]
            .cache
            .iter()
            .chain(self.peers[rdv.0 as usize].ads.iter())
            .filter(|ad| ad.matches(&kind, now))
            .cloned()
            .collect();
        for advert in hits {
            if rdv == origin {
                if let Some(q) = self.queries.get_mut(&id) {
                    q.hits.push((now, advert));
                }
            } else {
                self.send(sim, net, rdv, origin, Message::QueryHit { id, advert });
            }
        }
        if ttl > 0 {
            let others: Vec<PeerId> = self
                .rendezvous_peers
                .iter()
                .copied()
                .filter(|&r| r != rdv)
                .collect();
            for r in others {
                let msg = Message::Query {
                    id,
                    origin,
                    prev_hop: rdv,
                    ttl: ttl - 1,
                    kind: kind.clone(),
                };
                self.send(sim, net, rdv, r, msg);
            }
        }
    }

    /// Send application data over a bound pipe. Returns the routing error if
    /// the pipe is unknown/unbound, `Ok(false)` if the network dropped it.
    pub fn send_pipe<E: From<P2pEvent>>(
        &mut self,
        sim: &mut Sim<E>,
        net: &mut Network,
        from: PeerId,
        pipe: PipeId,
        tag: u64,
        bytes: u64,
    ) -> Result<bool, PipeError> {
        let receiver = self.pipes.route(pipe, from)?;
        Ok(self.send(
            sim,
            net,
            from,
            receiver,
            Message::PipeData { pipe, tag, bytes },
        ))
    }

    /// Send one replicated-scheduler gossip message (`OrchDelta` /
    /// `OrchSync`) peer-to-peer. Returns `false` if the network refused the
    /// transfer (offline endpoint or severed route) or the send filter
    /// discarded it — the caller's anti-entropy rounds repair the gap.
    pub fn gossip<E: From<P2pEvent>>(
        &mut self,
        sim: &mut Sim<E>,
        net: &mut Network,
        from: PeerId,
        to: PeerId,
        msg: Message,
    ) -> bool {
        debug_assert!(matches!(
            msg,
            Message::OrchDelta { .. } | Message::OrchSync { .. }
        ));
        self.send(sim, net, from, to, msg)
    }

    /// Process a delivered overlay event; returns notifications for the
    /// embedding layer.
    pub fn handle<E: From<P2pEvent>>(
        &mut self,
        sim: &mut Sim<E>,
        net: &mut Network,
        ev: P2pEvent,
    ) -> Vec<Incoming> {
        let (to, msg) = match ev {
            P2pEvent::Delivered { to, msg } => (to, msg),
            // A lookup timeout is a local timer, not a network message: it
            // fires even while its executor is offline (the lookup is then
            // abandoned) and is never metered as received/lost.
            P2pEvent::LookupTimeout {
                executor,
                lid,
                node,
            } => {
                self.routed_on_timeout(sim, net, executor, lid, node);
                return Vec::new();
            }
        };
        let mut out = Vec::new();
        // A message arriving at an offline peer is lost.
        if !net.is_online(self.peers[to.0 as usize].host) {
            self.obs.incr("p2p.messages_lost");
            return out;
        }
        self.obs.incr("p2p.messages_received");
        match msg {
            Message::Query {
                id,
                origin,
                prev_hop,
                ttl,
                kind,
            } => {
                if !self.peers[to.0 as usize].seen.insert(id) {
                    self.obs.incr("p2p.flood_duplicates");
                    return out; // duplicate
                }
                if let Some(q) = self.queries.get_mut(&id) {
                    q.peers_visited += 1;
                }
                match self.mode {
                    DiscoveryMode::Flooding => {
                        let now = sim.now();
                        let hits: Vec<Advertisement> = self.peers[to.0 as usize]
                            .ads
                            .iter()
                            .filter(|ad| ad.matches(&kind, now))
                            .cloned()
                            .collect();
                        for advert in hits {
                            self.send(sim, net, to, origin, Message::QueryHit { id, advert });
                        }
                        if ttl > 0 {
                            let fwd: Vec<PeerId> = self.peers[to.0 as usize]
                                .neighbors
                                .iter()
                                .copied()
                                .filter(|&nb| nb != prev_hop && nb != origin)
                                .collect();
                            for nb in fwd {
                                let msg = Message::Query {
                                    id,
                                    origin,
                                    prev_hop: to,
                                    ttl: ttl - 1,
                                    kind: kind.clone(),
                                };
                                self.send(sim, net, to, nb, msg);
                            }
                        }
                    }
                    DiscoveryMode::Rendezvous => {
                        self.rendezvous_process(sim, net, to, id, origin, ttl, kind);
                    }
                    DiscoveryMode::Routed => {
                        // A cold peer delegated its query here: this hot
                        // rendezvous runs the iterative lookup on its
                        // behalf; hits flow back to `origin` as QueryHits.
                        self.routed_start_query(sim, net, to, id, origin, &kind);
                    }
                }
            }
            Message::QueryHit { id, advert } => {
                if let Some(q) = self.queries.get_mut(&id) {
                    q.hits.push((sim.now(), advert.clone()));
                }
                self.obs.incr("p2p.query_hits");
                self.obs.event(sim.now().as_micros(), "p2p.query_hit", || {
                    format!("id={} provider={}", id.0, advert.peer().0)
                });
                out.push(Incoming::QueryHit { id, advert });
            }
            Message::Publish { advert } => {
                if self.mode == DiscoveryMode::Routed {
                    // A cold peer delegated its publish: the rendezvous
                    // drives the store lookups; the record still names the
                    // advert's own peer as provider.
                    self.routed_publish_lookups(sim, net, to, advert);
                } else {
                    self.obs.incr("p2p.advert_cache_inserts");
                    self.peers[to.0 as usize].cache.push(advert);
                }
            }
            Message::PipeData { pipe, tag, bytes } => {
                out.push(Incoming::PipeData {
                    to,
                    pipe,
                    tag,
                    bytes,
                });
            }
            Message::OrchDelta { seq, .. } => {
                out.push(Incoming::Orch {
                    to,
                    seq,
                    count: 1,
                    sync: false,
                });
            }
            Message::OrchSync {
                from_seq, count, ..
            } => {
                out.push(Incoming::Orch {
                    to,
                    seq: from_seq,
                    count,
                    sync: true,
                });
            }
            Message::FindNode { lid, from, key } => {
                self.routed_serve_find(sim, net, to, lid, from, key, None);
            }
            Message::FindValue {
                lid,
                from,
                key,
                kind,
            } => {
                self.routed_serve_find(sim, net, to, lid, from, key, Some(kind));
            }
            Message::FindNodeReply { lid, from, closer } => {
                self.routed_on_reply(sim, net, to, lid, from, closer, Vec::new(), &mut out);
            }
            Message::FindValueReply {
                lid,
                from,
                closer,
                providers,
            } => {
                self.routed_on_reply(sim, net, to, lid, from, closer, providers, &mut out);
            }
            Message::StoreProvider { from, key, advert } => {
                self.routed_store(net, sim.now(), to, from, key, advert);
            }
        }
        out
    }

    /// Drop expired advertisements from every peer's local set and
    /// rendezvous cache. Peers would run this periodically; experiments
    /// call it between phases. Returns how many ads were discarded.
    pub fn purge_expired(&mut self, now: SimTime) -> usize {
        let mut dropped = 0;
        for p in &mut self.peers {
            let before = p.ads.len() + p.cache.len();
            p.ads.retain(|ad| !ad.is_expired(now));
            p.cache.retain(|ad| !ad.is_expired(now));
            dropped += before - p.ads.len() - p.cache.len();
            if let Some(r) = p.routed.as_mut() {
                dropped += r.store.purge_expired(now);
            }
        }
        if dropped > 0 {
            self.obs.add("p2p.adverts_purged", dropped as u64);
        }
        dropped
    }

    /// Forget all seen-query state (between experiment repetitions).
    /// In-flight routed lookups are abandoned with their queries.
    pub fn reset_query_state(&mut self) {
        for p in &mut self.peers {
            p.seen.clear();
        }
        self.queries.clear();
        self.lookups.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::advert::{AdvertBody, BlobAdvert, PeerAdvert};
    use netsim::{HostSpec, LinkClass};

    type Ev = P2pEvent;

    struct World {
        sim: Sim<Ev>,
        net: Network,
        p2p: P2p,
    }

    fn world(n: usize, mode: DiscoveryMode) -> World {
        let mut net = Network::new();
        let mut p2p = P2p::new(mode);
        for _ in 0..n {
            let mut spec = HostSpec::reference_pc();
            spec.link = LinkClass::Dsl.spec();
            let h = net.add_host(spec);
            p2p.add_peer(h);
        }
        World {
            sim: Sim::new(7),
            net,
            p2p,
        }
    }

    fn run(w: &mut World) -> Vec<Incoming> {
        let mut all = Vec::new();
        // Drain with an explicit loop to keep borrows separate.
        while let Some(ev) = w.sim.step() {
            all.extend(w.p2p.handle(&mut w.sim, &mut w.net, ev));
        }
        all
    }

    fn triana_ad(peer: PeerId, expires: SimTime) -> Advertisement {
        Advertisement {
            body: AdvertBody::Peer(PeerAdvert {
                peer,
                cpu_ghz: 2.0,
                free_ram_mib: 512,
                services: vec!["triana".into()],
            }),
            expires,
        }
    }

    #[test]
    fn flooding_finds_provider_on_ring() {
        let mut w = world(8, DiscoveryMode::Flooding);
        let mut rng = Pcg32::new(1, 1);
        w.p2p.wire_random(2, &mut rng); // pure ring
        let provider = PeerId(4);
        let ad = triana_ad(provider, SimTime::from_secs(3600));
        w.p2p.peers[provider.0 as usize].ads.push(ad);
        let qid = w.p2p.query(
            &mut w.sim,
            &mut w.net,
            PeerId(0),
            QueryKind::ByService("triana".into()),
            7,
        );
        run(&mut w);
        let q = &w.p2p.queries[&qid];
        assert_eq!(q.providers(), vec![provider]);
        assert!(q.first_hit_latency().unwrap().as_micros() > 0);
        // Ring of 8, ttl 7: everyone visited.
        assert_eq!(q.peers_visited, 8);
    }

    #[test]
    fn ttl_limits_flood_reach() {
        let mut w = world(16, DiscoveryMode::Flooding);
        let mut rng = Pcg32::new(1, 1);
        w.p2p.wire_random(2, &mut rng); // ring
        let far = PeerId(8); // 8 hops away on a 16-ring
        let ad = triana_ad(far, SimTime::from_secs(3600));
        w.p2p.peers[far.0 as usize].ads.push(ad);
        let qid = w.p2p.query(
            &mut w.sim,
            &mut w.net,
            PeerId(0),
            QueryKind::ByService("triana".into()),
            3,
        );
        run(&mut w);
        let q = &w.p2p.queries[&qid];
        assert!(q.hits.is_empty(), "ttl 3 cannot reach 8 hops");
        // ttl 3 on a ring: origin + 4 peers each side = 9 visited.
        assert_eq!(q.peers_visited, 9);
    }

    #[test]
    fn duplicate_suppression_bounds_messages() {
        let mut w = world(10, DiscoveryMode::Flooding);
        let mut rng = Pcg32::new(2, 1);
        w.p2p.wire_random(4, &mut rng);
        let qid = w.p2p.query(
            &mut w.sim,
            &mut w.net,
            PeerId(0),
            QueryKind::ByService("none".into()),
            8,
        );
        run(&mut w);
        let q = &w.p2p.queries[&qid];
        // Each peer forwards a given query at most once to each neighbour:
        // messages bounded by sum of degrees (~edges * 2).
        let edge_bound: u64 = (0..10)
            .map(|i| w.p2p.neighbors(PeerId(i)).len() as u64)
            .sum();
        assert!(q.messages <= edge_bound, "{} > {}", q.messages, edge_bound);
        assert_eq!(q.peers_visited, 10);
    }

    #[test]
    fn rendezvous_uses_far_fewer_messages_than_flooding() {
        let n = 40;
        let mk = |mode| {
            let mut w = world(n, mode);
            let mut rng = Pcg32::new(3, 1);
            w.p2p.wire_random(4, &mut rng);
            if mode == DiscoveryMode::Rendezvous {
                let mut r2 = Pcg32::new(4, 2);
                w.p2p.assign_rendezvous(3, &mut r2);
            }
            let provider = PeerId(17);
            let ad = triana_ad(provider, SimTime::from_secs(3600));
            w.p2p.publish(&mut w.sim, &mut w.net, provider, ad);
            // Let the publish propagate before querying.
            while let Some(ev) = w.sim.step() {
                w.p2p.handle(&mut w.sim, &mut w.net, ev);
            }
            let qid = w.p2p.query(
                &mut w.sim,
                &mut w.net,
                PeerId(0),
                QueryKind::ByService("triana".into()),
                8,
            );
            run(&mut w);
            let q = &w.p2p.queries[&qid];
            (q.messages, q.providers())
        };
        let (flood_msgs, flood_prov) = mk(DiscoveryMode::Flooding);
        let (rdv_msgs, rdv_prov) = mk(DiscoveryMode::Rendezvous);
        assert_eq!(flood_prov, vec![PeerId(17)]);
        assert_eq!(rdv_prov, vec![PeerId(17)]);
        assert!(
            rdv_msgs * 4 < flood_msgs,
            "rendezvous {rdv_msgs} vs flooding {flood_msgs}"
        );
    }

    #[test]
    fn origin_answers_its_own_query_locally() {
        let mut w = world(4, DiscoveryMode::Flooding);
        let mut rng = Pcg32::new(5, 1);
        w.p2p.wire_random(2, &mut rng);
        let me = PeerId(2);
        let ad = triana_ad(me, SimTime::from_secs(10));
        w.p2p.peers[me.0 as usize].ads.push(ad);
        let qid = w.p2p.query(
            &mut w.sim,
            &mut w.net,
            me,
            QueryKind::ByService("triana".into()),
            0,
        );
        // No network round-trip needed for the local hit.
        let q = &w.p2p.queries[&qid];
        assert_eq!(q.hits.len(), 1);
        assert_eq!(q.first_hit_latency().unwrap(), netsim::Duration::ZERO);
    }

    #[test]
    fn offline_peer_drops_inbound_query() {
        let mut w = world(3, DiscoveryMode::Flooding);
        let mut rng = Pcg32::new(6, 1);
        w.p2p.wire_random(2, &mut rng);
        let provider = PeerId(1);
        let ad = triana_ad(provider, SimTime::from_secs(3600));
        w.p2p.peers[provider.0 as usize].ads.push(ad);
        // Take provider offline *after* the query is sent but before
        // delivery: the message is lost at arrival.
        let qid = w.p2p.query(
            &mut w.sim,
            &mut w.net,
            PeerId(0),
            QueryKind::ByService("triana".into()),
            2,
        );
        let host = w.p2p.host_of(provider);
        w.net.set_online(host, false);
        run(&mut w);
        let q = &w.p2p.queries[&qid];
        assert!(q.providers().is_empty());
    }

    #[test]
    fn pipe_data_flows_end_to_end() {
        let mut w = world(2, DiscoveryMode::Flooding);
        let pipe = w.p2p.pipes.advertise("conn.0", PeerId(1)).unwrap();
        w.p2p.pipes.bind(pipe, PeerId(0)).unwrap();
        let sent = w
            .p2p
            .send_pipe(&mut w.sim, &mut w.net, PeerId(0), pipe, 99, 10_000)
            .unwrap();
        assert!(sent);
        let incoming = run(&mut w);
        assert_eq!(
            incoming,
            vec![Incoming::PipeData {
                to: PeerId(1),
                pipe,
                tag: 99,
                bytes: 10_000
            }]
        );
        // Larger payloads take longer on consumer links.
        let t_small = w.sim.now();
        w.p2p
            .send_pipe(&mut w.sim, &mut w.net, PeerId(0), pipe, 100, 10_000_000)
            .unwrap();
        run(&mut w);
        assert!(w.sim.now().since(t_small).as_secs_f64() > 1.0);
    }

    #[test]
    fn unbound_pipe_send_is_an_error() {
        let mut w = world(2, DiscoveryMode::Flooding);
        let pipe = w.p2p.pipes.advertise("conn.1", PeerId(1)).unwrap();
        assert!(w
            .p2p
            .send_pipe(&mut w.sim, &mut w.net, PeerId(0), pipe, 0, 10)
            .is_err());
    }

    #[test]
    fn expired_ads_are_not_discovered() {
        let mut w = world(4, DiscoveryMode::Flooding);
        let mut rng = Pcg32::new(8, 1);
        w.p2p.wire_random(2, &mut rng);
        let provider = PeerId(2);
        let ad = triana_ad(provider, SimTime(1)); // expires almost immediately
        w.p2p.peers[provider.0 as usize].ads.push(ad);
        let qid = w.p2p.query(
            &mut w.sim,
            &mut w.net,
            PeerId(0),
            QueryKind::ByService("triana".into()),
            4,
        );
        run(&mut w);
        assert!(w.p2p.queries[&qid].hits.is_empty());
    }

    #[test]
    fn wire_random_produces_connected_symmetric_graph() {
        let mut w = world(30, DiscoveryMode::Flooding);
        let mut rng = Pcg32::new(9, 1);
        w.p2p.wire_random(4, &mut rng);
        // Symmetry
        for p in 0..30u32 {
            for &nb in w.p2p.neighbors(PeerId(p)) {
                assert!(w.p2p.neighbors(nb).contains(&PeerId(p)));
            }
            assert!(w.p2p.neighbors(PeerId(p)).len() >= 4);
        }
        // Connectivity via BFS
        let mut seen = [false; 30];
        let mut stack = Vec::from([PeerId(0)]);
        seen[0] = true;
        while let Some(p) = stack.pop() {
            for &nb in w.p2p.neighbors(p) {
                if !seen[nb.0 as usize] {
                    seen[nb.0 as usize] = true;
                    stack.push(nb);
                }
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn purge_expired_empties_caches() {
        let mut w = world(4, DiscoveryMode::Rendezvous);
        let mut rng = Pcg32::new(12, 1);
        w.p2p.wire_random(2, &mut rng);
        w.p2p.assign_rendezvous(1, &mut rng);
        let short = triana_ad(PeerId(1), SimTime::from_secs(10));
        let long = triana_ad(PeerId(2), SimTime::from_secs(10_000));
        w.p2p.publish(&mut w.sim, &mut w.net, PeerId(1), short);
        w.p2p.publish(&mut w.sim, &mut w.net, PeerId(2), long);
        run(&mut w);
        // After the short ad expires, purge drops it everywhere (local set
        // + rendezvous cache) but keeps the live one.
        let dropped = w.p2p.purge_expired(SimTime::from_secs(100));
        assert!(dropped >= 1, "dropped {dropped}");
        let dropped_again = w.p2p.purge_expired(SimTime::from_secs(100));
        assert_eq!(dropped_again, 0, "purge is idempotent");
        // The live ad is still discoverable.
        let qid = w.p2p.query(
            &mut w.sim,
            &mut w.net,
            PeerId(0),
            QueryKind::ByService("triana".into()),
            4,
        );
        run(&mut w);
        assert_eq!(w.p2p.queries[&qid].providers(), vec![PeerId(2)]);
    }

    #[test]
    fn purge_expired_ttl_boundary_matches_obs_counter() {
        let mut w = world(3, DiscoveryMode::Flooding);
        let observer = Obs::enabled();
        w.p2p.set_obs(observer.clone());
        let ttl_end = SimTime::from_secs(100);
        let short = triana_ad(PeerId(1), ttl_end);
        let long = triana_ad(PeerId(2), SimTime::from_secs(200));
        w.p2p.publish(&mut w.sim, &mut w.net, PeerId(1), short);
        w.p2p.publish(&mut w.sim, &mut w.net, PeerId(2), long);
        // One tick before TTL the advert is still alive…
        assert_eq!(w.p2p.purge_expired(SimTime(ttl_end.0 - 1)), 0);
        let r = observer.registry().unwrap();
        assert_eq!(r.counter_value("p2p.adverts_purged"), 0);
        // …at exactly TTL it is expired (`now >= expires`) and purged.
        assert_eq!(w.p2p.purge_expired(ttl_end), 1);
        assert_eq!(r.counter_value("p2p.adverts_purged"), 1);
        // One tick past TTL nothing is left of it; the counter stays in
        // step with the cumulative purge count.
        assert_eq!(w.p2p.purge_expired(SimTime(ttl_end.0 + 1)), 0);
        assert_eq!(r.counter_value("p2p.adverts_purged"), 1);
        assert_eq!(w.p2p.purge_expired(SimTime::from_secs(200)), 1);
        assert_eq!(r.counter_value("p2p.adverts_purged"), 2);
    }

    #[test]
    fn blob_providers_discovered_by_hash() {
        let mut w = world(6, DiscoveryMode::Flooding);
        let mut rng = Pcg32::new(21, 1);
        w.p2p.wire_random(3, &mut rng);
        let provider = PeerId(4);
        let ad = Advertisement {
            body: AdvertBody::Blob(BlobAdvert {
                blob: 0xFEED,
                size_bytes: 9_000,
                chunks: 3,
                provider,
            }),
            expires: SimTime::from_secs(3_600),
        };
        w.p2p.publish(&mut w.sim, &mut w.net, provider, ad);
        let qid = w.p2p.query(
            &mut w.sim,
            &mut w.net,
            PeerId(0),
            QueryKind::ByBlob { hash: 0xFEED },
            6,
        );
        run(&mut w);
        assert_eq!(w.p2p.queries[&qid].providers(), vec![provider]);
        // A different hash finds nothing.
        let miss = w.p2p.query(
            &mut w.sim,
            &mut w.net,
            PeerId(0),
            QueryKind::ByBlob { hash: 0xBEEF },
            6,
        );
        run(&mut w);
        assert!(w.p2p.queries[&miss].hits.is_empty());
    }

    #[test]
    fn obs_counts_discovery_traffic() {
        let mut w = world(8, DiscoveryMode::Rendezvous);
        let observer = Obs::enabled();
        w.p2p.set_obs(observer.clone());
        let mut rng = Pcg32::new(15, 1);
        w.p2p.wire_random(2, &mut rng);
        w.p2p.assign_rendezvous(2, &mut rng);
        let provider = PeerId(5);
        let ad = triana_ad(provider, SimTime::from_secs(3600));
        w.p2p.publish(&mut w.sim, &mut w.net, provider, ad);
        run(&mut w);
        let qid = w.p2p.query(
            &mut w.sim,
            &mut w.net,
            PeerId(0),
            QueryKind::ByService("triana".into()),
            8,
        );
        run(&mut w);
        assert_eq!(w.p2p.queries[&qid].providers(), vec![provider]);
        let r = observer.registry().unwrap();
        assert_eq!(r.counter_value("p2p.publishes"), 1);
        assert_eq!(r.counter_value("p2p.queries"), 1);
        assert!(r.counter_value("p2p.messages_sent") > 0);
        assert!(r.counter_value("p2p.messages_received") > 0);
        assert!(r.counter_value("p2p.advert_cache_inserts") >= 1);
        assert!(r.counter_value("p2p.advert_cache_hits") >= 1);
        assert!(r.counter_value("p2p.query_hits") >= 1);
        // Sent messages either arrive or are lost at an offline endpoint.
        assert_eq!(
            r.counter_value("p2p.messages_sent"),
            r.counter_value("p2p.messages_received") + r.counter_value("p2p.messages_lost")
        );
    }

    #[test]
    fn reset_query_state_allows_requery() {
        let mut w = world(6, DiscoveryMode::Flooding);
        let mut rng = Pcg32::new(10, 1);
        w.p2p.wire_random(2, &mut rng);
        let provider = PeerId(3);
        let ad = triana_ad(provider, SimTime::from_secs(3600));
        w.p2p.peers[provider.0 as usize].ads.push(ad);
        for _ in 0..2 {
            let qid = w.p2p.query(
                &mut w.sim,
                &mut w.net,
                PeerId(0),
                QueryKind::ByService("triana".into()),
                5,
            );
            run(&mut w);
            assert_eq!(w.p2p.queries[&qid].providers(), vec![provider]);
            w.p2p.reset_query_state();
        }
    }
    #[test]
    fn send_to_offline_peer_meters_send_failures() {
        let observer = obs::Obs::enabled();
        let mut w = world(3, DiscoveryMode::Flooding);
        w.p2p.set_obs(observer.clone());
        let mut rng = Pcg32::new(3, 1);
        w.p2p.wire_random(2, &mut rng); // ring of 3: everyone adjacent
                                        // Peer 1 goes offline before the flood reaches it.
        w.net.set_online(w.p2p.host_of(PeerId(1)), false);
        w.p2p.query(
            &mut w.sim,
            &mut w.net,
            PeerId(0),
            QueryKind::ByService("triana".into()),
            3,
        );
        run(&mut w);
        assert!(
            w.p2p.send_failures >= 1,
            "flooding past an offline peer must fail at least one send"
        );
        let r = observer.registry().unwrap();
        assert_eq!(
            r.counter_value("p2p.send_failures"),
            w.p2p.send_failures,
            "the obs counter must track the struct field"
        );
    }

    #[test]
    fn send_filter_discards_before_network_and_preserves_identity() {
        let observer = Obs::enabled();
        let mut w = world(4, DiscoveryMode::Flooding);
        w.p2p.set_obs(observer.clone());
        let mut rng = Pcg32::new(7, 1);
        w.p2p.wire_random(2, &mut rng);
        w.p2p.set_send_filter(Box::new(|_now, _from, _to, msg| {
            !matches!(msg, Message::Query { .. })
        }));
        let qid = w.p2p.query(
            &mut w.sim,
            &mut w.net,
            PeerId(0),
            QueryKind::ByService("triana".into()),
            4,
        );
        run(&mut w);
        assert!(w.p2p.queries[&qid].hits.is_empty());
        let r = observer.registry().unwrap();
        assert!(r.counter_value("p2p.messages_filtered") > 0);
        // Filtered messages never count as sent, so the conservation
        // identity sent = received + lost still holds exactly.
        assert_eq!(
            r.counter_value("p2p.messages_sent"),
            r.counter_value("p2p.messages_received") + r.counter_value("p2p.messages_lost")
        );
        w.p2p.clear_send_filter();
        let qid2 = w.p2p.query(
            &mut w.sim,
            &mut w.net,
            PeerId(0),
            QueryKind::ByService("triana".into()),
            4,
        );
        run(&mut w);
        // With the filter removed the query floods again (visits peers).
        assert!(w.p2p.queries[&qid2].peers_visited > 1);
    }

    #[test]
    fn seen_cache_is_bounded_fifo() {
        let mut c = SeenCache::new(4);
        for i in 0..10u64 {
            assert!(c.insert(QueryId(i)), "fresh id accepted");
        }
        assert_eq!(c.len(), 4, "window bounded at cap");
        // Recent ids are still suppressed…
        assert!(!c.insert(QueryId(9)));
        // …but an id pushed out of the window has been forgotten.
        assert!(c.insert(QueryId(0)));
    }

    #[test]
    fn clique_flood_counts_suppressed_duplicates() {
        let observer = Obs::enabled();
        let n = 8;
        let mut w = world(n, DiscoveryMode::Flooding);
        w.p2p.set_obs(observer.clone());
        let mut rng = Pcg32::new(11, 1);
        w.p2p.wire_random(n - 1, &mut rng); // complete graph
        let qid = w.p2p.query(
            &mut w.sim,
            &mut w.net,
            PeerId(0),
            QueryKind::ByService("none".into()),
            4,
        );
        run(&mut w);
        let r = observer.registry().unwrap();
        // On a clique every peer hears the query from every neighbour:
        // all but the first arrival are suppressed duplicates.
        assert!(
            r.counter_value("p2p.flood_duplicates") > 0,
            "clique fan-out must hit the duplicate cache"
        );
        // Suppression bounds attributed traffic by the sum of degrees.
        let edge_bound = (n * (n - 1)) as u64;
        let q = &w.p2p.queries[&qid];
        assert!(q.messages <= edge_bound, "{} > {edge_bound}", q.messages);
        // Every received message was either fresh or metered as duplicate.
        assert_eq!(
            r.counter_value("p2p.messages_sent"),
            r.counter_value("p2p.messages_received") + r.counter_value("p2p.messages_lost")
        );
        for i in 0..n {
            assert!(w.p2p.seen_cache_len(PeerId(i as u32)) <= SEEN_CACHE_CAP);
        }
    }

    #[test]
    fn routed_finds_provider_end_to_end() {
        let mut w = world(32, DiscoveryMode::Routed);
        let provider = PeerId(17);
        let ad = triana_ad(provider, SimTime::from_secs(3600));
        w.p2p.publish(&mut w.sim, &mut w.net, provider, ad);
        run(&mut w);
        assert!(
            w.p2p.routed_role(provider).is_some(),
            "lazy bootstrap ran on first publish"
        );
        let qid = w.p2p.query(
            &mut w.sim,
            &mut w.net,
            PeerId(0),
            QueryKind::ByService("triana".into()),
            0, // ttl is ignored in routed mode
        );
        run(&mut w);
        let q = &w.p2p.queries[&qid];
        assert_eq!(q.providers(), vec![provider]);
        assert_eq!(w.p2p.active_lookups(), 0, "all lookups resolved");
    }

    #[test]
    fn routed_hops_stay_within_log_budget_and_beat_flooding() {
        let n = 64;
        let mk = |mode| {
            let mut w = world(n, mode);
            let mut rng = Pcg32::new(13, 1);
            w.p2p.wire_random(4, &mut rng);
            let provider = PeerId(40);
            let ad = triana_ad(provider, SimTime::from_secs(3600));
            w.p2p.publish(&mut w.sim, &mut w.net, provider, ad);
            while let Some(ev) = w.sim.step() {
                w.p2p.handle(&mut w.sim, &mut w.net, ev);
            }
            let qid = w.p2p.query(
                &mut w.sim,
                &mut w.net,
                PeerId(3),
                QueryKind::ByService("triana".into()),
                8,
            );
            run(&mut w);
            let q = &w.p2p.queries[&qid];
            (q.messages, q.hops, q.providers())
        };
        let (flood_msgs, _, flood_prov) = mk(DiscoveryMode::Flooding);
        let (routed_msgs, hops, routed_prov) = mk(DiscoveryMode::Routed);
        assert_eq!(flood_prov, vec![PeerId(40)]);
        assert_eq!(routed_prov, vec![PeerId(40)]);
        let budget = (n as f64).log2().ceil() as u64 + 2;
        assert!(hops <= budget, "hops {hops} > budget {budget}");
        assert!(
            routed_msgs * 4 < flood_msgs,
            "routed {routed_msgs} vs flooding {flood_msgs}"
        );
    }

    #[test]
    fn cold_peers_delegate_through_their_rendezvous() {
        let observer = Obs::enabled();
        let n = 24;
        let mut w = world(n, DiscoveryMode::Routed);
        w.p2p.set_obs(observer.clone());
        // Peer 5 and 6 are too flaky to hold routing state.
        let mut profiles = vec![(0.9, 1.0); n];
        profiles[5] = (0.2, 1.0);
        profiles[6] = (0.1, 1.0);
        let mut rng = Pcg32::new(14, 1);
        w.p2p.enable_routed(&profiles, &mut rng);
        assert_eq!(w.p2p.routed_role(PeerId(5)), Some(::overlay::Role::Cold));
        assert!(w.p2p.is_rendezvous(w.p2p.rendezvous_peers()[0]));
        // Cold peer publishes and queries entirely through its rendezvous.
        let ad = triana_ad(PeerId(5), SimTime::from_secs(3600));
        w.p2p.publish(&mut w.sim, &mut w.net, PeerId(5), ad);
        run(&mut w);
        let qid = w.p2p.query(
            &mut w.sim,
            &mut w.net,
            PeerId(6),
            QueryKind::ByService("triana".into()),
            0,
        );
        run(&mut w);
        assert_eq!(w.p2p.queries[&qid].providers(), vec![PeerId(5)]);
        let r = observer.registry().unwrap();
        assert!(r.counter_value("p2p.cold_delegated_publishes") >= 1);
        assert!(r.counter_value("p2p.cold_delegated_queries") >= 1);
        assert_eq!(w.p2p.active_lookups(), 0);
    }

    #[test]
    fn routed_conservation_holds_under_churn() {
        let observer = Obs::enabled();
        let n = 40;
        let mut w = world(n, DiscoveryMode::Routed);
        w.p2p.set_obs(observer.clone());
        let provider = PeerId(9);
        let ad = triana_ad(provider, SimTime::from_secs(3600));
        w.p2p.publish(&mut w.sim, &mut w.net, provider, ad);
        run(&mut w);
        // A third of the peers vanish between publish and query.
        for i in (0..n).step_by(3) {
            if i != 0 {
                let h = w.p2p.host_of(PeerId(i as u32));
                w.net.set_online(h, false);
            }
        }
        let qid = w.p2p.query(
            &mut w.sim,
            &mut w.net,
            PeerId(0),
            QueryKind::ByService("triana".into()),
            0,
        );
        run(&mut w);
        let r = observer.registry().unwrap();
        assert_eq!(
            r.counter_value("p2p.messages_sent"),
            r.counter_value("p2p.messages_received") + r.counter_value("p2p.messages_lost"),
            "sent = received + lost even with offline DHT nodes"
        );
        assert_eq!(w.p2p.active_lookups(), 0, "timeouts resolved every lookup");
        let _ = qid; // the query may or may not find the provider under churn
    }

    #[test]
    fn poisoned_routing_table_lookup_still_converges() {
        let observer = Obs::enabled();
        let mut w = world(48, DiscoveryMode::Routed);
        w.p2p.set_obs(observer.clone());
        let provider = PeerId(30);
        let ad = triana_ad(provider, SimTime::from_secs(3600));
        w.p2p.publish(&mut w.sim, &mut w.net, provider, ad);
        run(&mut w);
        let mut rng = Pcg32::new(99, 7);
        let poisoned = w.p2p.poison_routing_table(PeerId(0), &mut rng);
        assert!(poisoned > 0, "poison must corrupt some contacts");
        let qid = w.p2p.query(
            &mut w.sim,
            &mut w.net,
            PeerId(0),
            QueryKind::ByService("triana".into()),
            0,
        );
        run(&mut w);
        // Fabricated contacts either answer (and are re-learned under
        // their real IDs) or time out; the lookup still terminates and
        // the provider is still found.
        assert_eq!(w.p2p.queries[&qid].providers(), vec![provider]);
        assert_eq!(w.p2p.active_lookups(), 0);
    }

    #[test]
    fn routed_republish_restores_records_after_churn() {
        let mut w = world(32, DiscoveryMode::Routed);
        let provider = PeerId(12);
        let ad = triana_ad(provider, SimTime::from_secs(3600));
        w.p2p.publish(&mut w.sim, &mut w.net, provider, ad);
        run(&mut w);
        // Every record holder for the service key goes away.
        let holders: Vec<PeerId> = w
            .p2p
            .peer_ids()
            .filter(|&p| w.p2p.routed_store_len(p) > 0)
            .collect();
        assert!(!holders.is_empty());
        for &h in &holders {
            let host = w.p2p.host_of(h);
            w.net.set_online(host, false);
        }
        w.p2p.routed_republish(&mut w.sim, &mut w.net, provider);
        run(&mut w);
        let qid = w.p2p.query(
            &mut w.sim,
            &mut w.net,
            PeerId(0),
            QueryKind::ByService("triana".into()),
            0,
        );
        run(&mut w);
        assert_eq!(
            w.p2p.queries[&qid].providers(),
            vec![provider],
            "republish re-homed the records onto live nodes"
        );
    }
}
