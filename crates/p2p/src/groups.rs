//! Virtual peer groups (§3.7).
//!
//! "We also aim to explore additional capabilities of a peer to support
//! this discovery process – in particular the ability to group peers with
//! common capability into virtual peer groups." A [`PeerGroup`] is a named
//! capability predicate; peers that satisfy it join by publishing their
//! advertisement tagged with the group's service name
//! (`group:<name>`), so scoped discovery reuses the ordinary service-query
//! machinery — exactly how JXTA peer groups ride on advertisements.

use crate::advert::{AdvertBody, Advertisement, PeerAdvert};
use crate::message::{P2pEvent, QueryKind};
use crate::overlay::{P2p, PeerId};
use netsim::{Duration, HostSpec, Network, Sim};

/// Membership requirements for a virtual peer group.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CapabilityPredicate {
    pub min_cpu_ghz: f64,
    pub min_ram_mib: u32,
}

impl CapabilityPredicate {
    pub fn admits(&self, spec: &HostSpec) -> bool {
        spec.cpu_ghz >= self.min_cpu_ghz && spec.ram_mib >= self.min_ram_mib
    }
}

/// A named capability-based peer group.
#[derive(Clone, Debug)]
pub struct PeerGroup {
    pub name: String,
    pub predicate: CapabilityPredicate,
    members: Vec<PeerId>,
}

impl PeerGroup {
    pub fn new(name: &str, predicate: CapabilityPredicate) -> Self {
        PeerGroup {
            name: name.to_string(),
            predicate,
            members: Vec::new(),
        }
    }

    /// The service tag members advertise under.
    pub fn service_tag(&self) -> String {
        format!("group:{}", self.name)
    }

    /// The query that discovers members of this group.
    pub fn membership_query(&self) -> QueryKind {
        QueryKind::ByService(self.service_tag().into())
    }

    pub fn members(&self) -> &[PeerId] {
        &self.members
    }

    pub fn is_member(&self, p: PeerId) -> bool {
        self.members.contains(&p)
    }

    /// Try to enrol a peer: checks the capability predicate against the
    /// peer's host spec and, on success, publishes a group-tagged
    /// advertisement. Returns whether the peer was admitted.
    pub fn enroll<E: From<P2pEvent>>(
        &mut self,
        sim: &mut Sim<E>,
        net: &mut Network,
        p2p: &mut P2p,
        peer: PeerId,
        lifetime: Duration,
    ) -> bool {
        let spec = net.spec(p2p.host_of(peer)).clone();
        if !self.predicate.admits(&spec) {
            return false;
        }
        if self.is_member(peer) {
            return true;
        }
        self.members.push(peer);
        let ad = Advertisement {
            body: AdvertBody::Peer(PeerAdvert {
                peer,
                cpu_ghz: spec.cpu_ghz,
                free_ram_mib: spec.ram_mib,
                services: vec![self.service_tag().into()],
            }),
            expires: sim.now() + lifetime,
        };
        p2p.publish(sim, net, peer, ad);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::overlay::DiscoveryMode;
    use netsim::{LinkClass, Pcg32, SimTime};

    struct World {
        sim: Sim<P2pEvent>,
        net: Network,
        p2p: P2p,
    }

    fn world(cpus: &[f64], mode: DiscoveryMode) -> World {
        let mut net = Network::new();
        let mut p2p = P2p::new(mode);
        for &ghz in cpus {
            let mut spec = HostSpec::reference_pc();
            spec.cpu_ghz = ghz;
            spec.link = LinkClass::Dsl.spec();
            let h = net.add_host(spec);
            p2p.add_peer(h);
        }
        let mut rng = Pcg32::new(3, 1);
        p2p.wire_random(3, &mut rng);
        World {
            sim: Sim::new(9),
            net,
            p2p,
        }
    }

    fn drain(w: &mut World) {
        while let Some(ev) = w.sim.step() {
            w.p2p.handle(&mut w.sim, &mut w.net, ev);
        }
    }

    #[test]
    fn predicate_gates_membership() {
        let mut w = world(&[1.0, 2.5, 3.0, 0.8], DiscoveryMode::Flooding);
        let mut fast = PeerGroup::new(
            "fast-pcs",
            CapabilityPredicate {
                min_cpu_ghz: 2.0,
                min_ram_mib: 0,
            },
        );
        let lifetime = Duration::from_secs(3600);
        let admitted: Vec<bool> = (0..4)
            .map(|i| fast.enroll(&mut w.sim, &mut w.net, &mut w.p2p, PeerId(i), lifetime))
            .collect();
        assert_eq!(admitted, vec![false, true, true, false]);
        assert_eq!(fast.members(), &[PeerId(1), PeerId(2)]);
        assert!(fast.is_member(PeerId(1)));
        assert!(!fast.is_member(PeerId(0)));
    }

    #[test]
    fn scoped_discovery_finds_only_members() {
        let mut w = world(&[1.0, 2.5, 3.0, 0.8, 2.2], DiscoveryMode::Flooding);
        let mut fast = PeerGroup::new(
            "fast-pcs",
            CapabilityPredicate {
                min_cpu_ghz: 2.0,
                min_ram_mib: 0,
            },
        );
        let lifetime = Duration::from_secs(3600);
        for i in 0..5 {
            fast.enroll(&mut w.sim, &mut w.net, &mut w.p2p, PeerId(i), lifetime);
        }
        drain(&mut w);
        let q = w.p2p.query(
            &mut w.sim,
            &mut w.net,
            PeerId(0),
            fast.membership_query(),
            8,
        );
        drain(&mut w);
        let mut found = w.p2p.queries[&q].providers();
        found.sort();
        assert_eq!(found, vec![PeerId(1), PeerId(2), PeerId(4)]);
    }

    #[test]
    fn re_enrolling_is_idempotent() {
        let mut w = world(&[2.5], DiscoveryMode::Flooding);
        let mut g = PeerGroup::new(
            "g",
            CapabilityPredicate {
                min_cpu_ghz: 1.0,
                min_ram_mib: 0,
            },
        );
        let lifetime = Duration::from_secs(10);
        assert!(g.enroll(&mut w.sim, &mut w.net, &mut w.p2p, PeerId(0), lifetime));
        assert!(g.enroll(&mut w.sim, &mut w.net, &mut w.p2p, PeerId(0), lifetime));
        assert_eq!(g.members().len(), 1);
    }

    #[test]
    fn groups_work_over_rendezvous_too() {
        let mut w = world(&[2.5, 2.5, 2.5, 1.0, 1.0, 1.0], DiscoveryMode::Rendezvous);
        let mut rng = Pcg32::new(8, 2);
        w.p2p.assign_rendezvous(2, &mut rng);
        let mut g = PeerGroup::new(
            "workers",
            CapabilityPredicate {
                min_cpu_ghz: 2.0,
                min_ram_mib: 0,
            },
        );
        let lifetime = Duration::from_secs(3600);
        for i in 0..6 {
            g.enroll(&mut w.sim, &mut w.net, &mut w.p2p, PeerId(i), lifetime);
        }
        drain(&mut w);
        let q = w
            .p2p
            .query(&mut w.sim, &mut w.net, PeerId(5), g.membership_query(), 4);
        drain(&mut w);
        let found = w.p2p.queries[&q].providers();
        assert_eq!(found.len(), 3, "{found:?}");
    }

    #[test]
    fn ram_floor_also_enforced() {
        let mut w = world(&[3.0], DiscoveryMode::Flooding);
        let mut g = PeerGroup::new(
            "big-ram",
            CapabilityPredicate {
                min_cpu_ghz: 1.0,
                min_ram_mib: 100_000,
            },
        );
        assert!(!g.enroll(
            &mut w.sim,
            &mut w.net,
            &mut w.p2p,
            PeerId(0),
            Duration::from_secs(1)
        ));
        let _ = SimTime::ZERO;
    }
}
