//! Property tests for the binary wire codec: encode→decode round-trips
//! the in-memory value for arbitrary messages, and no truncation or byte
//! corruption can make the decoder panic.

use netsim::SimTime;
use p2p::advert::{AdvertBody, BlobAdvert, ModuleAdvert, PeerAdvert, PipeAdvert};
use p2p::{Advertisement, LookupId, Message, PeerId, PipeId, QueryId, QueryKind};
use proptest::prelude::*;

/// Deterministically expand a flat seed vector into one of the five query
/// kinds. `f64` fields are built from finite bit patterns only (NaN would
/// break `PartialEq`-based round-trip comparison, not the codec).
fn kind_from(sel: u8, a: u64, b: u64, s: &str) -> QueryKind {
    match sel % 5 {
        0 => QueryKind::ByService(s.into()),
        1 => QueryKind::ByPipeName(s.into()),
        2 => QueryKind::ByModule {
            name: s.into(),
            min_version: a as u32,
        },
        3 => QueryKind::ByCapability {
            min_cpu_ghz: (a % 1_000) as f64 / 10.0,
            min_ram_mib: b as u32,
        },
        _ => QueryKind::ByBlob { hash: a },
    }
}

fn advert_from(sel: u8, a: u64, b: u64, s: &str, names: &[String]) -> Advertisement {
    let body = match sel % 4 {
        0 => AdvertBody::Peer(PeerAdvert {
            peer: PeerId(a as u32),
            cpu_ghz: (b % 100) as f64 / 7.0,
            free_ram_mib: (a >> 32) as u32,
            services: names.iter().map(Into::into).collect(),
        }),
        1 => AdvertBody::Pipe(PipeAdvert {
            pipe: PipeId(a),
            name: s.into(),
            peer: PeerId(b as u32),
        }),
        2 => AdvertBody::Module(ModuleAdvert {
            name: s.into(),
            version: a as u32,
            hash: b,
            size_bytes: a ^ b,
            owner: PeerId((b >> 32) as u32),
        }),
        _ => AdvertBody::Blob(BlobAdvert {
            blob: a,
            size_bytes: b,
            chunks: (a >> 48) as u32,
            provider: PeerId(b as u32),
        }),
    };
    Advertisement {
        body,
        expires: SimTime(a.wrapping_add(b)),
    }
}

/// Build an arbitrary message covering every variant from flat seeds.
fn message_from(sel: u8, a: u64, b: u64, c: u64, s: &str, names: &[String]) -> Message {
    let kind = kind_from((a >> 8) as u8, b, c, s);
    let advert = advert_from((a >> 16) as u8, b, c, s, names);
    let closer: Vec<(u64, PeerId)> = (0..(c % 5))
        .map(|i| {
            (
                a.wrapping_mul(i + 1),
                PeerId((b as u32).wrapping_add(i as u32)),
            )
        })
        .collect();
    match sel % 11 {
        0 => Message::Query {
            id: QueryId(a),
            origin: PeerId(b as u32),
            prev_hop: PeerId(c as u32),
            ttl: (a >> 24) as u8,
            kind,
        },
        1 => Message::QueryHit {
            id: QueryId(a),
            advert,
        },
        2 => Message::Publish { advert },
        3 => Message::PipeData {
            pipe: PipeId(a),
            tag: b,
            bytes: c,
        },
        4 => Message::OrchDelta { seq: a, bytes: b },
        5 => Message::OrchSync {
            from_seq: a,
            count: b,
            bytes: c,
        },
        6 => Message::FindNode {
            lid: LookupId(a),
            from: PeerId(b as u32),
            key: c,
        },
        7 => Message::FindNodeReply {
            lid: LookupId(a),
            from: PeerId(b as u32),
            closer,
        },
        8 => Message::FindValue {
            lid: LookupId(a),
            from: PeerId(b as u32),
            key: c,
            kind,
        },
        9 => Message::FindValueReply {
            lid: LookupId(a),
            from: PeerId(b as u32),
            closer,
            providers: vec![advert],
        },
        _ => Message::StoreProvider {
            from: PeerId(b as u32),
            key: c,
            advert,
        },
    }
}

proptest! {
    /// Every generated message survives encode→decode exactly.
    #[test]
    fn message_round_trips(
        sel in proptest::arbitrary::any::<u8>(),
        a in proptest::arbitrary::any::<u64>(),
        b in proptest::arbitrary::any::<u64>(),
        c in proptest::arbitrary::any::<u64>(),
        s in "[a-z]{0,16}",
        names in proptest::collection::vec("[a-z]{0,8}", 0..4),
    ) {
        let msg = message_from(sel, a, b, c, &s, &names);
        let bytes = msg.encode();
        let back = Message::decode(&bytes);
        prop_assert_eq!(back, Ok(msg));
    }

    /// Truncating an encoded message anywhere yields a typed error — never
    /// a panic, never a silently shortened value.
    #[test]
    fn truncation_always_rejected(
        sel in proptest::arbitrary::any::<u8>(),
        a in proptest::arbitrary::any::<u64>(),
        b in proptest::arbitrary::any::<u64>(),
        c in proptest::arbitrary::any::<u64>(),
        s in "[a-z]{0,16}",
        cut_seed in proptest::arbitrary::any::<u64>(),
    ) {
        let msg = message_from(sel, a, b, c, &s, &[]);
        let bytes = msg.encode();
        let cut = (cut_seed % bytes.len() as u64) as usize;
        prop_assert!(Message::decode(&bytes[..cut]).is_err());
    }

    /// Flipping an arbitrary byte can change the decoded value or produce
    /// a typed error, but must never panic and never return the original
    /// with trailing bytes unaccounted for.
    #[test]
    fn corruption_never_panics(
        sel in proptest::arbitrary::any::<u8>(),
        a in proptest::arbitrary::any::<u64>(),
        b in proptest::arbitrary::any::<u64>(),
        c in proptest::arbitrary::any::<u64>(),
        s in "[a-z]{0,16}",
        flip_at in proptest::arbitrary::any::<u64>(),
        flip_bits in 1u8..255,
    ) {
        let msg = message_from(sel, a, b, c, &s, &[]);
        let mut bytes = msg.encode();
        let at = (flip_at % bytes.len() as u64) as usize;
        bytes[at] ^= flip_bits;
        // Either a typed error or some decoded message; both are fine —
        // the invariant is totality (no panic, no over-read).
        let _ = Message::decode(&bytes);
    }

    /// Random garbage never panics the decoder.
    #[test]
    fn garbage_never_panics(
        bytes in proptest::collection::vec(proptest::arbitrary::any::<u8>(), 0..200),
    ) {
        let _ = Message::decode(&bytes);
    }

    /// Encoding through the thread-local buffer pool is byte-identical to
    /// the allocating `encode`, including across pool reuse: a recycled
    /// buffer must never leak bytes from the message it carried before.
    #[test]
    fn pooled_encode_matches_allocating(
        msgs in proptest::collection::vec(
            (
                proptest::arbitrary::any::<u8>(),
                proptest::arbitrary::any::<u64>(),
                proptest::arbitrary::any::<u64>(),
                proptest::arbitrary::any::<u64>(),
                "[a-z]{0,16}",
            ),
            1..16,
        ),
    ) {
        for (sel, a, b, c, s) in &msgs {
            let msg = message_from(*sel, *a, *b, *c, s, &[]);
            let baseline = msg.encode();
            let (pooled, decoded) = p2p::wire::with_buf(|buf| {
                msg.encode_into(buf);
                (buf.clone(), Message::decode(buf))
            });
            prop_assert_eq!(&pooled, &baseline);
            prop_assert_eq!(decoded, Ok(msg));
        }
    }
}
