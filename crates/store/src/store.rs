//! The per-peer chunk store: what a peer holds and can serve.

use std::collections::BTreeMap;
use std::fmt;

use tvm::ModuleBlob;

use crate::chunk::{BlobId, ChunkLayout};

/// Why a blob could not be assembled.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StoreError {
    /// The store has never seen this blob.
    UnknownBlob(BlobId),
    /// Chunks are still missing.
    Incomplete { blob: BlobId, missing: u32 },
    /// All chunks present, but the reassembled bytes do not hash to the
    /// advertised id — a corrupt or poisoned transfer.
    HashMismatch { expected: BlobId, actual: BlobId },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::UnknownBlob(b) => write!(f, "unknown blob {b}"),
            StoreError::Incomplete { blob, missing } => {
                write!(f, "blob {blob} still missing {missing} chunk(s)")
            }
            StoreError::HashMismatch { expected, actual } => {
                write!(f, "hash mismatch: expected {expected}, got {actual}")
            }
        }
    }
}

impl std::error::Error for StoreError {}

/// Lifetime statistics of one [`ChunkStore`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StoreStats {
    pub chunks_inserted: u64,
    pub bytes_inserted: u64,
    /// Successful verified assemblies.
    pub assembles: u64,
    /// Assemblies rejected at hash verification.
    pub verify_failures: u64,
    pub releases: u64,
}

struct BlobEntry {
    layout: ChunkLayout,
    chunks: BTreeMap<u32, Vec<u8>>,
}

impl BlobEntry {
    fn is_complete(&self) -> bool {
        self.chunks.len() as u32 == self.layout.count()
    }
}

/// A peer's resident chunk set, indexed by content hash.
///
/// Chunks accumulate via [`ChunkStore::insert_chunk`] (swarm download) or
/// [`ChunkStore::seed_blob`] (the peer already holds the whole blob and
/// offers it to others). [`ChunkStore::assemble`] re-derives the content
/// hash from the reassembled bytes and refuses to hand out a blob whose
/// bytes do not match its address.
pub struct ChunkStore {
    chunk_bytes: u64,
    blobs: BTreeMap<BlobId, BlobEntry>,
    stats: StoreStats,
}

impl ChunkStore {
    /// A store that chunks blobs into `chunk_bytes`-sized pieces.
    pub fn new(chunk_bytes: u64) -> Self {
        assert!(chunk_bytes >= 1);
        ChunkStore {
            chunk_bytes,
            blobs: BTreeMap::new(),
            stats: StoreStats::default(),
        }
    }

    pub fn chunk_bytes(&self) -> u64 {
        self.chunk_bytes
    }

    /// The layout this store uses for a blob of `blob_len` bytes.
    pub fn layout_for(&self, blob_len: u64) -> ChunkLayout {
        ChunkLayout::new(blob_len, self.chunk_bytes)
    }

    /// Seed a complete blob the peer already holds (e.g. just fetched and
    /// verified): splits it into chunks so they can be served onward.
    /// Returns the blob's content address.
    pub fn seed_blob(&mut self, blob: &ModuleBlob) -> BlobId {
        let id = BlobId::of_blob(blob);
        let layout = self.layout_for(blob.bytes.len() as u64);
        let entry = self.blobs.entry(id).or_insert_with(|| BlobEntry {
            layout,
            chunks: BTreeMap::new(),
        });
        for i in 0..layout.count() {
            if let std::collections::btree_map::Entry::Vacant(slot) = entry.chunks.entry(i) {
                let piece = layout.slice(&blob.bytes, i).to_vec();
                self.stats.chunks_inserted += 1;
                self.stats.bytes_inserted += piece.len() as u64;
                slot.insert(piece);
            }
        }
        id
    }

    /// Store one downloaded chunk. Creates the blob entry on first use.
    /// Returns `false` if the chunk was already present (duplicate
    /// delivery) or its length does not match the layout.
    pub fn insert_chunk(&mut self, id: BlobId, blob_len: u64, index: u32, bytes: Vec<u8>) -> bool {
        let layout = self.layout_for(blob_len);
        if index >= layout.count() || bytes.len() as u64 != layout.size(index) {
            return false;
        }
        let entry = self.blobs.entry(id).or_insert_with(|| BlobEntry {
            layout,
            chunks: BTreeMap::new(),
        });
        if entry.chunks.contains_key(&index) {
            return false;
        }
        self.stats.chunks_inserted += 1;
        self.stats.bytes_inserted += bytes.len() as u64;
        entry.chunks.insert(index, bytes);
        true
    }

    pub fn has_chunk(&self, id: BlobId, index: u32) -> bool {
        self.blobs
            .get(&id)
            .is_some_and(|e| e.chunks.contains_key(&index))
    }

    /// A held chunk's bytes, for serving to another peer.
    pub fn chunk(&self, id: BlobId, index: u32) -> Option<&[u8]> {
        self.blobs
            .get(&id)
            .and_then(|e| e.chunks.get(&index))
            .map(Vec::as_slice)
    }

    /// Chunk indices still missing for a `blob_len`-byte blob (all of
    /// them if the store has never seen it).
    pub fn missing(&self, id: BlobId, blob_len: u64) -> Vec<u32> {
        let layout = self.layout_for(blob_len);
        match self.blobs.get(&id) {
            Some(e) => (0..layout.count())
                .filter(|i| !e.chunks.contains_key(i))
                .collect(),
            None => (0..layout.count()).collect(),
        }
    }

    pub fn is_complete(&self, id: BlobId) -> bool {
        self.blobs.get(&id).is_some_and(BlobEntry::is_complete)
    }

    /// Layout of a blob the store has (any) chunks for.
    pub fn layout_of(&self, id: BlobId) -> Option<ChunkLayout> {
        self.blobs.get(&id).map(|e| e.layout)
    }

    /// Reassemble a complete blob and **verify its content hash**. On
    /// mismatch the blob is rejected (`StoreError::HashMismatch`) and the
    /// verification failure is counted; the caller decides whether to
    /// discard the chunks and re-fetch.
    pub fn assemble(&mut self, id: BlobId) -> Result<ModuleBlob, StoreError> {
        let entry = self.blobs.get(&id).ok_or(StoreError::UnknownBlob(id))?;
        if !entry.is_complete() {
            return Err(StoreError::Incomplete {
                blob: id,
                missing: entry.layout.count() - entry.chunks.len() as u32,
            });
        }
        let mut bytes = Vec::with_capacity(entry.layout.blob_len as usize);
        for piece in entry.chunks.values() {
            bytes.extend_from_slice(piece);
        }
        let actual = BlobId::of(&bytes);
        if actual != id {
            self.stats.verify_failures += 1;
            return Err(StoreError::HashMismatch {
                expected: id,
                actual,
            });
        }
        self.stats.assembles += 1;
        Ok(ModuleBlob { bytes, hash: id.0 })
    }

    /// Drop every chunk of a blob ("selectively download and release").
    pub fn release(&mut self, id: BlobId) -> bool {
        let gone = self.blobs.remove(&id).is_some();
        if gone {
            self.stats.releases += 1;
        }
        gone
    }

    /// Fault injection for tests: flip one byte of a held chunk, modelling
    /// a corrupt or malicious provider. Returns `false` if the chunk is
    /// not held.
    pub fn corrupt_chunk(&mut self, id: BlobId, index: u32) -> bool {
        match self
            .blobs
            .get_mut(&id)
            .and_then(|e| e.chunks.get_mut(&index))
        {
            Some(piece) if !piece.is_empty() => {
                piece[0] ^= 0xFF;
                true
            }
            _ => false,
        }
    }

    /// Total bytes resident across all blobs.
    pub fn resident_bytes(&self) -> u64 {
        self.blobs
            .values()
            .flat_map(|e| e.chunks.values())
            .map(|c| c.len() as u64)
            .sum()
    }

    /// Number of blobs with at least one chunk resident.
    pub fn len(&self) -> usize {
        self.blobs.len()
    }

    pub fn is_empty(&self) -> bool {
        self.blobs.is_empty()
    }

    pub fn stats(&self) -> StoreStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_blob(pairs: usize) -> ModuleBlob {
        let mut src = String::from(".module T 1 0 0\n.func main 0\n");
        for _ in 0..pairs {
            src.push_str(" push 1\n pop\n");
        }
        src.push_str(" halt\n");
        tvm::asm::assemble(&src).unwrap().to_blob()
    }

    #[test]
    fn seed_then_assemble_round_trips() {
        let blob = test_blob(200);
        let mut s = ChunkStore::new(128);
        let id = s.seed_blob(&blob);
        assert!(s.is_complete(id));
        assert!(s.missing(id, blob.bytes.len() as u64).is_empty());
        let out = s.assemble(id).unwrap();
        assert_eq!(out.bytes, blob.bytes);
        assert!(out.integrity_ok());
        assert_eq!(s.stats().verify_failures, 0);
    }

    #[test]
    fn chunkwise_transfer_completes_and_verifies() {
        let blob = test_blob(300);
        let len = blob.bytes.len() as u64;
        let mut provider = ChunkStore::new(256);
        let id = provider.seed_blob(&blob);
        let mut fetcher = ChunkStore::new(256);
        let missing = fetcher.missing(id, len);
        assert_eq!(missing.len() as u32, provider.layout_for(len).count());
        for i in missing {
            let piece = provider.chunk(id, i).unwrap().to_vec();
            assert!(fetcher.insert_chunk(id, len, i, piece));
        }
        assert!(fetcher.is_complete(id));
        assert_eq!(fetcher.assemble(id).unwrap().bytes, blob.bytes);
    }

    #[test]
    fn corrupted_chunk_is_rejected_at_verification() {
        let blob = test_blob(300);
        let mut s = ChunkStore::new(256);
        let id = s.seed_blob(&blob);
        assert!(s.corrupt_chunk(id, 1));
        let err = s.assemble(id).unwrap_err();
        assert!(matches!(err, StoreError::HashMismatch { expected, .. } if expected == id));
        assert_eq!(s.stats().verify_failures, 1);
        // The poisoned blob can be dropped and refetched.
        assert!(s.release(id));
        assert!(!s.is_complete(id));
    }

    #[test]
    fn incomplete_blob_does_not_assemble() {
        let blob = test_blob(300);
        let len = blob.bytes.len() as u64;
        let mut provider = ChunkStore::new(256);
        let id = provider.seed_blob(&blob);
        let mut fetcher = ChunkStore::new(256);
        fetcher.insert_chunk(id, len, 0, provider.chunk(id, 0).unwrap().to_vec());
        assert!(matches!(
            fetcher.assemble(id),
            Err(StoreError::Incomplete { .. })
        ));
        assert!(matches!(
            ChunkStore::new(256).assemble(id),
            Err(StoreError::UnknownBlob(_))
        ));
    }

    #[test]
    fn duplicate_and_misfit_chunks_are_refused() {
        let blob = test_blob(100);
        let len = blob.bytes.len() as u64;
        let mut provider = ChunkStore::new(64);
        let id = provider.seed_blob(&blob);
        let mut fetcher = ChunkStore::new(64);
        let piece = provider.chunk(id, 0).unwrap().to_vec();
        assert!(fetcher.insert_chunk(id, len, 0, piece.clone()));
        assert!(!fetcher.insert_chunk(id, len, 0, piece), "duplicate");
        assert!(!fetcher.insert_chunk(id, len, 1, vec![0u8; 3]), "bad size");
        assert!(!fetcher.insert_chunk(id, len, 9_999, vec![]), "bad index");
        let st = fetcher.stats();
        assert_eq!(st.chunks_inserted, 1);
    }

    #[test]
    fn resident_bytes_track_seed_and_release() {
        let blob = test_blob(150);
        let mut s = ChunkStore::new(100);
        let id = s.seed_blob(&blob);
        assert_eq!(s.resident_bytes(), blob.bytes.len() as u64);
        assert_eq!(s.len(), 1);
        // Seeding again is idempotent.
        s.seed_blob(&blob);
        assert_eq!(s.resident_bytes(), blob.bytes.len() as u64);
        s.release(id);
        assert!(s.is_empty());
        assert_eq!(s.resident_bytes(), 0);
    }
}
