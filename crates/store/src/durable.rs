//! Durable peer state: an on-disk chunk store with a write-ahead
//! manifest, so a restarted peer recovers its verified chunks instead of
//! re-fetching them over the consumer uplink.
//!
//! Layout under one directory per peer:
//!
//! ```text
//! <dir>/manifest.log          append-only text records (the WAL)
//! <dir>/chunks/<blob>.<idx>   one file per admitted chunk
//! ```
//!
//! Manifest records, one per line:
//!
//! ```text
//! A <blob-hex> <blob_len> <index> <chunk_len> <chunk-fnv-hex>   chunk admitted
//! S <blob-hex> <name> <version>                                 blob sealed (verified, cached)
//! R <blob-hex>                                                  blob released
//! ```
//!
//! The write protocol is *chunk file first, fsync, then manifest record,
//! fsync* — so a manifest entry implies the chunk bytes were durable at
//! admit time. Recovery replays the manifest, ignores a torn final line,
//! and re-verifies every admitted chunk file against its recorded length
//! and FNV-1a 64 checksum: torn or corrupted chunk files are dropped
//! (counted in [`RecoveryReport::dropped_chunks`]) and will simply be
//! re-fetched; intact ones come back verified. Content-hash verification
//! of the *assembled* blob still happens in [`ChunkStore::assemble`] —
//! the manifest checksum is a per-chunk torn-write detector, not a
//! substitute for end-to-end verification.

use crate::chunk::BlobId;
use crate::store::ChunkStore;
use std::collections::BTreeMap;
use std::fmt;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

/// What a recovery scan found.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Chunks whose files matched their manifest record.
    pub recovered_chunks: u64,
    /// Manifest-admitted chunks dropped at recovery (missing, short, or
    /// checksum-mismatched files — torn writes).
    pub dropped_chunks: u64,
    /// Blobs recorded as sealed (fully fetched and hash-verified before
    /// the restart).
    pub sealed_blobs: u64,
}

/// A durable-store failure.
#[derive(Debug)]
pub enum DurableError {
    Io(io::Error),
}

impl fmt::Display for DurableError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DurableError::Io(e) => write!(f, "durable store io: {e}"),
        }
    }
}

impl std::error::Error for DurableError {}

impl From<io::Error> for DurableError {
    fn from(e: io::Error) -> Self {
        DurableError::Io(e)
    }
}

struct ChunkRec {
    blob_len: u64,
    chunk_len: u64,
    fnv: u64,
}

/// Durable on-disk chunk store for one peer.
pub struct DurableStore {
    dir: PathBuf,
    manifest: File,
    /// Live (non-released) admitted chunks: (blob, index) → record.
    admitted: BTreeMap<(BlobId, u32), ChunkRec>,
    /// Sealed blobs: blob → (module name, version).
    sealed: BTreeMap<BlobId, (String, u32)>,
    report: RecoveryReport,
}

fn chunk_path(dir: &Path, blob: BlobId, index: u32) -> PathBuf {
    dir.join("chunks").join(format!("{:016x}.{index}", blob.0))
}

impl DurableStore {
    /// Open (or create) the store at `dir`, replaying the manifest and
    /// verifying every admitted chunk file. The report of what survived
    /// is kept and also returned by [`DurableStore::report`].
    pub fn open(dir: &Path) -> Result<DurableStore, DurableError> {
        fs::create_dir_all(dir.join("chunks"))?;
        let manifest_path = dir.join("manifest.log");
        let mut admitted: BTreeMap<(BlobId, u32), ChunkRec> = BTreeMap::new();
        let mut sealed: BTreeMap<BlobId, (String, u32)> = BTreeMap::new();
        if manifest_path.exists() {
            let mut text = String::new();
            // Invalid UTF-8 in a torn tail must not abort recovery.
            let mut raw = Vec::new();
            File::open(&manifest_path)?.read_to_end(&mut raw)?;
            text.push_str(&String::from_utf8_lossy(&raw));
            for line in text.lines() {
                let mut f = line.split_whitespace();
                match f.next() {
                    Some("A") => {
                        let (Some(blob), Some(blob_len), Some(index), Some(clen), Some(fnv)) = (
                            f.next().and_then(|s| u64::from_str_radix(s, 16).ok()),
                            f.next().and_then(|s| s.parse::<u64>().ok()),
                            f.next().and_then(|s| s.parse::<u32>().ok()),
                            f.next().and_then(|s| s.parse::<u64>().ok()),
                            f.next().and_then(|s| u64::from_str_radix(s, 16).ok()),
                        ) else {
                            continue; // torn tail record
                        };
                        admitted.insert(
                            (BlobId(blob), index),
                            ChunkRec {
                                blob_len,
                                chunk_len: clen,
                                fnv,
                            },
                        );
                    }
                    Some("S") => {
                        let (Some(blob), Some(name), Some(version)) = (
                            f.next().and_then(|s| u64::from_str_radix(s, 16).ok()),
                            f.next(),
                            f.next().and_then(|s| s.parse::<u32>().ok()),
                        ) else {
                            continue;
                        };
                        sealed.insert(BlobId(blob), (name.to_string(), version));
                    }
                    Some("R") => {
                        if let Some(blob) = f.next().and_then(|s| u64::from_str_radix(s, 16).ok()) {
                            let blob = BlobId(blob);
                            admitted.retain(|(b, _), _| *b != blob);
                            sealed.remove(&blob);
                        }
                    }
                    _ => {} // unknown/torn line: skip
                }
            }
        }
        // Verify surviving chunk files against their records.
        let mut report = RecoveryReport::default();
        let mut verified: BTreeMap<(BlobId, u32), ChunkRec> = BTreeMap::new();
        for ((blob, index), rec) in admitted {
            let ok = match fs::read(chunk_path(dir, blob, index)) {
                Ok(bytes) => bytes.len() as u64 == rec.chunk_len && tvm::fnv1a64(&bytes) == rec.fnv,
                Err(_) => false,
            };
            if ok {
                report.recovered_chunks += 1;
                verified.insert((blob, index), rec);
            } else {
                report.dropped_chunks += 1;
                let _ = fs::remove_file(chunk_path(dir, blob, index));
            }
        }
        // Only count seals whose blob still has all its bytes on disk
        // (surviving chunk lengths sum to the blob length); a seal with
        // dropped chunks downgrades to a partial fetch.
        sealed.retain(|blob, _| {
            let mut have = 0u64;
            let mut total = None;
            for ((b, _), rec) in &verified {
                if b == blob {
                    have += rec.chunk_len;
                    total = Some(rec.blob_len);
                }
            }
            total.is_some_and(|t| have == t)
        });
        report.sealed_blobs = sealed.len() as u64;
        let manifest = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&manifest_path)?;
        Ok(DurableStore {
            dir: dir.to_path_buf(),
            manifest,
            admitted: verified,
            sealed,
            report,
        })
    }

    /// What the opening scan recovered.
    pub fn report(&self) -> &RecoveryReport {
        &self.report
    }

    /// Blobs recorded as sealed (name, version, id), sorted by id.
    pub fn sealed(&self) -> Vec<(String, u32, BlobId)> {
        self.sealed
            .iter()
            .map(|(b, (n, v))| (n.clone(), *v, *b))
            .collect()
    }

    /// Whether a blob survived recovery fully sealed.
    pub fn is_sealed(&self, blob: BlobId) -> bool {
        self.sealed.contains_key(&blob)
    }

    /// Durably admit one chunk: chunk file + fsync, then manifest record
    /// + fsync. Idempotent per (blob, index).
    pub fn admit_chunk(
        &mut self,
        blob: BlobId,
        blob_len: u64,
        index: u32,
        bytes: &[u8],
    ) -> Result<(), DurableError> {
        if self.admitted.contains_key(&(blob, index)) {
            return Ok(());
        }
        let path = chunk_path(&self.dir, blob, index);
        let mut f = File::create(&path)?;
        f.write_all(bytes)?;
        f.sync_all()?;
        let fnv = tvm::fnv1a64(bytes);
        writeln!(
            self.manifest,
            "A {:016x} {blob_len} {index} {} {fnv:016x}",
            blob.0,
            bytes.len()
        )?;
        self.manifest.sync_all()?;
        self.admitted.insert(
            (blob, index),
            ChunkRec {
                blob_len,
                chunk_len: bytes.len() as u64,
                fnv,
            },
        );
        Ok(())
    }

    /// Record that a blob assembled and hash-verified (it is now in the
    /// module cache under `name`/`version`).
    pub fn seal(&mut self, blob: BlobId, name: &str, version: u32) -> Result<(), DurableError> {
        writeln!(self.manifest, "S {:016x} {name} {version}", blob.0)?;
        self.manifest.sync_all()?;
        self.sealed.insert(blob, (name.to_string(), version));
        Ok(())
    }

    /// Release a blob: manifest record first, then best-effort file
    /// removal (leftover files without live records are ignored at
    /// recovery).
    pub fn release(&mut self, blob: BlobId) -> Result<(), DurableError> {
        writeln!(self.manifest, "R {:016x}", blob.0)?;
        self.manifest.sync_all()?;
        let gone: Vec<u32> = self
            .admitted
            .range((blob, 0)..=(blob, u32::MAX))
            .map(|((_, i), _)| *i)
            .collect();
        for i in gone {
            self.admitted.remove(&(blob, i));
            let _ = fs::remove_file(chunk_path(&self.dir, blob, i));
        }
        self.sealed.remove(&blob);
        Ok(())
    }

    /// Load every recovered chunk into an in-memory [`ChunkStore`];
    /// returns how many chunks were inserted.
    pub fn load_into(&self, store: &mut ChunkStore) -> Result<u64, DurableError> {
        let mut loaded = 0;
        for ((blob, index), rec) in &self.admitted {
            let bytes = fs::read(chunk_path(&self.dir, *blob, *index))?;
            if store.insert_chunk(*blob, rec.blob_len, *index, bytes) {
                loaded += 1;
            }
        }
        Ok(loaded)
    }

    /// Number of live admitted chunks.
    pub fn chunk_count(&self) -> usize {
        self.admitted.len()
    }

    /// Fault injection for crash tests: truncate an admitted chunk's file
    /// to half its length, simulating a torn write that the manifest
    /// fsync protocol would normally prevent. Returns `false` if the
    /// chunk is unknown.
    pub fn tear_chunk_file(&self, blob: BlobId, index: u32) -> bool {
        let path = chunk_path(&self.dir, blob, index);
        match fs::metadata(&path) {
            Ok(m) => {
                let f = OpenOptions::new().write(true).open(&path);
                match f {
                    Ok(f) => f.set_len(m.len() / 2).is_ok(),
                    Err(_) => false,
                }
            }
            Err(_) => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

    fn scratch_dir(tag: &str) -> PathBuf {
        let n = DIR_SEQ.fetch_add(1, Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("triana-durable-{tag}-{}-{n}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn chunk(i: u32, len: usize) -> Vec<u8> {
        (0..len).map(|j| ((i as usize + j) % 251) as u8).collect()
    }

    #[test]
    fn admit_then_reopen_recovers_everything() {
        let dir = scratch_dir("roundtrip");
        let blob = BlobId(0xABCD);
        {
            let mut d = DurableStore::open(&dir).unwrap();
            for i in 0..3 {
                d.admit_chunk(blob, 250, i, &chunk(i, if i == 2 { 50 } else { 100 }))
                    .unwrap();
            }
            d.seal(blob, "scale", 1).unwrap();
        }
        let d = DurableStore::open(&dir).unwrap();
        assert_eq!(
            *d.report(),
            RecoveryReport {
                recovered_chunks: 3,
                dropped_chunks: 0,
                sealed_blobs: 1,
            }
        );
        assert_eq!(d.sealed(), vec![("scale".to_string(), 1, blob)]);
        let mut store = ChunkStore::new(100);
        assert_eq!(d.load_into(&mut store).unwrap(), 3);
        assert!(store.is_complete(blob));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_chunk_file_is_dropped_verified_kept() {
        let dir = scratch_dir("torn");
        let blob = BlobId(7);
        {
            let mut d = DurableStore::open(&dir).unwrap();
            d.admit_chunk(blob, 200, 0, &chunk(0, 100)).unwrap();
            d.admit_chunk(blob, 200, 1, &chunk(1, 100)).unwrap();
            assert!(d.tear_chunk_file(blob, 1), "chunk file must exist");
        }
        let d = DurableStore::open(&dir).unwrap();
        assert_eq!(d.report().recovered_chunks, 1);
        assert_eq!(d.report().dropped_chunks, 1);
        let mut store = ChunkStore::new(100);
        d.load_into(&mut store).unwrap();
        assert!(store.has_chunk(blob, 0));
        assert!(!store.has_chunk(blob, 1));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupted_chunk_bytes_fail_the_checksum() {
        let dir = scratch_dir("corrupt");
        let blob = BlobId(9);
        {
            let mut d = DurableStore::open(&dir).unwrap();
            d.admit_chunk(blob, 100, 0, &chunk(0, 100)).unwrap();
        }
        // Flip a byte in place (same length, wrong checksum).
        let path = chunk_path(&dir, blob, 0);
        let mut bytes = fs::read(&path).unwrap();
        bytes[3] ^= 0xFF;
        fs::write(&path, &bytes).unwrap();
        let d = DurableStore::open(&dir).unwrap();
        assert_eq!(d.report().dropped_chunks, 1);
        assert_eq!(d.chunk_count(), 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_manifest_tail_is_ignored() {
        let dir = scratch_dir("tail");
        let blob = BlobId(5);
        {
            let mut d = DurableStore::open(&dir).unwrap();
            d.admit_chunk(blob, 50, 0, &chunk(0, 50)).unwrap();
        }
        // Simulate a crash mid-append: a half-written record.
        let mut f = OpenOptions::new()
            .append(true)
            .open(dir.join("manifest.log"))
            .unwrap();
        f.write_all(b"A 00000000000000ff 10").unwrap();
        drop(f);
        let d = DurableStore::open(&dir).unwrap();
        assert_eq!(d.report().recovered_chunks, 1);
        assert_eq!(d.report().dropped_chunks, 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn release_removes_chunks_and_survives_reopen() {
        let dir = scratch_dir("release");
        let blob = BlobId(11);
        {
            let mut d = DurableStore::open(&dir).unwrap();
            d.admit_chunk(blob, 60, 0, &chunk(0, 60)).unwrap();
            d.seal(blob, "m", 2).unwrap();
            d.release(blob).unwrap();
            assert_eq!(d.chunk_count(), 0);
        }
        let d = DurableStore::open(&dir).unwrap();
        assert_eq!(*d.report(), RecoveryReport::default());
        assert!(!d.is_sealed(blob));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn admit_is_idempotent() {
        let dir = scratch_dir("idem");
        let blob = BlobId(13);
        let mut d = DurableStore::open(&dir).unwrap();
        d.admit_chunk(blob, 40, 0, &chunk(0, 40)).unwrap();
        d.admit_chunk(blob, 40, 0, &chunk(0, 40)).unwrap();
        assert_eq!(d.chunk_count(), 1);
        drop(d);
        let d = DurableStore::open(&dir).unwrap();
        assert_eq!(d.report().recovered_chunks, 1);
        fs::remove_dir_all(&dir).unwrap();
    }
}
