//! `triana-store` — content-addressed, peer-assisted blob distribution.
//!
//! The paper's code-on-demand model (§3.3) ships every module blob from
//! the Triana Controller to each enrolled peer, so the controller's uplink
//! becomes the scaling wall as the farm grows. This crate decentralises
//! that hot path, BitTorrent-style:
//!
//! * a blob is identified by its content hash ([`BlobId`], the same
//!   FNV-1a 64 hash carried by `tvm::ModuleBlob`);
//! * it is split into fixed-size chunks ([`ChunkLayout`]);
//! * every peer keeps a [`ChunkStore`] of the chunks it holds and can
//!   serve them to other peers;
//! * a fetching peer pulls missing chunks from several providers in
//!   parallel ([`assign_round_robin`]), tracks the in-flight set with a
//!   [`FetchTracker`], and reassembles the blob with
//!   [`ChunkStore::assemble`] — which **verifies the content hash before
//!   the blob is allowed anywhere near a module cache**, rejecting
//!   corrupt or poisoned transfers;
//! * once verified, the peer seeds its chunks onward.
//!
//! The crate is deliberately transport-agnostic: it never touches the
//! overlay or the simulated network. The farm scheduler in `triana-core`
//! wires these pieces to `p2p` provider adverts and `netsim` transfers.

mod chunk;
pub mod durable;
mod sched;
mod store;

pub use chunk::{BlobId, ChunkLayout};
pub use durable::{DurableError, DurableStore, RecoveryReport};
pub use sched::{assign_round_robin, FetchTracker};
pub use store::{ChunkStore, StoreError, StoreStats};
