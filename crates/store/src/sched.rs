//! Chunk-pull scheduling: spreading a fetch across several providers and
//! tracking the in-flight set.

use std::collections::BTreeMap;

use netsim::{Duration, SimTime};

use crate::chunk::{BlobId, ChunkLayout};

/// Assign each missing chunk to one of `n_sources` providers, round-robin,
/// so the pull load (and hence uplink cost) spreads evenly. Deterministic:
/// chunk `missing[k]` goes to source `k % n_sources`.
pub fn assign_round_robin(missing: &[u32], n_sources: usize) -> Vec<(u32, usize)> {
    assert!(n_sources >= 1, "need at least one source");
    missing
        .iter()
        .enumerate()
        .map(|(k, &chunk)| (chunk, k % n_sources))
        .collect()
}

/// Book-keeping for one in-flight swarm fetch: which chunks are still out,
/// when each was requested (for latency histograms), and how many bytes
/// each source contributed.
#[derive(Clone, Debug)]
pub struct FetchTracker {
    blob: BlobId,
    layout: ChunkLayout,
    /// chunk index → request instant, for chunks still in flight.
    pending: BTreeMap<u32, SimTime>,
    requested: u32,
    completed: u32,
}

impl FetchTracker {
    pub fn new(blob: BlobId, layout: ChunkLayout) -> Self {
        FetchTracker {
            blob,
            layout,
            pending: BTreeMap::new(),
            requested: 0,
            completed: 0,
        }
    }

    pub fn blob(&self) -> BlobId {
        self.blob
    }

    pub fn layout(&self) -> ChunkLayout {
        self.layout
    }

    /// Record a chunk request going out at `at`. Re-requesting an in-flight
    /// chunk (rerouting after a provider failure) keeps the original
    /// request time so the latency histogram reflects the user-visible wait.
    pub fn request(&mut self, chunk: u32, at: SimTime) {
        self.requested += 1;
        self.pending.entry(chunk).or_insert(at);
    }

    /// Record a chunk arrival; returns the fetch latency, or `None` if the
    /// chunk was not pending (stale or duplicate delivery).
    pub fn complete(&mut self, chunk: u32, at: SimTime) -> Option<Duration> {
        let sent = self.pending.remove(&chunk)?;
        self.completed += 1;
        Some(at.since(sent))
    }

    /// Chunks requested but not yet arrived.
    pub fn in_flight(&self) -> usize {
        self.pending.len()
    }

    /// Every requested chunk has arrived.
    pub fn is_done(&self) -> bool {
        self.pending.is_empty() && self.completed > 0
    }

    pub fn requests(&self) -> u32 {
        self.requested
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_spreads_evenly() {
        let missing: Vec<u32> = (0..10).collect();
        let plan = assign_round_robin(&missing, 3);
        assert_eq!(plan.len(), 10);
        let mut per_source = [0usize; 3];
        for &(_, s) in &plan {
            per_source[s] += 1;
        }
        assert_eq!(per_source, [4, 3, 3]);
        // Deterministic and order-preserving over chunks.
        assert_eq!(plan[0], (0, 0));
        assert_eq!(plan[4], (4, 1));
    }

    #[test]
    fn single_source_takes_everything() {
        let plan = assign_round_robin(&[2, 5, 7], 1);
        assert_eq!(plan, vec![(2, 0), (5, 0), (7, 0)]);
    }

    #[test]
    fn tracker_reports_latency_and_completion() {
        let layout = ChunkLayout::new(1000, 400);
        let mut t = FetchTracker::new(BlobId(9), layout);
        assert!(!t.is_done(), "nothing requested yet");
        t.request(0, SimTime(100));
        t.request(1, SimTime(100));
        t.request(2, SimTime(150));
        assert_eq!(t.in_flight(), 3);
        assert_eq!(t.complete(1, SimTime(300)), Some(Duration(200)));
        assert_eq!(t.complete(1, SimTime(400)), None, "duplicate delivery");
        t.complete(0, SimTime(350));
        assert!(!t.is_done());
        t.complete(2, SimTime(500));
        assert!(t.is_done());
        assert_eq!(t.requests(), 3);
    }

    #[test]
    fn rerequest_keeps_original_request_time() {
        let layout = ChunkLayout::new(100, 100);
        let mut t = FetchTracker::new(BlobId(1), layout);
        t.request(0, SimTime(10));
        t.request(0, SimTime(90)); // rerouted to another source
        assert_eq!(t.complete(0, SimTime(100)), Some(Duration(90)));
        assert_eq!(t.requests(), 2);
    }
}
