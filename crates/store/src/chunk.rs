//! Content addressing and fixed-size chunking.

use std::fmt;
use std::ops::Range;

use tvm::{fnv1a64, ModuleBlob};

/// Content identity of a blob: the FNV-1a 64 hash of its bytes — the same
/// hash `tvm::ModuleBlob` carries, so a module's wire hash *is* its swarm
/// address.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BlobId(pub u64);

impl BlobId {
    /// Address of raw bytes.
    pub fn of(bytes: &[u8]) -> BlobId {
        BlobId(fnv1a64(bytes))
    }

    /// Address a module blob claims for itself (trusted only after
    /// [`crate::ChunkStore::assemble`] re-verifies it).
    pub fn of_blob(blob: &ModuleBlob) -> BlobId {
        BlobId(blob.hash)
    }
}

impl fmt::Debug for BlobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b{:016x}", self.0)
    }
}

impl fmt::Display for BlobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b{:016x}", self.0)
    }
}

/// Fixed-size chunking of a `blob_len`-byte blob: every chunk is
/// `chunk_bytes` long except possibly the last.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChunkLayout {
    pub blob_len: u64,
    pub chunk_bytes: u64,
}

impl ChunkLayout {
    pub fn new(blob_len: u64, chunk_bytes: u64) -> Self {
        assert!(chunk_bytes >= 1, "chunks must hold at least one byte");
        ChunkLayout {
            blob_len,
            chunk_bytes,
        }
    }

    /// Number of chunks (0 for an empty blob).
    pub fn count(&self) -> u32 {
        self.blob_len.div_ceil(self.chunk_bytes) as u32
    }

    /// Size in bytes of chunk `i`.
    pub fn size(&self, i: u32) -> u64 {
        let Range { start, end } = self.range(i);
        (end - start) as u64
    }

    /// Byte range of chunk `i` within the blob.
    pub fn range(&self, i: u32) -> Range<usize> {
        assert!(i < self.count(), "chunk {i} out of range");
        let start = u64::from(i) * self.chunk_bytes;
        let end = (start + self.chunk_bytes).min(self.blob_len);
        start as usize..end as usize
    }

    /// Chunk `i` of `bytes` (which must be the full blob).
    pub fn slice<'a>(&self, bytes: &'a [u8], i: u32) -> &'a [u8] {
        assert_eq!(bytes.len() as u64, self.blob_len, "layout/blob mismatch");
        &bytes[self.range(i)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_covers_blob_exactly() {
        let l = ChunkLayout::new(10_000, 4_096);
        assert_eq!(l.count(), 3);
        assert_eq!(l.size(0), 4_096);
        assert_eq!(l.size(1), 4_096);
        assert_eq!(l.size(2), 10_000 - 2 * 4_096);
        let total: u64 = (0..l.count()).map(|i| l.size(i)).sum();
        assert_eq!(total, 10_000);
    }

    #[test]
    fn exact_multiple_has_no_runt_chunk() {
        let l = ChunkLayout::new(8_192, 4_096);
        assert_eq!(l.count(), 2);
        assert_eq!(l.size(1), 4_096);
    }

    #[test]
    fn empty_blob_has_no_chunks() {
        let l = ChunkLayout::new(0, 4_096);
        assert_eq!(l.count(), 0);
    }

    #[test]
    fn slices_reassemble_to_original() {
        let bytes: Vec<u8> = (0..1000u32).map(|i| (i % 251) as u8).collect();
        let l = ChunkLayout::new(bytes.len() as u64, 333);
        let mut rebuilt = Vec::new();
        for i in 0..l.count() {
            rebuilt.extend_from_slice(l.slice(&bytes, i));
        }
        assert_eq!(rebuilt, bytes);
    }

    #[test]
    fn blob_id_matches_module_hash() {
        let module = tvm::asm::assemble(".module M 1 0 0\n.func main 0\n halt\n").unwrap();
        let blob = module.to_blob();
        assert_eq!(BlobId::of(&blob.bytes), BlobId::of_blob(&blob));
        assert_eq!(format!("{}", BlobId(0xAB)), "b00000000000000ab");
    }
}
