//! The node runtime: orchestrator and worker state machines written once
//! against [`Transport`], so the **same grid code path** runs over the
//! deterministic simulator and real UDP sockets.
//!
//! The runtime reuses the existing layers unchanged: `p2p` wire types
//! for provider adverts, `store`'s verified chunk swarm for module
//! distribution, `store::durable` for crash-safe peer state, and the
//! `tvm` prepared-execution cache for running jobs. What the farm
//! scheduler does inside the simulator — dispatch, code-on-demand fetch,
//! verify, execute, collect — these nodes do over a wire.

use crate::frame::Endpoint;
use crate::proto::{GridMsg, ModuleInfo};
use crate::{Transport, TransportEvent};
use netsim::SimTime;
use p2p::advert::{AdvertBody, BlobAdvert};
use p2p::{Advertisement, PeerId};
use std::collections::{BTreeMap, BTreeSet};
use std::path::Path;
use store::durable::DurableStore;
use store::{BlobId, ChunkStore, StoreError};
use triana_core::{ModuleCache, ModuleKey};
use tvm::{ExecContext, ModuleBlob, SandboxPolicy};

/// One farm job: which module to run and its input vector.
#[derive(Clone, Debug, PartialEq)]
pub struct JobSpec {
    pub module: ModuleInfo,
    pub input: Vec<f64>,
}

fn blob_advert(ep: Endpoint, module: &ModuleInfo, chunk_bytes: u64) -> Advertisement {
    Advertisement {
        body: AdvertBody::Blob(BlobAdvert {
            blob: module.hash,
            size_bytes: module.blob_len,
            chunks: module.blob_len.div_ceil(chunk_bytes) as u32,
            provider: PeerId(ep.0 as u32),
        }),
        // The node runtime treats providers as valid for the whole farm;
        // a fixed horizon keeps the encoded bytes backend-independent.
        expires: SimTime(u64::MAX),
    }
}

// ---------------------------------------------------------------------
// Orchestrator
// ---------------------------------------------------------------------

/// The farm master: enrols workers, dispatches jobs round-robin, serves
/// module chunks as the origin provider, and collects results.
pub struct OrchestratorNode<T> {
    t: T,
    chunk_bytes: u64,
    /// Origin copy of every dispatchable module, seeded into the store.
    store: ChunkStore,
    modules: BTreeMap<u64, ModuleInfo>,
    jobs: Vec<JobSpec>,
    expected_workers: usize,
    workers: BTreeSet<Endpoint>,
    /// blob → endpoints known to hold it completely (orchestrator
    /// included implicitly).
    holders: BTreeMap<u64, BTreeSet<Endpoint>>,
    results: BTreeMap<u64, (Endpoint, Vec<Vec<f64>>)>,
    assignment: BTreeMap<u64, Endpoint>,
    dispatched: bool,
    done: bool,
    obs: obs::Obs,
    events: Vec<TransportEvent>,
}

impl<T: Transport> OrchestratorNode<T> {
    /// `modules` pairs each dispatchable module's identity with its blob;
    /// blobs are seeded into the orchestrator's chunk store so it is the
    /// origin provider for every blob.
    pub fn new(
        t: T,
        chunk_bytes: u64,
        modules: Vec<(ModuleInfo, ModuleBlob)>,
        jobs: Vec<JobSpec>,
        expected_workers: usize,
        obs: obs::Obs,
    ) -> Self {
        let mut store = ChunkStore::new(chunk_bytes);
        let mut index = BTreeMap::new();
        for (info, blob) in modules {
            debug_assert_eq!(blob.hash, info.hash, "module info/blob mismatch");
            store.seed_blob(&blob);
            index.insert(info.hash, info);
        }
        OrchestratorNode {
            t,
            chunk_bytes,
            store,
            modules: index,
            jobs,
            expected_workers,
            workers: BTreeSet::new(),
            holders: BTreeMap::new(),
            results: BTreeMap::new(),
            assignment: BTreeMap::new(),
            dispatched: false,
            done: false,
            obs,
            events: Vec::new(),
        }
    }

    pub fn is_done(&self) -> bool {
        self.done
    }

    pub fn transport(&self) -> &T {
        &self.t
    }

    /// Completed jobs: job id → (worker, outputs).
    pub fn results(&self) -> &BTreeMap<u64, (Endpoint, Vec<Vec<f64>>)> {
        &self.results
    }

    /// Which worker each job was dispatched to.
    pub fn assignment(&self) -> &BTreeMap<u64, Endpoint> {
        &self.assignment
    }

    /// Drive the node: drain transport events and react. Call in a loop.
    pub fn pump(&mut self) {
        let mut events = std::mem::take(&mut self.events);
        events.clear();
        self.t.poll(&mut events);
        for ev in events.drain(..) {
            match ev {
                TransportEvent::Delivered { from, payload } => {
                    if let Ok(msg) = GridMsg::decode(&payload) {
                        self.on_msg(from, msg);
                    } else {
                        self.obs.incr("transport.proto_errors");
                    }
                }
                TransportEvent::Timer { .. } => {}
                TransportEvent::PeerDead { .. } => {
                    // A worker that died mid-farm would stall the run;
                    // the harness watchdog surfaces it. Restart-based
                    // recovery is exercised by re-running the farm over
                    // the same durable directories.
                }
            }
        }
        self.events = events;
    }

    fn on_msg(&mut self, from: Endpoint, msg: GridMsg) {
        match msg {
            GridMsg::Hello { have } => {
                self.workers.insert(from);
                for blob in have {
                    self.holders.entry(blob).or_default().insert(from);
                }
                let welcome = GridMsg::Welcome {
                    jobs_total: self.jobs.len() as u64,
                };
                let _ = self.t.send(from, welcome.encode());
                if self.workers.len() >= self.expected_workers && !self.dispatched {
                    self.dispatch_all();
                }
            }
            GridMsg::ChunkRequest {
                blob,
                blob_len: _,
                index,
            } => {
                if let Some(bytes) = self.store.chunk(BlobId(blob), index) {
                    let reply = GridMsg::ChunkData {
                        blob,
                        blob_len: self
                            .store
                            .layout_of(BlobId(blob))
                            .map(|l| l.blob_len)
                            .unwrap_or(0),
                        index,
                        bytes: bytes.to_vec(),
                    };
                    let _ = self.t.send(from, reply.encode());
                    self.obs.incr("transport.chunks_served");
                }
            }
            GridMsg::HaveBlob { blob } => {
                self.holders.entry(blob).or_default().insert(from);
            }
            GridMsg::JobResult { job, outputs } => {
                self.results.entry(job).or_insert((from, outputs));
                self.obs.incr("transport.jobs_completed");
                if self.results.len() == self.jobs.len() && !self.done {
                    let workers: Vec<Endpoint> = self.workers.iter().copied().collect();
                    for w in workers {
                        let _ = self.t.send(w, GridMsg::Shutdown.encode());
                    }
                    self.done = true;
                }
            }
            _ => {}
        }
    }

    /// All expected workers enrolled: hand out provider maps, then
    /// dispatch every job **round-robin by job index over the sorted
    /// worker set**. Deliberately not load-balanced by idleness: the
    /// assignment depends only on the job list and the worker set, so
    /// the sim and socket backends compute identical farms.
    fn dispatch_all(&mut self) {
        self.dispatched = true;
        let workers: Vec<Endpoint> = self.workers.iter().copied().collect();
        // Every worker learns the provider set of every module: the
        // orchestrator (origin) plus any worker that already holds the
        // blob (recovered from a previous run).
        let infos: Vec<ModuleInfo> = self.modules.values().cloned().collect();
        for info in &infos {
            let mut providers = vec![self.t.local()];
            if let Some(holders) = self.holders.get(&info.hash) {
                providers.extend(holders.iter().copied());
            }
            let adverts: Vec<Advertisement> = providers
                .iter()
                .map(|&ep| blob_advert(ep, info, self.chunk_bytes))
                .collect();
            let msg = GridMsg::Providers {
                blob: info.hash,
                adverts,
            };
            for &w in &workers {
                let _ = self.t.send(w, msg.encode());
            }
        }
        let jobs = self.jobs.clone();
        for (i, job) in jobs.iter().enumerate() {
            let w = workers[i % workers.len()];
            self.assignment.insert(i as u64, w);
            let msg = GridMsg::Dispatch {
                job: i as u64,
                module: job.module.clone(),
                input: job.input.clone(),
            };
            let _ = self.t.send(w, msg.encode());
            self.obs.incr("transport.jobs_dispatched");
        }
    }
}

// ---------------------------------------------------------------------
// Worker
// ---------------------------------------------------------------------

struct FetchState {
    module: ModuleInfo,
    /// Round-robin cursor over the provider list.
    next_provider: usize,
}

/// A consumer-grid worker: enrols with the orchestrator, fetches module
/// blobs chunk-by-chunk from the swarm, verifies and caches them, runs
/// dispatched jobs through the prepared-execution cache, and serves its
/// own chunks onward.
pub struct WorkerNode<T> {
    t: T,
    orch: Endpoint,
    cache: ModuleCache,
    store: ChunkStore,
    durable: Option<DurableStore>,
    policy: SandboxPolicy,
    ctx: ExecContext,
    providers: BTreeMap<u64, Vec<Endpoint>>,
    fetching: BTreeMap<u64, FetchState>,
    /// Jobs waiting for a blob fetch: blob → (job, module, input).
    waiting: BTreeMap<u64, Vec<(u64, ModuleInfo, Vec<f64>)>>,
    recovered_chunks: u64,
    done: bool,
    obs: obs::Obs,
    events: Vec<TransportEvent>,
}

impl<T: Transport> WorkerNode<T> {
    /// Build a worker. With `durable_dir`, peer state is recovered from
    /// and persisted to disk: recovered chunks are loaded back into the
    /// in-memory store (metered as `transport.recovered_chunks`), and
    /// sealed blobs go straight back into the module cache after
    /// re-verification.
    pub fn new(
        t: T,
        orch: Endpoint,
        chunk_bytes: u64,
        cache_capacity: u64,
        durable_dir: Option<&Path>,
        obs: obs::Obs,
    ) -> Self {
        let mut store = ChunkStore::new(chunk_bytes);
        let mut cache = ModuleCache::new(cache_capacity);
        cache.set_obs(obs.clone());
        let mut recovered_chunks = 0;
        let durable = durable_dir.map(|dir| {
            let d = DurableStore::open(dir).expect("open durable store");
            recovered_chunks = d.load_into(&mut store).expect("load recovered chunks");
            obs.add("transport.recovered_chunks", recovered_chunks);
            obs.add("transport.dropped_chunks", d.report().dropped_chunks);
            // Re-admit sealed blobs to the cache; assemble() re-verifies
            // the content hash, so a torn store can never resurrect a
            // corrupt module.
            for (name, version, blob) in d.sealed() {
                if store.is_complete(blob) {
                    if let Ok(module_blob) = store.assemble(blob) {
                        cache.insert(ModuleKey::new(&name, version), module_blob);
                    }
                }
            }
            d
        });
        WorkerNode {
            t,
            orch,
            cache,
            store,
            durable,
            policy: SandboxPolicy::standard(),
            ctx: ExecContext::default(),
            providers: BTreeMap::new(),
            fetching: BTreeMap::new(),
            waiting: BTreeMap::new(),
            recovered_chunks,
            done: false,
            obs,
            events: Vec::new(),
        }
    }

    pub fn is_done(&self) -> bool {
        self.done
    }

    pub fn transport(&self) -> &T {
        &self.t
    }

    /// Chunks recovered from the durable store at startup.
    pub fn recovered_chunks(&self) -> u64 {
        self.recovered_chunks
    }

    /// Cached modules as (name, version, hash), sorted — the
    /// backend-independent cache fingerprint the parity test compares.
    pub fn cached_modules(&self) -> Vec<(String, u32, u64)> {
        let mut v: Vec<(String, u32, u64)> = self
            .cache
            .entries()
            .map(|(k, blob)| (k.name.clone(), k.version, blob.hash))
            .collect();
        v.sort();
        v
    }

    /// Announce this worker to the orchestrator; call once before
    /// pumping. The Hello lists every complete blob already held (e.g.
    /// recovered from disk) so the orchestrator can advertise this
    /// worker as a provider.
    pub fn start(&mut self) {
        let mut have: Vec<u64> = self
            .durable
            .as_ref()
            .map(|d| {
                d.sealed()
                    .iter()
                    .filter(|(_, _, b)| self.store.is_complete(*b))
                    .map(|(_, _, b)| b.0)
                    .collect()
            })
            .unwrap_or_default();
        have.sort_unstable();
        let _ = self.t.send(self.orch, GridMsg::Hello { have }.encode());
    }

    /// Drive the node: drain transport events and react. Call in a loop.
    pub fn pump(&mut self) {
        let mut events = std::mem::take(&mut self.events);
        events.clear();
        self.t.poll(&mut events);
        for ev in events.drain(..) {
            match ev {
                TransportEvent::Delivered { from, payload } => {
                    if let Ok(msg) = GridMsg::decode(&payload) {
                        self.on_msg(from, msg);
                    } else {
                        self.obs.incr("transport.proto_errors");
                    }
                }
                TransportEvent::Timer { .. } => {}
                TransportEvent::PeerDead { peer } => {
                    if peer == self.orch {
                        // Orchestrator unreachable: nothing left to work
                        // for.
                        self.done = true;
                    }
                }
            }
        }
        self.events = events;
    }

    fn on_msg(&mut self, from: Endpoint, msg: GridMsg) {
        match msg {
            GridMsg::Welcome { .. } => {}
            GridMsg::Providers { blob, adverts } => {
                let mut eps: Vec<Endpoint> = adverts
                    .iter()
                    .filter_map(|a| match &a.body {
                        AdvertBody::Blob(b) if b.blob == blob => {
                            Some(Endpoint(u64::from(b.provider.0)))
                        }
                        _ => None,
                    })
                    .filter(|&ep| ep != self.t.local())
                    .collect();
                eps.sort_unstable();
                eps.dedup();
                self.providers.insert(blob, eps);
            }
            GridMsg::Dispatch { job, module, input } => {
                let key = ModuleKey::new(&module.name, module.version);
                if self.cache.contains(&key) {
                    self.run_job(job, &key, &input);
                } else if self.store.is_complete(BlobId(module.hash)) {
                    self.install_blob(&module);
                    self.run_job(job, &key, &input);
                } else {
                    self.waiting
                        .entry(module.hash)
                        .or_default()
                        .push((job, module.clone(), input));
                    self.begin_fetch(&module);
                }
            }
            GridMsg::ChunkRequest {
                blob,
                blob_len: _,
                index,
            } => {
                if let Some(bytes) = self.store.chunk(BlobId(blob), index) {
                    let blob_len = self
                        .store
                        .layout_of(BlobId(blob))
                        .map(|l| l.blob_len)
                        .unwrap_or(0);
                    let reply = GridMsg::ChunkData {
                        blob,
                        blob_len,
                        index,
                        bytes: bytes.to_vec(),
                    };
                    let _ = self.t.send(from, reply.encode());
                    self.obs.incr("transport.chunks_served");
                }
            }
            GridMsg::ChunkData {
                blob,
                blob_len,
                index,
                bytes,
            } => {
                let id = BlobId(blob);
                if self.store.insert_chunk(id, blob_len, index, bytes.clone()) {
                    if let Some(d) = self.durable.as_mut() {
                        let _ = d.admit_chunk(id, blob_len, index, &bytes);
                    }
                }
                if self.store.is_complete(id) {
                    if let Some(fs) = self.fetching.remove(&blob) {
                        self.finish_fetch(&fs.module);
                    }
                }
            }
            GridMsg::Shutdown => {
                self.done = true;
            }
            _ => {}
        }
    }

    /// Request every missing chunk of a blob, striping requests
    /// round-robin across the provider set (the swarm pattern from
    /// `store::assign_round_robin`, here over a wire).
    fn begin_fetch(&mut self, module: &ModuleInfo) {
        if self.fetching.contains_key(&module.hash) {
            return;
        }
        let providers = self
            .providers
            .get(&module.hash)
            .cloned()
            .filter(|p| !p.is_empty())
            .unwrap_or_else(|| vec![self.orch]);
        let missing = self.store.missing(BlobId(module.hash), module.blob_len);
        let mut fs = FetchState {
            module: module.clone(),
            next_provider: 0,
        };
        for index in missing {
            let target = providers[fs.next_provider % providers.len()];
            fs.next_provider += 1;
            let req = GridMsg::ChunkRequest {
                blob: module.hash,
                blob_len: module.blob_len,
                index,
            };
            let _ = self.t.send(target, req.encode());
            self.obs.incr("transport.chunks_requested");
        }
        self.fetching.insert(module.hash, fs);
    }

    /// All chunks arrived: assemble, verify, cache, seal, announce, and
    /// run any jobs that were waiting on the blob.
    fn finish_fetch(&mut self, module: &ModuleInfo) {
        let id = BlobId(module.hash);
        match self.store.assemble(id) {
            Ok(blob) => {
                let key = ModuleKey::new(&module.name, module.version);
                self.cache.insert(key.clone(), blob);
                if let Some(d) = self.durable.as_mut() {
                    let _ = d.seal(id, &module.name, module.version);
                }
                let _ = self
                    .t
                    .send(self.orch, GridMsg::HaveBlob { blob: module.hash }.encode());
                let waiting = self.waiting.remove(&module.hash).unwrap_or_default();
                self.run_jobs(&key, &waiting);
            }
            Err(StoreError::HashMismatch { .. }) => {
                // Poisoned transfer: drop everything and re-fetch.
                self.obs.incr("transport.verify_failures");
                self.store.release(id);
                if let Some(d) = self.durable.as_mut() {
                    let _ = d.release(id);
                }
                self.begin_fetch(module);
            }
            Err(_) => {}
        }
    }

    /// A complete blob is already in the store (recovered): verify and
    /// admit it to the cache.
    fn install_blob(&mut self, module: &ModuleInfo) {
        let id = BlobId(module.hash);
        match self.store.assemble(id) {
            Ok(blob) => {
                self.cache
                    .insert(ModuleKey::new(&module.name, module.version), blob);
            }
            Err(_) => {
                // Recovered bytes fail verification: treat as absent.
                self.store.release(id);
                if let Some(d) = self.durable.as_mut() {
                    let _ = d.release(id);
                }
            }
        }
    }

    fn run_job(&mut self, job: u64, key: &ModuleKey, input: &[f64]) {
        let outputs = match self.cache.get_prepared(key) {
            Some(prepared) => {
                let inputs: Vec<&[f64]> = if input.is_empty() {
                    Vec::new()
                } else {
                    vec![input]
                };
                match prepared.execute_obs(&inputs, &self.policy, &mut self.ctx, &self.obs) {
                    Ok((outputs, _stats)) => outputs,
                    Err(_) => Vec::new(),
                }
            }
            None => Vec::new(),
        };
        let msg = GridMsg::JobResult { job, outputs };
        let _ = self.t.send(self.orch, msg.encode());
    }

    /// Batched job flush: every job that queued up behind one blob fetch
    /// is driven through a single `execute_batch_obs` dispatch, so the
    /// tier amortises setup across the backlog. Result messages go out in
    /// the original queue order, one `JobResult` per job, exactly as the
    /// sequential path would send them.
    fn run_jobs(&mut self, key: &ModuleKey, jobs: &[(u64, ModuleInfo, Vec<f64>)]) {
        if jobs.is_empty() {
            return;
        }
        let results = match self.cache.get_prepared(key) {
            Some(prepared) => {
                let port_sets: Vec<Vec<&[f64]>> = jobs
                    .iter()
                    .map(|(_, _, input)| {
                        if input.is_empty() {
                            Vec::new()
                        } else {
                            vec![input.as_slice()]
                        }
                    })
                    .collect();
                let batch: Vec<&[&[f64]]> = port_sets.iter().map(|p| p.as_slice()).collect();
                prepared.execute_batch_obs(&batch, &self.policy, &mut self.ctx, &self.obs)
            }
            None => jobs
                .iter()
                .map(|_| Ok((Vec::new(), Default::default())))
                .collect(),
        };
        for ((job, _, _), result) in jobs.iter().zip(results) {
            let outputs = result.map(|(o, _stats)| o).unwrap_or_default();
            let msg = GridMsg::JobResult { job: *job, outputs };
            let _ = self.t.send(self.orch, msg.encode());
        }
    }
}
