//! `triana-transport` — one grid code path over the deterministic netsim
//! or real UDP sockets, with durable peer state.
//!
//! The paper's consumer grid runs over real consumer connections; the
//! reproduction so far ran everything inside the discrete-event simulator.
//! This crate closes that gap with a small transport abstraction:
//!
//! * [`Transport`] — endpoint addressing ([`Endpoint`]), framed datagram
//!   send, polled delivery events, cancellable timers, and a monotonic
//!   microsecond clock;
//! * [`sim::SimNet`] / [`sim::SimEndpoint`] — the trait over the existing
//!   netsim calendar-queue loop, so runs stay deterministic and every
//!   chaos fault still applies;
//! * [`socket::SocketTransport`] — real nonblocking UDP (`std::net`, no
//!   async runtime exists in this offline workspace) with the same frame
//!   codec;
//! * [`reliab::PeerChannel`] — the shared reliability layer (per-peer
//!   sequence numbers, in-order delivery, ack/retransmit with exponential
//!   backoff, liveness probing) used identically by both backends;
//! * [`node`] / [`proto`] — a worker/orchestrator node runtime speaking a
//!   small grid protocol over the trait, reusing the p2p wire codec, the
//!   chunked swarm store, and the TVM prepared-execution cache;
//! * [`harness`] — drives the same node code over either backend and is
//!   the basis of the sim-vs-socket parity test.
//!
//! Durable peer state (write-ahead manifest + hash-verified chunk files)
//! lives in `store::durable`; the node runtime admits fetched chunks
//! there so a restarted peer recovers its module cache from disk.

pub mod frame;
pub mod harness;
pub mod node;
pub mod proto;
pub mod reliab;
pub mod sim;
pub mod socket;

pub use frame::{Endpoint, Frame, FrameError, FrameKind};
pub use reliab::{ChanOut, ChannelConfig, PeerChannel};

use netsim::{Duration, SimTime};

/// Identifier of a pending timer, unique within one transport instance.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TimerId(pub u64);

/// Why a send was refused outright (losses and timeouts surface later as
/// retransmits or [`TransportEvent::PeerDead`], not here).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TransportError {
    /// No route/address registered for this endpoint.
    UnknownPeer(Endpoint),
    /// Payload exceeds [`frame::MAX_PAYLOAD`].
    PayloadTooLarge { len: usize },
    /// Socket-level failure (socket backend only).
    Io(String),
}

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportError::UnknownPeer(ep) => write!(f, "unknown peer {ep}"),
            TransportError::PayloadTooLarge { len } => {
                write!(f, "payload of {len} bytes exceeds frame maximum")
            }
            TransportError::Io(e) => write!(f, "transport io error: {e}"),
        }
    }
}

impl std::error::Error for TransportError {}

/// Something the transport surfaced to the application.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TransportEvent {
    /// A reliable, in-order datagram payload from a peer.
    Delivered { from: Endpoint, payload: Vec<u8> },
    /// A timer set with [`Transport::set_timer`] expired (and was not
    /// cancelled first). Carries the caller's token.
    Timer { token: u64 },
    /// The reliability layer gave up on this peer (retransmits exhausted
    /// or liveness silence). Emitted once per peer.
    PeerDead { peer: Endpoint },
}

/// The one surface the grid node runtime is written against. Implemented
/// by the deterministic sim backend and the UDP socket backend; the node
/// code cannot tell which one it is running on.
pub trait Transport {
    /// This transport's own address.
    fn local(&self) -> Endpoint;

    /// Monotonic microsecond clock: virtual time on the sim backend,
    /// `Instant`-anchored wall time on sockets. Only *differences* are
    /// meaningful across backends.
    fn now(&self) -> SimTime;

    /// Queue a payload for reliable, in-order delivery to `dst`. The
    /// frame is sequenced and retransmitted until acked.
    fn send(&mut self, dst: Endpoint, payload: Vec<u8>) -> Result<(), TransportError>;

    /// Arm a one-shot timer `delay` from now; the `token` comes back in
    /// the [`TransportEvent::Timer`].
    fn set_timer(&mut self, delay: Duration, token: u64) -> TimerId;

    /// Cancel a pending timer. Cancelling an already-fired or unknown
    /// timer is a no-op.
    fn cancel_timer(&mut self, timer: TimerId);

    /// Drain everything ready right now — delivered payloads, expired
    /// timers, peer-death notices — into `events`, in a deterministic
    /// order for a given history. Never blocks.
    fn poll(&mut self, events: &mut Vec<TransportEvent>);

    /// Frames sent but not yet acknowledged, across all peers. Zero
    /// means every send has landed — the clean-exit condition.
    fn pending(&self) -> usize;
}

/// Lifetime counters every backend maintains, mirrored into the shared
/// obs registry under `transport.*` when an observer is attached.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TransportCounters {
    pub frames_sent: u64,
    pub frames_recv: u64,
    pub retransmits: u64,
    pub acks: u64,
}

impl TransportCounters {
    pub(crate) fn frame_sent(&mut self, obs: &obs::Obs) {
        self.frames_sent += 1;
        obs.incr("transport.frames_sent");
    }

    pub(crate) fn frame_recv(&mut self, obs: &obs::Obs) {
        self.frames_recv += 1;
        obs.incr("transport.frames_recv");
    }

    pub(crate) fn retransmit(&mut self, obs: &obs::Obs) {
        self.retransmits += 1;
        obs.incr("transport.retransmits");
    }

    pub(crate) fn ack(&mut self, obs: &obs::Obs) {
        self.acks += 1;
        obs.incr("transport.acks");
    }
}
