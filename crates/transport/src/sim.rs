//! The deterministic backend: [`Transport`] over the netsim calendar
//! queue and star-topology link model.
//!
//! One [`SimNet`] is a whole simulated internet: it owns the `Sim` event
//! loop and the `Network`, and hands out [`SimEndpoint`] handles that
//! implement [`Transport`]. Frames cost their encoded bytes through the
//! same uplink/downlink queueing every other experiment uses, deliveries
//! pop in `(time, insertion-seq)` order, and the whole run is
//! byte-reproducible from the seed. Hosts can be knocked offline with
//! [`SimNet::set_online`] — frames are then lost and the shared
//! reliability layer's retransmit/liveness machinery takes over, exactly
//! as it would on a real socket.

use crate::frame::{Endpoint, Frame, FrameKind, MAX_PAYLOAD};
use crate::reliab::{ChanOut, ChannelConfig, PeerChannel};
use crate::{TimerId, Transport, TransportCounters, TransportError, TransportEvent};
use netsim::{Duration, HostId, HostSpec, Network, PayloadArena, PayloadId, Sim, SimTime};
use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::rc::Rc;

enum NetEv {
    /// An encoded frame arriving at `dst` (already paid its link delay).
    /// The bytes live in the world's payload arena; the event carries only
    /// the slot id, released back for reuse at delivery.
    Frame { dst: Endpoint, payload: PayloadId },
    /// A one-shot application timer.
    Timer { ep: Endpoint, id: u64, token: u64 },
    /// Channel maintenance (retransmit / liveness) for one endpoint.
    Tick { ep: Endpoint, at: SimTime },
}

struct EpState {
    host: HostId,
    channels: BTreeMap<Endpoint, PeerChannel>,
    inbox: VecDeque<TransportEvent>,
    cancelled: BTreeSet<u64>,
    next_timer: u64,
    counters: TransportCounters,
    /// Instant of the currently-scheduled maintenance tick, if any.
    tick_at: Option<SimTime>,
}

struct World {
    sim: Sim<NetEv>,
    net: Network,
    eps: BTreeMap<Endpoint, EpState>,
    cfg: ChannelConfig,
    /// Recycled storage for in-flight encoded frames: in steady state a
    /// frame encodes into a buffer some earlier frame already paid for.
    arena: PayloadArena<Vec<u8>>,
    obs: obs::Obs,
}

impl World {
    /// Put an encoded frame on the simulated wire. Loss (offline host,
    /// cut link) is silent here — the reliability layer notices.
    fn transmit(&mut self, frame: &Frame) {
        let Some(src) = self.eps.get_mut(&frame.src) else {
            return;
        };
        src.counters.frame_sent(&self.obs);
        if frame.kind == FrameKind::Ack {
            src.counters.ack(&self.obs);
        }
        let src_host = src.host;
        let Some(dst) = self.eps.get(&frame.dst) else {
            return;
        };
        let dst_host = dst.host;
        let (id, buf) = self.arena.acquire();
        buf.clear();
        frame.encode_into(buf);
        let wire_bytes = buf.len() as u64;
        let now = self.sim.now();
        match self.net.transfer(now, src_host, dst_host, wire_bytes) {
            Ok(delay) => self.sim.schedule(
                delay,
                NetEv::Frame {
                    dst: frame.dst,
                    payload: id,
                },
            ),
            // Lost on the wire (offline host, cut link): the slot frees
            // immediately instead of riding a phantom delivery.
            Err(_) => self.arena.release(id),
        }
    }

    /// Apply channel outputs for endpoint `ep`, given the peer they
    /// concern.
    fn apply(&mut self, ep: Endpoint, peer: Endpoint, outs: Vec<ChanOut>) {
        for out in outs {
            match out {
                ChanOut::Transmit(f) => self.transmit(&f),
                ChanOut::Retransmit(f) => {
                    if let Some(s) = self.eps.get_mut(&ep) {
                        s.counters.retransmit(&self.obs);
                    }
                    self.transmit(&f);
                }
                ChanOut::Deliver(payload) => {
                    if let Some(s) = self.eps.get_mut(&ep) {
                        s.inbox.push_back(TransportEvent::Delivered {
                            from: peer,
                            payload,
                        });
                    }
                }
                ChanOut::Dead => {
                    if let Some(s) = self.eps.get_mut(&ep) {
                        s.inbox.push_back(TransportEvent::PeerDead { peer });
                    }
                }
            }
        }
    }

    /// (Re)arm the maintenance tick for `ep` at the earliest channel
    /// deadline, if it is sooner than whatever is already scheduled.
    fn arm_tick(&mut self, ep: Endpoint) {
        let Some(s) = self.eps.get_mut(&ep) else {
            return;
        };
        let deadline = s.channels.values().filter_map(|c| c.next_deadline()).min();
        let Some(d) = deadline else {
            return;
        };
        if s.tick_at.is_some_and(|t| t <= d) {
            return;
        }
        s.tick_at = Some(d);
        self.sim.schedule_at(d, NetEv::Tick { ep, at: d });
    }

    fn on_event(&mut self, ev: NetEv) {
        match ev {
            NetEv::Frame { dst, payload } => {
                let frame = Frame::decode(self.arena.get(payload));
                self.arena.release(payload);
                let Some(s) = self.eps.get_mut(&dst) else {
                    return;
                };
                let frame = match frame {
                    Ok(f) => f,
                    Err(_) => {
                        self.obs.incr("transport.decode_errors");
                        return;
                    }
                };
                s.counters.frame_recv(&self.obs);
                let now = self.sim.now();
                let peer = frame.src;
                let cfg = self.cfg;
                let chan = s
                    .channels
                    .entry(peer)
                    .or_insert_with(|| PeerChannel::new(dst, peer, cfg, now));
                let mut outs = Vec::new();
                chan.on_frame(now, frame, &mut outs);
                self.apply(dst, peer, outs);
                self.arm_tick(dst);
            }
            NetEv::Timer { ep, id, token } => {
                if let Some(s) = self.eps.get_mut(&ep) {
                    if !s.cancelled.remove(&id) {
                        s.inbox.push_back(TransportEvent::Timer { token });
                    }
                }
            }
            NetEv::Tick { ep, at } => {
                let Some(s) = self.eps.get_mut(&ep) else {
                    return;
                };
                if s.tick_at != Some(at) {
                    return; // superseded by an earlier re-arm
                }
                s.tick_at = None;
                let now = self.sim.now();
                let mut all: Vec<(Endpoint, Vec<ChanOut>)> = Vec::new();
                for (peer, chan) in s.channels.iter_mut() {
                    let mut outs = Vec::new();
                    chan.on_tick(now, &mut outs);
                    if !outs.is_empty() {
                        all.push((*peer, outs));
                    }
                }
                for (peer, outs) in all {
                    self.apply(ep, peer, outs);
                }
                self.arm_tick(ep);
            }
        }
    }
}

/// One simulated internet hosting any number of transport endpoints.
#[derive(Clone)]
pub struct SimNet {
    world: Rc<RefCell<World>>,
}

impl SimNet {
    pub fn new(seed: u64) -> Self {
        SimNet {
            world: Rc::new(RefCell::new(World {
                sim: Sim::new(seed),
                net: Network::new(),
                eps: BTreeMap::new(),
                cfg: ChannelConfig::sim_default(),
                arena: PayloadArena::new(),
                obs: obs::Obs::disabled(),
            })),
        }
    }

    /// Attach a metrics observer; `transport.*` counters then feed the
    /// shared registry.
    pub fn set_obs(&self, observer: obs::Obs) {
        self.world.borrow_mut().obs = observer;
    }

    /// Register an endpoint backed by a simulated host. Panics if the
    /// endpoint id is already taken.
    pub fn add_endpoint(&self, ep: Endpoint, spec: HostSpec) -> SimEndpoint {
        let mut w = self.world.borrow_mut();
        let host = w.net.add_host(spec);
        let prev = w.eps.insert(
            ep,
            EpState {
                host,
                channels: BTreeMap::new(),
                inbox: VecDeque::new(),
                cancelled: BTreeSet::new(),
                next_timer: 0,
                counters: TransportCounters::default(),
                tick_at: None,
            },
        );
        assert!(prev.is_none(), "endpoint {ep} registered twice");
        SimEndpoint {
            world: Rc::clone(&self.world),
            ep,
        }
    }

    /// Knock a host off the simulated network (or bring it back). While
    /// offline, frames to and from it are lost.
    pub fn set_online(&self, ep: Endpoint, online: bool) {
        let mut w = self.world.borrow_mut();
        if let Some(host) = w.eps.get(&ep).map(|s| s.host) {
            w.net.set_online(host, online);
        }
    }

    /// Dispatch the next simulated event. Returns `false` when the queue
    /// has drained (the network is quiescent).
    pub fn step(&self) -> bool {
        let mut w = self.world.borrow_mut();
        match w.sim.step() {
            Some(ev) => {
                w.on_event(ev);
                true
            }
            None => false,
        }
    }

    pub fn now(&self) -> SimTime {
        self.world.borrow().sim.now()
    }

    /// Arena traffic so far (allocs = slots created, reuses = recycled).
    pub fn arena_stats(&self) -> netsim::PayloadStats {
        self.world.borrow().arena.stats()
    }

    /// Fold the arena counters into the observer as monotonic counters
    /// (`netsim.payload_allocs` / `netsim.payload_reuses`). Called at run
    /// boundaries so the per-frame hot path never touches the registry.
    pub fn publish_arena_stats(&self) {
        let w = self.world.borrow();
        let stats = w.arena.stats();
        w.obs.add("netsim.payload_allocs", stats.allocs);
        w.obs.add("netsim.payload_reuses", stats.reuses);
    }

    /// Lifetime counters for one endpoint.
    pub fn counters(&self, ep: Endpoint) -> TransportCounters {
        self.world
            .borrow()
            .eps
            .get(&ep)
            .map(|s| s.counters)
            .unwrap_or_default()
    }
}

/// A [`Transport`] handle onto one endpoint of a [`SimNet`].
pub struct SimEndpoint {
    world: Rc<RefCell<World>>,
    ep: Endpoint,
}

impl Transport for SimEndpoint {
    fn local(&self) -> Endpoint {
        self.ep
    }

    fn now(&self) -> SimTime {
        self.world.borrow().sim.now()
    }

    fn send(&mut self, dst: Endpoint, payload: Vec<u8>) -> Result<(), TransportError> {
        if payload.len() > MAX_PAYLOAD {
            return Err(TransportError::PayloadTooLarge { len: payload.len() });
        }
        let mut w = self.world.borrow_mut();
        if !w.eps.contains_key(&dst) {
            return Err(TransportError::UnknownPeer(dst));
        }
        let now = w.sim.now();
        let cfg = w.cfg;
        let ep = self.ep;
        let s = w.eps.get_mut(&ep).expect("own endpoint registered");
        let chan = s
            .channels
            .entry(dst)
            .or_insert_with(|| PeerChannel::new(ep, dst, cfg, now));
        let frame = chan.send_data(now, payload);
        w.transmit(&frame);
        w.arm_tick(ep);
        Ok(())
    }

    fn set_timer(&mut self, delay: Duration, token: u64) -> TimerId {
        let mut w = self.world.borrow_mut();
        let ep = self.ep;
        let s = w.eps.get_mut(&ep).expect("own endpoint registered");
        let id = s.next_timer;
        s.next_timer += 1;
        w.sim.schedule(delay, NetEv::Timer { ep, id, token });
        TimerId(id)
    }

    fn cancel_timer(&mut self, timer: TimerId) {
        let mut w = self.world.borrow_mut();
        if let Some(s) = w.eps.get_mut(&self.ep) {
            s.cancelled.insert(timer.0);
        }
    }

    fn poll(&mut self, events: &mut Vec<TransportEvent>) {
        let mut w = self.world.borrow_mut();
        if let Some(s) = w.eps.get_mut(&self.ep) {
            events.extend(s.inbox.drain(..));
        }
    }

    fn pending(&self) -> usize {
        let w = self.world.borrow();
        w.eps
            .get(&self.ep)
            .map(|s| s.channels.values().map(PeerChannel::in_flight).sum())
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn world_pair() -> (SimNet, SimEndpoint, SimEndpoint) {
        let net = SimNet::new(7);
        let a = net.add_endpoint(Endpoint(1), HostSpec::reference_pc());
        let b = net.add_endpoint(Endpoint(2), HostSpec::reference_pc());
        (net, a, b)
    }

    fn drain(net: &SimNet) {
        let mut guard = 0;
        while net.step() {
            guard += 1;
            assert!(guard < 100_000, "sim did not quiesce");
        }
    }

    #[test]
    fn payload_travels_and_acks_flow() {
        let (net, mut a, mut b) = world_pair();
        a.send(Endpoint(2), b"hello grid".to_vec()).unwrap();
        drain(&net);
        let mut evs = Vec::new();
        b.poll(&mut evs);
        assert_eq!(
            evs,
            vec![TransportEvent::Delivered {
                from: Endpoint(1),
                payload: b"hello grid".to_vec()
            }]
        );
        let ca = net.counters(Endpoint(1));
        let cb = net.counters(Endpoint(2));
        // a sent one data frame, b acked it; nothing retransmitted.
        assert_eq!((ca.frames_sent, ca.retransmits), (1, 0));
        assert_eq!((cb.frames_recv, cb.acks), (1, 1));
        assert_eq!(ca.frames_recv, 1, "a received the ack");
    }

    #[test]
    fn many_messages_arrive_in_order() {
        let (net, mut a, mut b) = world_pair();
        for i in 0..20u8 {
            a.send(Endpoint(2), vec![i]).unwrap();
        }
        drain(&net);
        let mut evs = Vec::new();
        b.poll(&mut evs);
        let got: Vec<u8> = evs
            .iter()
            .filter_map(|e| match e {
                TransportEvent::Delivered { payload, .. } => Some(payload[0]),
                _ => None,
            })
            .collect();
        assert_eq!(got, (0..20).collect::<Vec<u8>>());
    }

    #[test]
    fn timers_fire_and_cancel() {
        let (net, mut a, _b) = world_pair();
        a.set_timer(Duration::from_millis(5), 111);
        let doomed = a.set_timer(Duration::from_millis(6), 222);
        a.cancel_timer(doomed);
        drain(&net);
        let mut evs = Vec::new();
        a.poll(&mut evs);
        assert_eq!(evs, vec![TransportEvent::Timer { token: 111 }]);
    }

    #[test]
    fn offline_peer_is_declared_dead_after_retries() {
        let (net, mut a, mut b) = world_pair();
        net.set_online(Endpoint(2), false);
        a.send(Endpoint(2), vec![1, 2, 3]).unwrap();
        drain(&net);
        let mut evs = Vec::new();
        a.poll(&mut evs);
        assert_eq!(evs, vec![TransportEvent::PeerDead { peer: Endpoint(2) }]);
        let mut bev = Vec::new();
        b.poll(&mut bev);
        assert!(bev.is_empty());
        assert!(net.counters(Endpoint(1)).retransmits > 0);
    }

    #[test]
    fn identical_seeds_give_identical_histories() {
        let run = || {
            let (net, mut a, mut b) = world_pair();
            for i in 0..10u8 {
                a.send(Endpoint(2), vec![i; (i as usize % 5) + 1]).unwrap();
            }
            drain(&net);
            let mut evs = Vec::new();
            b.poll(&mut evs);
            (format!("{evs:?}"), net.counters(Endpoint(1)), net.now())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn oversized_payload_refused() {
        let (_net, mut a, _b) = world_pair();
        let err = a.send(Endpoint(2), vec![0; MAX_PAYLOAD + 1]).unwrap_err();
        assert!(matches!(err, TransportError::PayloadTooLarge { .. }));
    }

    #[test]
    fn unknown_peer_refused() {
        let (_net, mut a, _b) = world_pair();
        let err = a.send(Endpoint(99), vec![1]).unwrap_err();
        assert_eq!(err, TransportError::UnknownPeer(Endpoint(99)));
    }
}
