//! Drive the same worker/orchestrator node code over either backend.
//!
//! [`run_sim`] executes a farm on the deterministic simulator
//! (single-threaded, byte-reproducible from the seed); [`run_sockets`]
//! executes the *same* farm over real UDP on the loopback interface,
//! one OS thread per node. Both return a [`FarmOutcome`] whose fields
//! are wall-clock-independent by construction — job→worker assignment
//! is round-robin over the sorted worker set, outputs come from the
//! deterministic TVM, and cache fingerprints list (name, version, hash)
//! triples — so the two backends must produce identical outcomes. The
//! parity test holds them to that.

use crate::frame::Endpoint;
use crate::node::{JobSpec, OrchestratorNode, WorkerNode};
use crate::proto::ModuleInfo;
use crate::sim::SimNet;
use crate::socket::SocketTransport;
use crate::Transport;
use netsim::HostSpec;
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::time::Instant;
use tvm::ModuleBlob;

/// A farm to run: modules, jobs, worker count, store geometry.
#[derive(Clone)]
pub struct FarmSpec {
    pub chunk_bytes: u64,
    pub cache_capacity: u64,
    pub n_workers: usize,
    pub modules: Vec<(ModuleInfo, ModuleBlob)>,
    pub jobs: Vec<JobSpec>,
    /// One durable-store directory per worker; `None` runs memory-only.
    pub durable_dirs: Option<Vec<PathBuf>>,
}

/// The backend-independent result of a farm run.
#[derive(Clone, Debug, PartialEq)]
pub struct FarmOutcome {
    /// job → (worker that ran it, outputs).
    pub results: BTreeMap<u64, (Endpoint, Vec<Vec<f64>>)>,
    /// job → worker it was dispatched to.
    pub assignment: BTreeMap<u64, Endpoint>,
    /// worker → sorted (name, version, hash) cache fingerprint.
    pub worker_modules: BTreeMap<Endpoint, Vec<(String, u32, u64)>>,
    /// Chunks recovered from durable stores at startup, all workers.
    pub recovered_chunks: u64,
}

/// Assemble a small demo module: reads `input[0][0]`, multiplies by
/// 2.5, emits one output — padded with `pad` push/pop pairs so the blob
/// spans several chunks and actually exercises the swarm path.
pub fn demo_module(name: &str, version: u32, pad: usize) -> (ModuleInfo, ModuleBlob) {
    let mut src = format!(".module {name} {version} 1 1\n.func main 0\n");
    for _ in 0..pad {
        src.push_str(" push 1\n pop\n");
    }
    src.push_str(" push 0\n inget 0\n push 2.5\n mul\n outpush 0\n halt\n");
    let blob = tvm::asm::assemble(&src)
        .expect("demo module assembles")
        .to_blob();
    let info = ModuleInfo {
        name: name.to_string(),
        version,
        hash: blob.hash,
        blob_len: blob.bytes.len() as u64,
    };
    (info, blob)
}

/// Endpoint ids used by both backends: orchestrator 0, workers 1..=n.
pub fn orch_endpoint() -> Endpoint {
    Endpoint(0)
}

pub fn worker_endpoint(i: usize) -> Endpoint {
    Endpoint(1 + i as u64)
}

fn durable_dir(spec: &FarmSpec, i: usize) -> Option<&std::path::Path> {
    spec.durable_dirs.as_ref().map(|v| v[i].as_path())
}

fn outcome<T: Transport, U: Transport>(
    orch: &OrchestratorNode<T>,
    workers: &[WorkerNode<U>],
) -> FarmOutcome {
    let mut worker_modules = BTreeMap::new();
    let mut recovered = 0;
    for (i, w) in workers.iter().enumerate() {
        worker_modules.insert(worker_endpoint(i), w.cached_modules());
        recovered += w.recovered_chunks();
    }
    FarmOutcome {
        results: orch.results().clone(),
        assignment: orch.assignment().clone(),
        worker_modules,
        recovered_chunks: recovered,
    }
}

/// Run the farm on the deterministic sim backend. Identical
/// (spec, seed) pairs produce identical outcomes *and* identical
/// `transport.*` counter values in `observer`.
pub fn run_sim(spec: &FarmSpec, seed: u64, observer: obs::Obs) -> FarmOutcome {
    let net = SimNet::new(seed);
    net.set_obs(observer.clone());
    let orch_t = net.add_endpoint(orch_endpoint(), HostSpec::reference_pc());
    let mut workers: Vec<WorkerNode<_>> = (0..spec.n_workers)
        .map(|i| {
            let t = net.add_endpoint(worker_endpoint(i), HostSpec::reference_pc());
            WorkerNode::new(
                t,
                orch_endpoint(),
                spec.chunk_bytes,
                spec.cache_capacity,
                durable_dir(spec, i),
                observer.clone(),
            )
        })
        .collect();
    let mut orch = OrchestratorNode::new(
        orch_t,
        spec.chunk_bytes,
        spec.modules.clone(),
        spec.jobs.clone(),
        spec.n_workers,
        observer,
    );
    for w in &mut workers {
        w.start();
    }
    let mut idle = 0;
    let mut steps: u64 = 0;
    loop {
        orch.pump();
        for w in &mut workers {
            w.pump();
        }
        if net.step() {
            idle = 0;
        } else {
            idle += 1;
            if idle >= 2 {
                break;
            }
        }
        steps += 1;
        assert!(steps < 10_000_000, "sim farm did not quiesce");
    }
    assert!(orch.is_done(), "sim farm did not complete all jobs");
    net.publish_arena_stats();
    outcome(&orch, &workers)
}

/// Run the same farm over real UDP sockets on loopback: the
/// orchestrator on the calling thread, one OS thread per worker.
/// Panics if the farm does not complete within `budget`.
pub fn run_sockets(
    spec: &FarmSpec,
    observer: obs::Obs,
    budget: std::time::Duration,
) -> FarmOutcome {
    let mut orch_t =
        SocketTransport::bind_loopback(orch_endpoint()).expect("bind orchestrator socket");
    orch_t.set_obs(observer.clone());
    let orch_addr = orch_t.local_addr().expect("orchestrator address");
    // Bind every worker first so the full address mesh is known before
    // any node starts talking.
    let mut sockets: Vec<SocketTransport> = (0..spec.n_workers)
        .map(|i| {
            let mut t =
                SocketTransport::bind_loopback(worker_endpoint(i)).expect("bind worker socket");
            t.set_obs(observer.clone());
            t.register_peer(orch_endpoint(), orch_addr);
            t
        })
        .collect();
    let worker_addrs: Vec<std::net::SocketAddr> = sockets
        .iter()
        .map(|t| t.local_addr().expect("worker address"))
        .collect();
    for (i, t) in sockets.iter_mut().enumerate() {
        for (j, &addr) in worker_addrs.iter().enumerate() {
            if i != j {
                t.register_peer(worker_endpoint(j), addr);
            }
        }
    }
    for (j, &addr) in worker_addrs.iter().enumerate() {
        orch_t.register_peer(worker_endpoint(j), addr);
    }
    let handles: Vec<_> = sockets
        .into_iter()
        .enumerate()
        .map(|(i, t)| {
            let chunk_bytes = spec.chunk_bytes;
            let cache_capacity = spec.cache_capacity;
            let dir = spec.durable_dirs.as_ref().map(|v| v[i].clone());
            let obs = observer.clone();
            std::thread::spawn(move || {
                let mut w = WorkerNode::new(
                    t,
                    orch_endpoint(),
                    chunk_bytes,
                    cache_capacity,
                    dir.as_deref(),
                    obs,
                );
                w.start();
                let start = Instant::now();
                while !w.is_done() {
                    w.pump();
                    assert!(
                        start.elapsed() < budget,
                        "worker {i} did not finish within the budget"
                    );
                    std::thread::sleep(std::time::Duration::from_micros(200));
                }
                // Grace flush: let final acks drain so peers exit clean.
                let flush = Instant::now();
                while w.transport().pending() > 0 && flush.elapsed().as_millis() < 500 {
                    w.pump();
                    std::thread::sleep(std::time::Duration::from_micros(200));
                }
                (w.cached_modules(), w.recovered_chunks())
            })
        })
        .collect();
    let mut orch = OrchestratorNode::new(
        orch_t,
        spec.chunk_bytes,
        spec.modules.clone(),
        spec.jobs.clone(),
        spec.n_workers,
        observer,
    );
    let start = Instant::now();
    while !orch.is_done() {
        orch.pump();
        assert!(
            start.elapsed() < budget,
            "socket farm did not finish within the budget"
        );
        std::thread::sleep(std::time::Duration::from_micros(200));
    }
    // Keep pumping while workers ack the shutdown and drain.
    let flush = Instant::now();
    while (orch.transport().pending() > 0 || flush.elapsed().as_millis() < 50)
        && flush.elapsed().as_millis() < 1_000
    {
        orch.pump();
        std::thread::sleep(std::time::Duration::from_micros(200));
    }
    let mut worker_modules = BTreeMap::new();
    let mut recovered = 0;
    for (i, h) in handles.into_iter().enumerate() {
        let (mods, rec) = h.join().expect("worker thread");
        worker_modules.insert(worker_endpoint(i), mods);
        recovered += rec;
    }
    FarmOutcome {
        results: orch.results().clone(),
        assignment: orch.assignment().clone(),
        worker_modules,
        recovered_chunks: recovered,
    }
}
