//! The small grid protocol the node runtime speaks over [`crate::Transport`].
//!
//! Messages reuse the `p2p::wire` binary codec — including the
//! [`Advertisement`] codec for provider announcements, so the swarm layer
//! speaks the same advert format whether it rides the in-sim overlay or a
//! real socket. Every decode path is total: truncated or corrupted input
//! yields a typed [`WireError`], never a panic.

use p2p::wire::{decode_advert, encode_advert, Reader, WireError, Writer};
use p2p::Advertisement;

/// Identity of a module the orchestrator can dispatch: enough for a
/// worker to fetch, verify and cache the blob.
#[derive(Clone, Debug, PartialEq)]
pub struct ModuleInfo {
    pub name: String,
    pub version: u32,
    /// FNV-1a 64 content hash: the blob's swarm address.
    pub hash: u64,
    pub blob_len: u64,
}

/// One message of the worker/orchestrator protocol.
#[derive(Clone, Debug, PartialEq)]
pub enum GridMsg {
    /// Worker → orchestrator: I exist; these blob hashes are already in
    /// my (recovered) store.
    Hello { have: Vec<u64> },
    /// Orchestrator → worker: handshake confirmation with the total job
    /// count of this farm.
    Welcome { jobs_total: u64 },
    /// Orchestrator → worker: peers that can serve chunks of `blob`
    /// (blob adverts carrying provider peer ids = endpoint ids).
    Providers {
        blob: u64,
        adverts: Vec<Advertisement>,
    },
    /// Orchestrator → worker: run `job` through `module` on `input`.
    Dispatch {
        job: u64,
        module: ModuleInfo,
        input: Vec<f64>,
    },
    /// Fetcher → provider: send chunk `index` of `blob`.
    ChunkRequest {
        blob: u64,
        blob_len: u64,
        index: u32,
    },
    /// Provider → fetcher: the chunk bytes.
    ChunkData {
        blob: u64,
        blob_len: u64,
        index: u32,
        bytes: Vec<u8>,
    },
    /// Worker → orchestrator: `blob` is now fully held and servable.
    HaveBlob { blob: u64 },
    /// Worker → orchestrator: outputs of a completed job.
    JobResult { job: u64, outputs: Vec<Vec<f64>> },
    /// Orchestrator → worker: the farm is finished; stop.
    Shutdown,
}

const TAG_HELLO: u8 = 0;
const TAG_WELCOME: u8 = 1;
const TAG_PROVIDERS: u8 = 2;
const TAG_DISPATCH: u8 = 3;
const TAG_CHUNK_REQ: u8 = 4;
const TAG_CHUNK_DATA: u8 = 5;
const TAG_HAVE_BLOB: u8 = 6;
const TAG_JOB_RESULT: u8 = 7;
const TAG_SHUTDOWN: u8 = 8;

fn encode_module(w: &mut Writer, m: &ModuleInfo) {
    w.str(&m.name);
    w.u32(m.version);
    w.u64(m.hash);
    w.u64(m.blob_len);
}

fn decode_module(r: &mut Reader<'_>) -> Result<ModuleInfo, WireError> {
    Ok(ModuleInfo {
        name: r.str("module name")?,
        version: r.u32()?,
        hash: r.u64()?,
        blob_len: r.u64()?,
    })
}

fn encode_f64s(w: &mut Writer, xs: &[f64]) {
    w.u32(xs.len() as u32);
    for &x in xs {
        w.f64(x);
    }
}

fn decode_f64s(r: &mut Reader<'_>) -> Result<Vec<f64>, WireError> {
    let n = r.length("f64 vector")?;
    let mut out = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        out.push(r.f64()?);
    }
    Ok(out)
}

impl GridMsg {
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        match self {
            GridMsg::Hello { have } => {
                w.u8(TAG_HELLO);
                w.u32(have.len() as u32);
                for &h in have {
                    w.u64(h);
                }
            }
            GridMsg::Welcome { jobs_total } => {
                w.u8(TAG_WELCOME);
                w.u64(*jobs_total);
            }
            GridMsg::Providers { blob, adverts } => {
                w.u8(TAG_PROVIDERS);
                w.u64(*blob);
                w.u32(adverts.len() as u32);
                for a in adverts {
                    encode_advert(&mut w, a);
                }
            }
            GridMsg::Dispatch { job, module, input } => {
                w.u8(TAG_DISPATCH);
                w.u64(*job);
                encode_module(&mut w, module);
                encode_f64s(&mut w, input);
            }
            GridMsg::ChunkRequest {
                blob,
                blob_len,
                index,
            } => {
                w.u8(TAG_CHUNK_REQ);
                w.u64(*blob);
                w.u64(*blob_len);
                w.u32(*index);
            }
            GridMsg::ChunkData {
                blob,
                blob_len,
                index,
                bytes,
            } => {
                w.u8(TAG_CHUNK_DATA);
                w.u64(*blob);
                w.u64(*blob_len);
                w.u32(*index);
                w.bytes(bytes);
            }
            GridMsg::HaveBlob { blob } => {
                w.u8(TAG_HAVE_BLOB);
                w.u64(*blob);
            }
            GridMsg::JobResult { job, outputs } => {
                w.u8(TAG_JOB_RESULT);
                w.u64(*job);
                w.u32(outputs.len() as u32);
                for o in outputs {
                    encode_f64s(&mut w, o);
                }
            }
            GridMsg::Shutdown => {
                w.u8(TAG_SHUTDOWN);
            }
        }
        w.into_bytes()
    }

    pub fn decode(buf: &[u8]) -> Result<GridMsg, WireError> {
        let mut r = Reader::new(buf);
        let msg = Self::decode_from(&mut r)?;
        r.finish()?;
        Ok(msg)
    }

    pub fn decode_from(r: &mut Reader<'_>) -> Result<GridMsg, WireError> {
        let tag = r.u8()?;
        Ok(match tag {
            TAG_HELLO => {
                let n = r.length("hello have")?;
                let mut have = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    have.push(r.u64()?);
                }
                GridMsg::Hello { have }
            }
            TAG_WELCOME => GridMsg::Welcome {
                jobs_total: r.u64()?,
            },
            TAG_PROVIDERS => {
                let blob = r.u64()?;
                let n = r.length("provider adverts")?;
                let mut adverts = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    adverts.push(decode_advert(r)?);
                }
                GridMsg::Providers { blob, adverts }
            }
            TAG_DISPATCH => GridMsg::Dispatch {
                job: r.u64()?,
                module: decode_module(r)?,
                input: decode_f64s(r)?,
            },
            TAG_CHUNK_REQ => GridMsg::ChunkRequest {
                blob: r.u64()?,
                blob_len: r.u64()?,
                index: r.u32()?,
            },
            TAG_CHUNK_DATA => GridMsg::ChunkData {
                blob: r.u64()?,
                blob_len: r.u64()?,
                index: r.u32()?,
                bytes: r.bytes("chunk bytes")?,
            },
            TAG_HAVE_BLOB => GridMsg::HaveBlob { blob: r.u64()? },
            TAG_JOB_RESULT => {
                let job = r.u64()?;
                let n = r.length("job outputs")?;
                let mut outputs = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    outputs.push(decode_f64s(r)?);
                }
                GridMsg::JobResult { job, outputs }
            }
            TAG_SHUTDOWN => GridMsg::Shutdown,
            other => {
                return Err(WireError::BadTag {
                    what: "grid message",
                    tag: other,
                })
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::SimTime;
    use p2p::advert::{AdvertBody, BlobAdvert};
    use p2p::PeerId;

    fn samples() -> Vec<GridMsg> {
        vec![
            GridMsg::Hello {
                have: vec![1, u64::MAX],
            },
            GridMsg::Welcome { jobs_total: 12 },
            GridMsg::Providers {
                blob: 77,
                adverts: vec![Advertisement {
                    body: AdvertBody::Blob(BlobAdvert {
                        blob: 77,
                        size_bytes: 4_096,
                        chunks: 2,
                        provider: PeerId(3),
                    }),
                    expires: SimTime(9),
                }],
            },
            GridMsg::Dispatch {
                job: 5,
                module: ModuleInfo {
                    name: "scale".into(),
                    version: 1,
                    hash: 0xDEAD,
                    blob_len: 321,
                },
                input: vec![1.5, -2.0, f64::MIN_POSITIVE],
            },
            GridMsg::ChunkRequest {
                blob: 9,
                blob_len: 100,
                index: 1,
            },
            GridMsg::ChunkData {
                blob: 9,
                blob_len: 100,
                index: 1,
                bytes: vec![7; 36],
            },
            GridMsg::HaveBlob { blob: 9 },
            GridMsg::JobResult {
                job: 5,
                outputs: vec![vec![2.25], vec![]],
            },
            GridMsg::Shutdown,
        ]
    }

    #[test]
    fn every_variant_round_trips() {
        for msg in samples() {
            let bytes = msg.encode();
            assert_eq!(GridMsg::decode(&bytes), Ok(msg));
        }
    }

    #[test]
    fn truncation_rejected_everywhere() {
        for msg in samples() {
            let bytes = msg.encode();
            for cut in 0..bytes.len() {
                assert!(GridMsg::decode(&bytes[..cut]).is_err(), "cut at {cut}");
            }
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = GridMsg::Shutdown.encode();
        bytes.push(0);
        assert!(matches!(
            GridMsg::decode(&bytes),
            Err(WireError::TrailingBytes { .. })
        ));
    }

    #[test]
    fn bad_tag_rejected() {
        assert!(matches!(
            GridMsg::decode(&[200]),
            Err(WireError::BadTag { .. })
        ));
    }
}
