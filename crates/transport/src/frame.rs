//! The transport frame: the one datagram format both backends speak.
//!
//! A frame is a length-prefixed header plus an opaque payload. On the
//! socket backend one frame is one UDP datagram; the length prefix is
//! still present (and validated) so the same codec works unchanged over a
//! byte stream. On the sim backend the encoded length drives the netsim
//! link model, so a message costs the same simulated bytes it would cost
//! real ones.

use p2p::wire::{Reader, WireError, Writer};
use std::fmt;

/// Logical address of a transport endpoint. Stable across backends: the
/// sim maps it to a `netsim::HostId`, the socket backend to a
/// `SocketAddr` through its peer directory — so the same endpoint ids
/// name the same nodes in a parity run.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Endpoint(pub u64);

impl fmt::Debug for Endpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ep{}", self.0)
    }
}

impl fmt::Display for Endpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ep{}", self.0)
    }
}

/// Frame discriminator.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FrameKind {
    /// Application payload, sequenced and retransmitted until acked.
    Data,
    /// Acknowledges receipt of the data frame with the carried `seq`.
    Ack,
    /// Liveness probe (sent on idle channels).
    Ping,
    /// Liveness reply.
    Pong,
}

impl FrameKind {
    fn code(self) -> u8 {
        match self {
            FrameKind::Data => 0,
            FrameKind::Ack => 1,
            FrameKind::Ping => 2,
            FrameKind::Pong => 3,
        }
    }

    fn from_code(code: u8) -> Option<FrameKind> {
        Some(match code {
            0 => FrameKind::Data,
            1 => FrameKind::Ack,
            2 => FrameKind::Ping,
            3 => FrameKind::Pong,
            _ => return None,
        })
    }
}

/// Wire magic ("TG") and codec version.
pub const MAGIC: u16 = 0x5447;
pub const VERSION: u8 = 1;

/// Header bytes before the payload: len(4) + magic(2) + version(1) +
/// kind(1) + src(8) + dst(8) + seq(8) + payload_len(4).
pub const HEADER_LEN: usize = 36;

/// Largest payload a single frame may carry. Kept under the classic
/// 64 KiB UDP datagram bound with room for the header.
pub const MAX_PAYLOAD: usize = 60 * 1024;

/// Why a frame failed to decode.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FrameError {
    /// Too short for a fixed-width field or a declared length.
    Truncated { need: usize, have: usize },
    /// First two header bytes are not [`MAGIC`].
    BadMagic(u16),
    /// Unknown codec version.
    BadVersion(u8),
    /// Unknown frame kind.
    BadKind(u8),
    /// The leading length prefix disagrees with the bytes present.
    LengthMismatch { declared: usize, actual: usize },
    /// Payload length exceeds [`MAX_PAYLOAD`].
    PayloadOverflow { declared: usize },
    /// Malformed interior field (shares the p2p wire error taxonomy).
    Wire(WireError),
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Truncated { need, have } => {
                write!(f, "frame truncated: need {need}, have {have}")
            }
            FrameError::BadMagic(m) => write!(f, "bad frame magic {m:#06x}"),
            FrameError::BadVersion(v) => write!(f, "unsupported frame version {v}"),
            FrameError::BadKind(k) => write!(f, "unknown frame kind {k}"),
            FrameError::LengthMismatch { declared, actual } => {
                write!(
                    f,
                    "frame length prefix {declared} != {actual} bytes on the wire"
                )
            }
            FrameError::PayloadOverflow { declared } => {
                write!(f, "payload length {declared} exceeds {MAX_PAYLOAD}")
            }
            FrameError::Wire(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<WireError> for FrameError {
    fn from(e: WireError) -> Self {
        FrameError::Wire(e)
    }
}

/// One transport frame.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Frame {
    pub kind: FrameKind,
    pub src: Endpoint,
    pub dst: Endpoint,
    /// Data: the frame's sequence number. Ack: the acknowledged sequence.
    /// Ping/Pong: a probe nonce echoed back.
    pub seq: u64,
    pub payload: Vec<u8>,
}

impl Frame {
    pub fn data(src: Endpoint, dst: Endpoint, seq: u64, payload: Vec<u8>) -> Frame {
        Frame {
            kind: FrameKind::Data,
            src,
            dst,
            seq,
            payload,
        }
    }

    pub fn control(kind: FrameKind, src: Endpoint, dst: Endpoint, seq: u64) -> Frame {
        Frame {
            kind,
            src,
            dst,
            seq,
            payload: Vec::new(),
        }
    }

    /// Encoded size without materialising the bytes (drives the sim's
    /// link model).
    pub fn wire_len(&self) -> usize {
        HEADER_LEN + self.payload.len()
    }

    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode_into(&mut out);
        out
    }

    /// Encode into a caller-owned buffer, appending. Both backends' send
    /// paths use this with recycled buffers (the sim's payload arena, the
    /// socket's scratch pool) so a steady stream of frames encodes without
    /// touching the allocator.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        debug_assert!(self.payload.len() <= MAX_PAYLOAD, "payload too large");
        let mut w = Writer::over(std::mem::take(out));
        w.u32(self.wire_len() as u32);
        w.u16(MAGIC);
        w.u8(VERSION);
        w.u8(self.kind.code());
        w.u64(self.src.0);
        w.u64(self.dst.0);
        w.u64(self.seq);
        w.bytes(&self.payload);
        *out = w.into_bytes();
    }

    /// Decode one frame, consuming the entire buffer (a datagram carries
    /// exactly one frame; trailing bytes mean corruption).
    pub fn decode(buf: &[u8]) -> Result<Frame, FrameError> {
        let mut r = Reader::new(buf);
        let declared = map_trunc(r.u32())? as usize;
        if declared != buf.len() {
            return Err(FrameError::LengthMismatch {
                declared,
                actual: buf.len(),
            });
        }
        let magic = map_trunc(r.u16())?;
        if magic != MAGIC {
            return Err(FrameError::BadMagic(magic));
        }
        let version = map_trunc(r.u8())?;
        if version != VERSION {
            return Err(FrameError::BadVersion(version));
        }
        let kind_code = map_trunc(r.u8())?;
        let kind = FrameKind::from_code(kind_code).ok_or(FrameError::BadKind(kind_code))?;
        let src = Endpoint(map_trunc(r.u64())?);
        let dst = Endpoint(map_trunc(r.u64())?);
        let seq = map_trunc(r.u64())?;
        let payload = r.bytes("frame payload")?;
        if payload.len() > MAX_PAYLOAD {
            return Err(FrameError::PayloadOverflow {
                declared: payload.len(),
            });
        }
        r.finish()?;
        Ok(Frame {
            kind,
            src,
            dst,
            seq,
            payload,
        })
    }
}

fn map_trunc<T>(r: Result<T, WireError>) -> Result<T, FrameError> {
    r.map_err(|e| match e {
        WireError::Truncated { need, have } => FrameError::Truncated { need, have },
        other => FrameError::Wire(other),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Frame {
        Frame::data(Endpoint(3), Endpoint(9), 42, vec![1, 2, 3, 4, 5])
    }

    #[test]
    fn frame_round_trips() {
        for f in [
            sample(),
            Frame::control(FrameKind::Ack, Endpoint(1), Endpoint(2), 7),
            Frame::control(FrameKind::Ping, Endpoint(0), Endpoint(0), 0),
            Frame::control(FrameKind::Pong, Endpoint(u64::MAX), Endpoint(5), u64::MAX),
        ] {
            let bytes = f.encode();
            assert_eq!(bytes.len(), f.wire_len());
            assert_eq!(Frame::decode(&bytes), Ok(f));
        }
    }

    #[test]
    fn every_truncation_is_rejected() {
        let bytes = sample().encode();
        for cut in 0..bytes.len() {
            assert!(Frame::decode(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn bad_magic_version_kind_rejected() {
        let mut b = sample().encode();
        b[4] ^= 0xFF;
        assert!(matches!(Frame::decode(&b), Err(FrameError::BadMagic(_))));
        let mut b = sample().encode();
        b[6] = 99;
        assert_eq!(Frame::decode(&b), Err(FrameError::BadVersion(99)));
        let mut b = sample().encode();
        b[7] = 44;
        assert_eq!(Frame::decode(&b), Err(FrameError::BadKind(44)));
    }

    #[test]
    fn length_prefix_must_match_datagram() {
        let mut b = sample().encode();
        b[0] = b[0].wrapping_add(1);
        assert!(matches!(
            Frame::decode(&b),
            Err(FrameError::LengthMismatch { .. })
        ));
        // Trailing garbage also shows up as a length mismatch.
        let mut b = sample().encode();
        b.push(0xAB);
        assert!(matches!(
            Frame::decode(&b),
            Err(FrameError::LengthMismatch { .. })
        ));
    }
}
