//! The real-network backend: [`Transport`] over nonblocking UDP sockets.
//!
//! This offline workspace has no async runtime (no tokio), so the
//! backend is a poll-driven state machine over `std::net::UdpSocket` in
//! nonblocking mode — one socket per node, one frame per datagram,
//! driven by the same [`Transport::poll`] loop the sim backend uses. The
//! reliability layer on top is byte-for-byte the same [`PeerChannel`]
//! code: UDP loss, duplication and reordering are exactly the faults the
//! channel already absorbs under chaos testing in the simulator.
//!
//! The clock is a monotonic `Instant` anchored at construction and
//! reported as microseconds in [`SimTime`] — same type, different
//! substance — so node code written against the trait needs no
//! wall-clock special cases.

use crate::frame::{Endpoint, Frame, FrameKind, MAX_PAYLOAD};
use crate::reliab::{ChanOut, ChannelConfig, PeerChannel};
use crate::{TimerId, Transport, TransportCounters, TransportError, TransportEvent};
use netsim::{Duration, SimTime};
use std::collections::{BTreeMap, VecDeque};
use std::io::ErrorKind;
use std::net::{SocketAddr, UdpSocket};
use std::time::Instant;

/// Receive buffer: one full frame plus header.
const RECV_BUF: usize = MAX_PAYLOAD + 512;

/// [`Transport`] over one nonblocking UDP socket.
pub struct SocketTransport {
    sock: UdpSocket,
    local: Endpoint,
    /// Endpoint → address directory. Learned from inbound frames when
    /// not pre-registered, so only one side of a link needs static
    /// configuration.
    peers: BTreeMap<Endpoint, SocketAddr>,
    channels: BTreeMap<Endpoint, PeerChannel>,
    cfg: ChannelConfig,
    /// timer id → (deadline, token); scanned on every poll (timer
    /// populations here are tiny).
    timers: BTreeMap<u64, (SimTime, u64)>,
    next_timer: u64,
    epoch: Instant,
    counters: TransportCounters,
    obs: obs::Obs,
    inbox: VecDeque<TransportEvent>,
    buf: Box<[u8; RECV_BUF]>,
}

impl SocketTransport {
    /// Bind a fresh socket on the loopback interface (ephemeral port).
    pub fn bind_loopback(local: Endpoint) -> Result<Self, TransportError> {
        Self::bind(local, "127.0.0.1:0")
    }

    pub fn bind(local: Endpoint, addr: &str) -> Result<Self, TransportError> {
        let sock = UdpSocket::bind(addr).map_err(|e| TransportError::Io(e.to_string()))?;
        sock.set_nonblocking(true)
            .map_err(|e| TransportError::Io(e.to_string()))?;
        Ok(SocketTransport {
            sock,
            local,
            peers: BTreeMap::new(),
            channels: BTreeMap::new(),
            cfg: ChannelConfig::socket_default(),
            timers: BTreeMap::new(),
            next_timer: 0,
            epoch: Instant::now(),
            counters: TransportCounters::default(),
            obs: obs::Obs::disabled(),
            inbox: VecDeque::new(),
            buf: Box::new([0u8; RECV_BUF]),
        })
    }

    /// Attach a metrics observer (`transport.*` counters).
    pub fn set_obs(&mut self, observer: obs::Obs) {
        self.obs = observer;
    }

    /// Override the channel tunables (e.g. tighter timeouts in tests).
    pub fn set_channel_config(&mut self, cfg: ChannelConfig) {
        self.cfg = cfg;
    }

    /// The socket's bound address, for handing to peers out of band.
    pub fn local_addr(&self) -> Result<SocketAddr, TransportError> {
        self.sock
            .local_addr()
            .map_err(|e| TransportError::Io(e.to_string()))
    }

    /// Teach this transport where an endpoint lives.
    pub fn register_peer(&mut self, ep: Endpoint, addr: SocketAddr) {
        self.peers.insert(ep, addr);
    }

    pub fn counters(&self) -> TransportCounters {
        self.counters
    }

    fn transmit(&mut self, frame: &Frame) {
        let Some(&addr) = self.peers.get(&frame.dst) else {
            return;
        };
        self.counters.frame_sent(&self.obs);
        if frame.kind == FrameKind::Ack {
            self.counters.ack(&self.obs);
        }
        // UDP send failures (e.g. transient ENOBUFS) are treated as loss:
        // the reliability layer retransmits.
        p2p::wire::with_buf(|buf| {
            frame.encode_into(buf);
            let _ = self.sock.send_to(buf, addr);
        });
    }

    fn apply(&mut self, peer: Endpoint, outs: Vec<ChanOut>) {
        for out in outs {
            match out {
                ChanOut::Transmit(f) => self.transmit(&f),
                ChanOut::Retransmit(f) => {
                    self.counters.retransmit(&self.obs);
                    self.transmit(&f);
                }
                ChanOut::Deliver(payload) => self.inbox.push_back(TransportEvent::Delivered {
                    from: peer,
                    payload,
                }),
                ChanOut::Dead => self.inbox.push_back(TransportEvent::PeerDead { peer }),
            }
        }
    }

    /// Drain the socket until it would block.
    fn pump_socket(&mut self) {
        loop {
            match self.sock.recv_from(&mut self.buf[..]) {
                Ok((n, addr)) => {
                    let Ok(frame) = Frame::decode(&self.buf[..n]) else {
                        self.obs.incr("transport.decode_errors");
                        continue;
                    };
                    if frame.dst != self.local {
                        continue;
                    }
                    self.counters.frame_recv(&self.obs);
                    let peer = frame.src;
                    // Learn the return address from the packet itself.
                    self.peers.entry(peer).or_insert(addr);
                    let now = self.now();
                    let cfg = self.cfg;
                    let local = self.local;
                    let chan = self
                        .channels
                        .entry(peer)
                        .or_insert_with(|| PeerChannel::new(local, peer, cfg, now));
                    let mut outs = Vec::new();
                    chan.on_frame(now, frame, &mut outs);
                    self.apply(peer, outs);
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                // Connection-refused noise from a peer that is not up
                // yet surfaces here on some platforms; loss is handled
                // by retransmission either way.
                Err(_) => break,
            }
        }
    }

    fn fire_timers(&mut self, now: SimTime) {
        let due: Vec<u64> = self
            .timers
            .iter()
            .filter(|(_, &(at, _))| at <= now)
            .map(|(&id, _)| id)
            .collect();
        for id in due {
            let (_, token) = self.timers.remove(&id).expect("collected above");
            self.inbox.push_back(TransportEvent::Timer { token });
        }
    }

    fn tick_channels(&mut self, now: SimTime) {
        let mut all: Vec<(Endpoint, Vec<ChanOut>)> = Vec::new();
        for (peer, chan) in self.channels.iter_mut() {
            let mut outs = Vec::new();
            chan.on_tick(now, &mut outs);
            if !outs.is_empty() {
                all.push((*peer, outs));
            }
        }
        for (peer, outs) in all {
            self.apply(peer, outs);
        }
    }
}

impl Transport for SocketTransport {
    fn local(&self) -> Endpoint {
        self.local
    }

    fn now(&self) -> SimTime {
        SimTime(self.epoch.elapsed().as_micros() as u64)
    }

    fn send(&mut self, dst: Endpoint, payload: Vec<u8>) -> Result<(), TransportError> {
        if payload.len() > MAX_PAYLOAD {
            return Err(TransportError::PayloadTooLarge { len: payload.len() });
        }
        if !self.peers.contains_key(&dst) {
            return Err(TransportError::UnknownPeer(dst));
        }
        let now = self.now();
        let cfg = self.cfg;
        let local = self.local;
        let chan = self
            .channels
            .entry(dst)
            .or_insert_with(|| PeerChannel::new(local, dst, cfg, now));
        let frame = chan.send_data(now, payload);
        self.transmit(&frame);
        Ok(())
    }

    fn set_timer(&mut self, delay: Duration, token: u64) -> TimerId {
        let id = self.next_timer;
        self.next_timer += 1;
        self.timers.insert(id, (self.now() + delay, token));
        TimerId(id)
    }

    fn cancel_timer(&mut self, timer: TimerId) {
        self.timers.remove(&timer.0);
    }

    fn poll(&mut self, events: &mut Vec<TransportEvent>) {
        self.pump_socket();
        let now = self.now();
        self.fire_timers(now);
        self.tick_channels(now);
        events.extend(self.inbox.drain(..));
    }

    fn pending(&self) -> usize {
        self.channels.values().map(PeerChannel::in_flight).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn linked_pair() -> (SocketTransport, SocketTransport) {
        let mut a = SocketTransport::bind_loopback(Endpoint(1)).unwrap();
        let mut b = SocketTransport::bind_loopback(Endpoint(2)).unwrap();
        let aa = a.local_addr().unwrap();
        let ba = b.local_addr().unwrap();
        a.register_peer(Endpoint(2), ba);
        b.register_peer(Endpoint(1), aa);
        (a, b)
    }

    /// Poll both transports until `want` deliveries reached `b` or the
    /// wall-clock budget runs out.
    fn pump_until(
        a: &mut SocketTransport,
        b: &mut SocketTransport,
        want: usize,
        budget_ms: u64,
    ) -> Vec<TransportEvent> {
        let start = Instant::now();
        let mut got = Vec::new();
        while got
            .iter()
            .filter(|e| matches!(e, TransportEvent::Delivered { .. }))
            .count()
            < want
        {
            a.poll(&mut Vec::new());
            b.poll(&mut got);
            if start.elapsed().as_millis() as u64 > budget_ms {
                break;
            }
            std::thread::sleep(std::time::Duration::from_micros(200));
        }
        got
    }

    #[test]
    fn loopback_delivery_in_order() {
        let (mut a, mut b) = linked_pair();
        for i in 0..10u8 {
            a.send(Endpoint(2), vec![i]).unwrap();
        }
        let evs = pump_until(&mut a, &mut b, 10, 5_000);
        let got: Vec<u8> = evs
            .iter()
            .filter_map(|e| match e {
                TransportEvent::Delivered { payload, .. } => Some(payload[0]),
                _ => None,
            })
            .collect();
        assert_eq!(got, (0..10).collect::<Vec<u8>>());
        assert!(a.counters().frames_sent >= 10);
        assert!(b.counters().acks >= 10);
    }

    #[test]
    fn timers_fire_and_cancel_on_wall_clock() {
        let mut a = SocketTransport::bind_loopback(Endpoint(9)).unwrap();
        a.set_timer(Duration::from_millis(5), 42);
        let doomed = a.set_timer(Duration::from_millis(5), 43);
        a.cancel_timer(doomed);
        let start = Instant::now();
        let mut evs = Vec::new();
        while evs.is_empty() && start.elapsed().as_millis() < 2_000 {
            a.poll(&mut evs);
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        assert_eq!(evs, vec![TransportEvent::Timer { token: 42 }]);
    }

    #[test]
    fn unreachable_peer_eventually_reported_dead() {
        let mut a = SocketTransport::bind_loopback(Endpoint(1)).unwrap();
        // Register a peer address nobody is listening on.
        a.register_peer(Endpoint(2), "127.0.0.1:9".parse().unwrap());
        a.set_channel_config(ChannelConfig {
            rto: Duration::from_millis(2),
            rto_max: Duration::from_millis(4),
            max_attempts: 3,
            ping_after: None,
            liveness: Duration::from_secs(60),
        });
        a.send(Endpoint(2), vec![1]).unwrap();
        let start = Instant::now();
        let mut evs = Vec::new();
        while !evs
            .iter()
            .any(|e| matches!(e, TransportEvent::PeerDead { .. }))
            && start.elapsed().as_millis() < 5_000
        {
            a.poll(&mut evs);
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        assert!(evs.contains(&TransportEvent::PeerDead { peer: Endpoint(2) }));
    }
}
