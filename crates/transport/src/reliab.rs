//! Per-peer reliability: sequence numbers, in-order delivery, ack /
//! retransmit with exponential backoff, and liveness probing.
//!
//! One [`PeerChannel`] instance manages one direction-pair between two
//! endpoints. The state machine is pure — it consumes `(now, frame)` and
//! emits [`ChanOut`] actions — so the **same code** runs over the
//! deterministic sim backend and the UDP socket backend; only the clock
//! and the wire underneath differ.

use crate::frame::{Endpoint, Frame, FrameKind};
use netsim::{Duration, SimTime};
use std::collections::BTreeMap;

/// Tunables for one channel.
#[derive(Clone, Copy, Debug)]
pub struct ChannelConfig {
    /// Initial retransmit timeout; doubles per attempt.
    pub rto: Duration,
    /// Backoff ceiling.
    pub rto_max: Duration,
    /// Retransmit attempts before the peer is declared dead.
    pub max_attempts: u32,
    /// Probe an idle channel after this long without traffic. `None`
    /// disables probing — the right choice on the sim backend, where an
    /// eternal ping loop would keep the event queue from draining.
    pub ping_after: Option<Duration>,
    /// Declare the peer dead after this much silence (only meaningful
    /// with probing or in-flight data).
    pub liveness: Duration,
}

impl ChannelConfig {
    /// Sim backend: netsim delivers reliably while hosts are online, so
    /// generous timeouts and no idle probing (the queue must drain).
    pub fn sim_default() -> Self {
        ChannelConfig {
            rto: Duration::from_secs(30),
            rto_max: Duration::from_secs(240),
            max_attempts: 5,
            ping_after: None,
            liveness: Duration::from_secs(3_600),
        }
    }

    /// Socket backend: loopback/LAN wall-clock timings.
    pub fn socket_default() -> Self {
        ChannelConfig {
            rto: Duration::from_millis(40),
            rto_max: Duration::from_secs(2),
            max_attempts: 25,
            ping_after: Some(Duration::from_secs(2)),
            liveness: Duration::from_secs(15),
        }
    }
}

struct Pending {
    frame: Frame,
    attempts: u32,
    next_retry: SimTime,
}

/// Actions the channel asks its transport to perform.
#[derive(Debug, PartialEq, Eq)]
pub enum ChanOut {
    /// Put this frame on the wire.
    Transmit(Frame),
    /// Re-put a timed-out data frame on the wire (metered separately).
    Retransmit(Frame),
    /// Hand this payload to the application (frames arrive here in
    /// sender order, exactly once).
    Deliver(Vec<u8>),
    /// The peer stopped acking/answering; emitted once.
    Dead,
}

/// Reliable, ordered, deduplicated channel state towards one peer.
pub struct PeerChannel {
    local: Endpoint,
    peer: Endpoint,
    cfg: ChannelConfig,
    next_seq: u64,
    unacked: BTreeMap<u64, Pending>,
    /// Next incoming sequence number to deliver.
    recv_next: u64,
    /// Out-of-order arrivals waiting for the gap to fill.
    reorder: BTreeMap<u64, Vec<u8>>,
    last_heard: SimTime,
    ping_nonce: u64,
    ping_sent_at: Option<SimTime>,
    dead: bool,
    /// Lifetime stats for the transport's counters.
    pub retransmits: u64,
    pub acks_sent: u64,
}

impl PeerChannel {
    pub fn new(local: Endpoint, peer: Endpoint, cfg: ChannelConfig, now: SimTime) -> Self {
        PeerChannel {
            local,
            peer,
            cfg,
            next_seq: 0,
            unacked: BTreeMap::new(),
            recv_next: 0,
            reorder: BTreeMap::new(),
            last_heard: now,
            ping_nonce: 0,
            ping_sent_at: None,
            dead: false,
            retransmits: 0,
            acks_sent: 0,
        }
    }

    pub fn peer(&self) -> Endpoint {
        self.peer
    }

    pub fn is_dead(&self) -> bool {
        self.dead
    }

    pub fn in_flight(&self) -> usize {
        self.unacked.len()
    }

    /// Sequence, register for retransmission, and return the data frame
    /// to transmit now.
    pub fn send_data(&mut self, now: SimTime, payload: Vec<u8>) -> Frame {
        let seq = self.next_seq;
        self.next_seq += 1;
        let frame = Frame::data(self.local, self.peer, seq, payload);
        self.unacked.insert(
            seq,
            Pending {
                frame: frame.clone(),
                attempts: 0,
                next_retry: now + self.cfg.rto,
            },
        );
        frame
    }

    /// React to a frame arriving from this peer.
    pub fn on_frame(&mut self, now: SimTime, frame: Frame, out: &mut Vec<ChanOut>) {
        self.last_heard = now;
        self.ping_sent_at = None;
        match frame.kind {
            FrameKind::Data => {
                // Always ack — duplicates mean the previous ack was lost.
                self.acks_sent += 1;
                out.push(ChanOut::Transmit(Frame::control(
                    FrameKind::Ack,
                    self.local,
                    self.peer,
                    frame.seq,
                )));
                if frame.seq >= self.recv_next {
                    self.reorder.entry(frame.seq).or_insert(frame.payload);
                    // Drain the contiguous run.
                    while let Some(payload) = self.reorder.remove(&self.recv_next) {
                        self.recv_next += 1;
                        out.push(ChanOut::Deliver(payload));
                    }
                }
            }
            FrameKind::Ack => {
                self.unacked.remove(&frame.seq);
            }
            FrameKind::Ping => {
                out.push(ChanOut::Transmit(Frame::control(
                    FrameKind::Pong,
                    self.local,
                    self.peer,
                    frame.seq,
                )));
            }
            FrameKind::Pong => {}
        }
    }

    /// Run timers: retransmit overdue frames (exponential backoff), probe
    /// idle channels, declare death on sustained silence.
    pub fn on_tick(&mut self, now: SimTime, out: &mut Vec<ChanOut>) {
        if self.dead {
            return;
        }
        let mut died = false;
        for p in self.unacked.values_mut() {
            if p.next_retry <= now {
                p.attempts += 1;
                if p.attempts >= self.cfg.max_attempts {
                    died = true;
                    break;
                }
                let backoff =
                    Duration((self.cfg.rto.0 << p.attempts.min(16)).min(self.cfg.rto_max.0));
                p.next_retry = now + backoff;
                self.retransmits += 1;
                out.push(ChanOut::Retransmit(p.frame.clone()));
            }
        }
        if let Some(ping_after) = self.cfg.ping_after {
            let silence = now.since(self.last_heard);
            if silence >= self.cfg.liveness {
                died = true;
            } else if silence >= ping_after && self.ping_sent_at.is_none() {
                self.ping_nonce += 1;
                self.ping_sent_at = Some(now);
                out.push(ChanOut::Transmit(Frame::control(
                    FrameKind::Ping,
                    self.local,
                    self.peer,
                    self.ping_nonce,
                )));
            }
        }
        if died {
            self.dead = true;
            out.push(ChanOut::Dead);
        }
    }

    /// Earliest instant `on_tick` has something to do, or `None` if the
    /// channel is fully quiescent (lets the sim backend drain).
    pub fn next_deadline(&self) -> Option<SimTime> {
        if self.dead {
            return None;
        }
        let mut deadline: Option<SimTime> = self.unacked.values().map(|p| p.next_retry).min();
        if let Some(ping_after) = self.cfg.ping_after {
            let probe = if self.ping_sent_at.is_some() {
                self.last_heard + self.cfg.liveness
            } else {
                self.last_heard + ping_after
            };
            deadline = Some(deadline.map_or(probe, |d| d.min(probe)));
        }
        deadline
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair(cfg: ChannelConfig) -> (PeerChannel, PeerChannel) {
        (
            PeerChannel::new(Endpoint(0), Endpoint(1), cfg, SimTime::ZERO),
            PeerChannel::new(Endpoint(1), Endpoint(0), cfg, SimTime::ZERO),
        )
    }

    /// Feed every Transmit/Retransmit of `from` into `to`, returning
    /// payloads `to` delivered and frames `to` wants transmitted back.
    fn shuttle(
        now: SimTime,
        outs: Vec<ChanOut>,
        to: &mut PeerChannel,
    ) -> (Vec<Vec<u8>>, Vec<ChanOut>) {
        let mut delivered = Vec::new();
        let mut back = Vec::new();
        for o in outs {
            match o {
                ChanOut::Transmit(f) | ChanOut::Retransmit(f) => {
                    let mut outs2 = Vec::new();
                    to.on_frame(now, f, &mut outs2);
                    for o2 in outs2 {
                        match o2 {
                            ChanOut::Deliver(p) => delivered.push(p),
                            other => back.push(other),
                        }
                    }
                }
                _ => {}
            }
        }
        (delivered, back)
    }

    #[test]
    fn in_order_delivery_and_ack_clears_unacked() {
        let (mut a, mut b) = pair(ChannelConfig::sim_default());
        let f1 = a.send_data(SimTime(0), vec![1]);
        let f2 = a.send_data(SimTime(0), vec![2]);
        assert_eq!(a.in_flight(), 2);
        let (got, acks) = shuttle(
            SimTime(10),
            vec![ChanOut::Transmit(f1), ChanOut::Transmit(f2)],
            &mut b,
        );
        assert_eq!(got, vec![vec![1], vec![2]]);
        // Feed the acks back.
        for ack in acks {
            if let ChanOut::Transmit(f) = ack {
                a.on_frame(SimTime(20), f, &mut Vec::new());
            }
        }
        assert_eq!(a.in_flight(), 0);
        assert_eq!(b.acks_sent, 2);
    }

    #[test]
    fn reordered_frames_deliver_in_sender_order() {
        let (mut a, mut b) = pair(ChannelConfig::sim_default());
        let f1 = a.send_data(SimTime(0), vec![1]);
        let f2 = a.send_data(SimTime(0), vec![2]);
        let f3 = a.send_data(SimTime(0), vec![3]);
        let mut out = Vec::new();
        b.on_frame(SimTime(1), f3, &mut out);
        b.on_frame(SimTime(2), f2, &mut out);
        b.on_frame(SimTime(3), f1, &mut out);
        let delivered: Vec<_> = out
            .into_iter()
            .filter_map(|o| match o {
                ChanOut::Deliver(p) => Some(p),
                _ => None,
            })
            .collect();
        assert_eq!(delivered, vec![vec![1], vec![2], vec![3]]);
    }

    #[test]
    fn duplicates_are_acked_but_delivered_once() {
        let (mut a, mut b) = pair(ChannelConfig::sim_default());
        let f1 = a.send_data(SimTime(0), vec![7]);
        let mut out = Vec::new();
        b.on_frame(SimTime(1), f1.clone(), &mut out);
        b.on_frame(SimTime(2), f1, &mut out);
        let delivered = out
            .iter()
            .filter(|o| matches!(o, ChanOut::Deliver(_)))
            .count();
        let acked = out
            .iter()
            .filter(|o| matches!(o, ChanOut::Transmit(f) if f.kind == FrameKind::Ack))
            .count();
        assert_eq!((delivered, acked), (1, 2));
    }

    #[test]
    fn unacked_frames_retransmit_with_backoff_then_die() {
        let cfg = ChannelConfig {
            rto: Duration(100),
            rto_max: Duration(100_000),
            max_attempts: 3,
            ping_after: None,
            liveness: Duration::from_secs(3_600),
        };
        let mut a = PeerChannel::new(Endpoint(0), Endpoint(1), cfg, SimTime::ZERO);
        a.send_data(SimTime(0), vec![1]);
        let mut out = Vec::new();
        // First retry due at t=100.
        a.on_tick(SimTime(100), &mut out);
        assert!(matches!(out[0], ChanOut::Retransmit(_)));
        // Backoff doubled: next at 100 + 200.
        assert_eq!(a.next_deadline(), Some(SimTime(300)));
        out.clear();
        a.on_tick(SimTime(300), &mut out);
        assert!(matches!(out[0], ChanOut::Retransmit(_)));
        out.clear();
        // Third expiry exhausts max_attempts.
        a.on_tick(SimTime(1_000), &mut out);
        assert_eq!(out, vec![ChanOut::Dead]);
        assert!(a.is_dead());
        assert_eq!(a.retransmits, 2);
        assert_eq!(a.next_deadline(), None);
    }

    #[test]
    fn idle_channel_pings_then_declares_death_on_silence() {
        let cfg = ChannelConfig {
            rto: Duration(100),
            rto_max: Duration(1_000),
            max_attempts: 5,
            ping_after: Some(Duration(1_000)),
            liveness: Duration(5_000),
        };
        let (mut a, mut b) = pair(cfg);
        let mut out = Vec::new();
        a.on_tick(SimTime(1_000), &mut out);
        let ping = match out.remove(0) {
            ChanOut::Transmit(f) => {
                assert_eq!(f.kind, FrameKind::Ping);
                f
            }
            other => panic!("expected ping, got {other:?}"),
        };
        // The peer answers; feeding the pong back keeps the channel alive.
        let mut bout = Vec::new();
        b.on_frame(SimTime(1_100), ping, &mut bout);
        if let ChanOut::Transmit(pong) = bout.remove(0) {
            assert_eq!(pong.kind, FrameKind::Pong);
            a.on_frame(SimTime(1_200), pong, &mut out);
        }
        assert!(!a.is_dead());
        // Silence past the liveness bound kills it.
        a.on_tick(SimTime(1_200 + 5_000), &mut out);
        assert_eq!(out, vec![ChanOut::Dead]);
    }

    #[test]
    fn quiescent_channel_has_no_deadline_without_probing() {
        let (a, _) = pair(ChannelConfig::sim_default());
        assert_eq!(a.next_deadline(), None, "sim backend must drain");
    }
}
