//! Durable-store crash recovery, end to end: run a farm with on-disk
//! peer state, tear one chunk file (a simulated mid-write crash),
//! restart the farm over the same directories and check that the torn
//! chunk was dropped, the verified chunks were kept and reused, and the
//! swarm fetch still completes with identical results.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use store::DurableStore;
use transport::harness::{demo_module, run_sim, FarmSpec};
use transport::node::JobSpec;

static SCRATCH: AtomicU64 = AtomicU64::new(0);

fn scratch_dirs(n: usize) -> Vec<PathBuf> {
    let run = SCRATCH.fetch_add(1, Ordering::Relaxed);
    (0..n)
        .map(|i| {
            std::env::temp_dir().join(format!("triana-crash-{}-{run}-{i}", std::process::id()))
        })
        .collect()
}

fn farm(dirs: Vec<PathBuf>) -> FarmSpec {
    let (scale, scale_blob) = demo_module("scale", 1, 400);
    let jobs = (0..4)
        .map(|i| JobSpec {
            module: scale.clone(),
            input: vec![i as f64 + 1.0],
        })
        .collect();
    FarmSpec {
        chunk_bytes: 256,
        cache_capacity: 1 << 20,
        n_workers: dirs.len(),
        modules: vec![(scale, scale_blob)],
        jobs,
        durable_dirs: Some(dirs),
    }
}

#[test]
fn torn_chunk_dropped_verified_kept_farm_recovers() {
    let dirs = scratch_dirs(2);
    let spec = farm(dirs.clone());
    let first = run_sim(&spec, 11, obs::Obs::disabled());
    assert_eq!(first.results.len(), 4);
    assert_eq!(first.recovered_chunks, 0, "cold start recovers nothing");

    // Crash simulation: truncate one chunk file under worker 0 to half
    // its length, as if the process died mid-write.
    let d = DurableStore::open(&dirs[0]).expect("reopen worker 0 store");
    let sealed = d.sealed();
    assert!(!sealed.is_empty(), "worker 0 sealed the module blob");
    let blob = sealed[0].2;
    let total_chunks = d.chunk_count() as u64;
    assert!(total_chunks > 1, "module must span several chunks");
    assert!(d.tear_chunk_file(blob, 0), "chunk file 0 must exist");
    drop(d);

    // Restart over the same directories. The torn chunk is dropped at
    // recovery, the rest are verified and reused, and the missing piece
    // is re-fetched over the swarm — so the farm completes again with
    // identical results.
    let observer = obs::Obs::enabled();
    let second = run_sim(&spec, 11, observer.clone());
    assert_eq!(second.results, first.results);
    assert_eq!(second.assignment, first.assignment);
    // Worker 1 recovers every chunk, worker 0 all but the torn one.
    assert_eq!(
        second.recovered_chunks,
        2 * total_chunks - 1,
        "surviving chunks reused, torn chunk not counted"
    );
    let snap = observer.snapshot_json().expect("obs enabled");
    assert!(snap.contains("\"transport.recovered_chunks\""));
    assert!(snap.contains("\"transport.dropped_chunks\":1"));

    // The reopened store must have healed: the re-fetched chunk was
    // re-admitted and the blob sealed again.
    let d = DurableStore::open(&dirs[0]).expect("reopen after heal");
    assert_eq!(d.report().dropped_chunks, 0);
    assert_eq!(d.chunk_count() as u64, total_chunks);
    assert!(!d.sealed().is_empty(), "blob resealed after re-fetch");
    drop(d);

    for dir in &dirs {
        let _ = std::fs::remove_dir_all(dir);
    }
}

#[test]
fn warm_restart_reuses_cache_without_refetch() {
    let dirs = scratch_dirs(2);
    let spec = farm(dirs.clone());
    let cold = run_sim(&spec, 3, obs::Obs::disabled());

    let observer = obs::Obs::enabled();
    let warm = run_sim(&spec, 3, observer.clone());
    assert_eq!(warm.results, cold.results);
    assert!(
        warm.recovered_chunks > 0,
        "warm start reuses durable chunks"
    );
    let snap = observer.snapshot_json().expect("obs enabled");
    // No chunk transfer happened on the warm run: everything came from
    // the durable stores.
    assert!(
        !snap.contains("\"transport.chunks_served\""),
        "no chunk should be served on a warm restart: {snap}"
    );

    for dir in &dirs {
        let _ = std::fs::remove_dir_all(dir);
    }
}
