//! Sim-vs-socket parity: the same farm spec driven through the
//! deterministic sim backend and through real UDP loopback sockets must
//! produce identical task-completion sets, job assignments, outputs and
//! module-cache fingerprints. Only wall-clock-independent fields are
//! compared ([`FarmOutcome`] contains nothing else by construction).

use transport::harness::{demo_module, run_sim, run_sockets, FarmSpec};
use transport::node::JobSpec;

fn farm() -> FarmSpec {
    let (scale, scale_blob) = demo_module("scale", 1, 300);
    let (gain, gain_blob) = demo_module("gain", 2, 500);
    let jobs = (0..8)
        .map(|i| JobSpec {
            module: if i % 2 == 0 {
                scale.clone()
            } else {
                gain.clone()
            },
            input: vec![i as f64, 0.5 * i as f64],
        })
        .collect();
    FarmSpec {
        chunk_bytes: 512,
        cache_capacity: 1 << 20,
        n_workers: 3,
        modules: vec![(scale, scale_blob), (gain, gain_blob)],
        jobs,
        durable_dirs: None,
    }
}

#[test]
fn sim_and_socket_backends_agree() {
    let spec = farm();
    let sim = run_sim(&spec, 42, obs::Obs::disabled());
    let sock = run_sockets(
        &spec,
        obs::Obs::disabled(),
        std::time::Duration::from_secs(60),
    );
    assert_eq!(sim, sock);
    // Sanity on the shared outcome, not just agreement: every job
    // completed, outputs follow the module's arithmetic (input[0] * 2.5).
    assert_eq!(sim.results.len(), 8);
    for (job, (_, outputs)) in &sim.results {
        assert_eq!(outputs.len(), 1, "one output port");
        let expected = *job as f64 * 2.5;
        assert!(
            (outputs[0][0] - expected).abs() < 1e-12,
            "job {job}: got {}, want {expected}",
            outputs[0][0]
        );
    }
    // Round-robin over 3 workers: every worker ran jobs and cached both
    // modules (jobs alternate between the two).
    assert_eq!(sim.worker_modules.len(), 3);
    for mods in sim.worker_modules.values() {
        assert!(!mods.is_empty());
    }
    assert_eq!(sim.recovered_chunks, 0, "no durable dirs in this farm");
}

#[test]
fn sim_runs_are_deterministic_with_counters() {
    let spec = farm();
    let run = || {
        let observer = obs::Obs::enabled();
        let outcome = run_sim(&spec, 7, observer.clone());
        (outcome, observer.snapshot_json().unwrap())
    };
    let (o1, snap1) = run();
    let (o2, snap2) = run();
    assert_eq!(o1, o2);
    assert_eq!(snap1, snap2, "transport.* counters must be byte-identical");
    assert!(snap1.contains("transport.frames_sent"));
    assert!(snap1.contains("transport.acks"));
    // Arena-backed frame payloads ride the same snapshot: identical runs
    // must allocate and recycle identically.
    assert!(snap1.contains("netsim.payload_allocs"));
    assert!(snap1.contains("netsim.payload_reuses"));
}

#[test]
fn socket_backend_agrees_cold_and_warm_pool() {
    // The socket transmit path encodes through the thread-local wire
    // buffer pool. The first run starts from a cold pool, the second
    // reuses whatever the first left behind; both must produce the same
    // wall-clock-independent outcome as the sim oracle.
    let spec = farm();
    let sim = run_sim(&spec, 42, obs::Obs::disabled());
    for round in 0..2 {
        let sock = run_sockets(
            &spec,
            obs::Obs::disabled(),
            std::time::Duration::from_secs(60),
        );
        assert_eq!(sim, sock, "socket round {round} diverged from sim oracle");
    }
}
