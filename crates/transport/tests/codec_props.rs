//! Property tests for the transport wire formats: the link-layer
//! [`Frame`] codec and the grid protocol [`GridMsg`] codec. Both must
//! round-trip every value exactly, and no truncation, corruption or
//! random garbage may panic a decoder — malformed input always yields a
//! typed error.

use netsim::SimTime;
use p2p::advert::{AdvertBody, BlobAdvert};
use p2p::{Advertisement, PeerId};
use proptest::prelude::*;
use transport::frame::{Endpoint, Frame, FrameKind, MAX_PAYLOAD};
use transport::proto::{GridMsg, ModuleInfo};

fn kind_from(sel: u8) -> FrameKind {
    match sel % 4 {
        0 => FrameKind::Data,
        1 => FrameKind::Ack,
        2 => FrameKind::Ping,
        _ => FrameKind::Pong,
    }
}

/// Deterministically expand flat seeds into one of the nine grid
/// messages. `f64` fields come from small integer ratios (finite, so
/// `PartialEq` round-trip comparison is exact).
fn msg_from(sel: u8, a: u64, b: u64, s: &str, floats: &[f64]) -> GridMsg {
    let module = ModuleInfo {
        name: s.to_string(),
        version: a as u32,
        hash: b,
        blob_len: a ^ b,
    };
    let advert = Advertisement {
        body: AdvertBody::Blob(BlobAdvert {
            blob: a,
            size_bytes: b,
            chunks: (a >> 40) as u32,
            provider: PeerId(b as u32),
        }),
        expires: SimTime(u64::MAX),
    };
    match sel % 9 {
        0 => GridMsg::Hello {
            have: (0..(a % 6)).map(|i| b.wrapping_mul(i + 1)).collect(),
        },
        1 => GridMsg::Welcome { jobs_total: a },
        2 => GridMsg::Providers {
            blob: a,
            adverts: (0..(b % 4)).map(|_| advert.clone()).collect(),
        },
        3 => GridMsg::Dispatch {
            job: a,
            module,
            input: floats.to_vec(),
        },
        4 => GridMsg::ChunkRequest {
            blob: a,
            blob_len: b,
            index: (a >> 16) as u32,
        },
        5 => GridMsg::ChunkData {
            blob: a,
            blob_len: b,
            index: (a >> 16) as u32,
            bytes: s.as_bytes().to_vec(),
        },
        6 => GridMsg::HaveBlob { blob: a },
        7 => GridMsg::JobResult {
            job: a,
            outputs: vec![floats.to_vec(), vec![b as f64]],
        },
        _ => GridMsg::Shutdown,
    }
}

proptest! {
    /// Every frame survives encode→decode exactly, and the declared
    /// length prefix always matches the encoded size.
    #[test]
    fn frame_round_trips(
        sel in proptest::arbitrary::any::<u8>(),
        src in proptest::arbitrary::any::<u64>(),
        dst in proptest::arbitrary::any::<u64>(),
        seq in proptest::arbitrary::any::<u64>(),
        payload in proptest::collection::vec(proptest::arbitrary::any::<u8>(), 0..256),
    ) {
        let kind = kind_from(sel);
        let frame = if kind == FrameKind::Data {
            Frame::data(Endpoint(src), Endpoint(dst), seq, payload)
        } else {
            Frame::control(kind, Endpoint(src), Endpoint(dst), seq)
        };
        let bytes = frame.encode();
        prop_assert_eq!(bytes.len(), frame.wire_len());
        prop_assert_eq!(Frame::decode(&bytes), Ok(frame));
    }

    /// Truncating an encoded frame anywhere yields a typed error.
    #[test]
    fn frame_truncation_always_rejected(
        src in proptest::arbitrary::any::<u64>(),
        seq in proptest::arbitrary::any::<u64>(),
        payload in proptest::collection::vec(proptest::arbitrary::any::<u8>(), 0..64),
        cut_seed in proptest::arbitrary::any::<u64>(),
    ) {
        let bytes = Frame::data(Endpoint(src), Endpoint(1), seq, payload).encode();
        let cut = (cut_seed % bytes.len() as u64) as usize;
        prop_assert!(Frame::decode(&bytes[..cut]).is_err());
    }

    /// Flipping an arbitrary byte never panics the frame decoder, and an
    /// oversized declared payload is refused rather than allocated.
    #[test]
    fn frame_corruption_never_panics(
        src in proptest::arbitrary::any::<u64>(),
        seq in proptest::arbitrary::any::<u64>(),
        payload in proptest::collection::vec(proptest::arbitrary::any::<u8>(), 0..64),
        flip_at in proptest::arbitrary::any::<u64>(),
        flip_bits in 1u8..255,
    ) {
        let mut bytes = Frame::data(Endpoint(src), Endpoint(1), seq, payload).encode();
        let at = (flip_at % bytes.len() as u64) as usize;
        bytes[at] ^= flip_bits;
        if let Ok(frame) = Frame::decode(&bytes) {
            prop_assert!(frame.payload.len() <= MAX_PAYLOAD);
        }
    }

    /// Random garbage never panics the frame decoder.
    #[test]
    fn frame_garbage_never_panics(
        bytes in proptest::collection::vec(proptest::arbitrary::any::<u8>(), 0..128),
    ) {
        let _ = Frame::decode(&bytes);
    }

    /// Encoding frames through the shared thread-local buffer pool (the
    /// socket transmit path) is byte-identical to the allocating `encode`,
    /// and the pooled bytes decode back to the original frame even when
    /// the pool recycles one buffer across a whole batch.
    #[test]
    fn pooled_frame_encode_matches_allocating(
        frames in proptest::collection::vec(
            (
                proptest::arbitrary::any::<u8>(),
                proptest::arbitrary::any::<u64>(),
                proptest::arbitrary::any::<u64>(),
                proptest::arbitrary::any::<u64>(),
                proptest::collection::vec(proptest::arbitrary::any::<u8>(), 0..128),
            ),
            1..12,
        ),
    ) {
        for (sel, src, dst, seq, payload) in &frames {
            let kind = kind_from(*sel);
            let frame = if kind == FrameKind::Data {
                Frame::data(Endpoint(*src), Endpoint(*dst), *seq, payload.clone())
            } else {
                Frame::control(kind, Endpoint(*src), Endpoint(*dst), *seq)
            };
            let baseline = frame.encode();
            let (pooled, decoded) = p2p::wire::with_buf(|buf| {
                frame.encode_into(buf);
                (buf.clone(), Frame::decode(buf))
            });
            prop_assert_eq!(&pooled, &baseline);
            prop_assert_eq!(decoded, Ok(frame));
        }
    }

    /// Every grid message survives encode→decode exactly.
    #[test]
    fn grid_msg_round_trips(
        sel in proptest::arbitrary::any::<u8>(),
        a in proptest::arbitrary::any::<u64>(),
        b in proptest::arbitrary::any::<u64>(),
        s in "[a-z]{0,16}",
        floats in proptest::collection::vec((0i32..10_000).prop_map(|n| n as f64 / 8.0), 0..6),
    ) {
        let msg = msg_from(sel, a, b, &s, &floats);
        let bytes = msg.encode();
        prop_assert_eq!(GridMsg::decode(&bytes), Ok(msg));
    }

    /// Truncating an encoded grid message anywhere yields a typed error.
    #[test]
    fn grid_msg_truncation_always_rejected(
        sel in proptest::arbitrary::any::<u8>(),
        a in proptest::arbitrary::any::<u64>(),
        b in proptest::arbitrary::any::<u64>(),
        s in "[a-z]{0,16}",
        cut_seed in proptest::arbitrary::any::<u64>(),
    ) {
        let bytes = msg_from(sel, a, b, &s, &[1.0]).encode();
        let cut = (cut_seed % bytes.len() as u64) as usize;
        prop_assert!(GridMsg::decode(&bytes[..cut]).is_err());
    }

    /// Corrupting an arbitrary byte never panics the grid decoder.
    #[test]
    fn grid_msg_corruption_never_panics(
        sel in proptest::arbitrary::any::<u8>(),
        a in proptest::arbitrary::any::<u64>(),
        b in proptest::arbitrary::any::<u64>(),
        s in "[a-z]{0,16}",
        flip_at in proptest::arbitrary::any::<u64>(),
        flip_bits in 1u8..255,
    ) {
        let mut bytes = msg_from(sel, a, b, &s, &[1.0]).encode();
        let at = (flip_at % bytes.len() as u64) as usize;
        bytes[at] ^= flip_bits;
        let _ = GridMsg::decode(&bytes);
    }

    /// Random garbage never panics the grid decoder.
    #[test]
    fn grid_msg_garbage_never_panics(
        bytes in proptest::collection::vec(proptest::arbitrary::any::<u8>(), 0..200),
    ) {
        let _ = GridMsg::decode(&bytes);
    }
}
