//! Host (consumer device) model.
//!
//! Work is measured in **gigacycles**; a host with an `N` GHz CPU retires
//! `N` gigacycles per second when fully available. This is the calibration
//! knob for the paper's Case 2 arithmetic: "this process takes about 5 hours
//! on a 2 GHz PC" fixes the matched-filter work per chunk at
//! `2 GHz * 5 h = 36 000 gigacycles`.

use crate::link::{LinkClass, LinkSpec};
use crate::rng::Pcg32;
use crate::time::Duration;

/// Device classes the paper mentions as Consumer Grid participants.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DeviceClass {
    /// Desktop / laptop PC.
    Pc,
    /// Workstation-cluster head node (gateways to a local resource manager).
    ClusterNode,
    /// Handheld / PDA / WAP device: resource-constrained, small module cache.
    Handheld,
}

/// Static description of a participating host.
#[derive(Clone, Debug, PartialEq)]
pub struct HostSpec {
    pub device: DeviceClass,
    /// CPU clock in GHz; also gigacycles retired per second.
    pub cpu_ghz: f64,
    /// RAM in MiB; bounds the module cache and data buffering.
    pub ram_mib: u32,
    pub link: LinkSpec,
}

impl HostSpec {
    /// The paper's reference machine: a 2 GHz PC.
    pub fn reference_pc() -> Self {
        HostSpec {
            device: DeviceClass::Pc,
            cpu_ghz: 2.0,
            ram_mib: 512,
            link: LinkClass::Dsl.spec(),
        }
    }

    /// A LAN-connected workstation (the All-Hands demo environment).
    pub fn lan_workstation() -> Self {
        HostSpec {
            device: DeviceClass::Pc,
            cpu_ghz: 2.0,
            ram_mib: 1024,
            link: LinkClass::Lan.spec(),
        }
    }

    /// A constrained handheld: slow CPU, little RAM, modem-class link.
    pub fn handheld() -> Self {
        HostSpec {
            device: DeviceClass::Handheld,
            cpu_ghz: 0.2,
            ram_mib: 32,
            link: LinkClass::Modem.spec(),
        }
    }

    /// Time for this host to execute `gigacycles` of work with the CPU fully
    /// dedicated.
    pub fn exec_time(&self, gigacycles: f64) -> Duration {
        debug_assert!(self.cpu_ghz > 0.0);
        Duration::from_secs_f64(gigacycles.max(0.0) / self.cpu_ghz)
    }

    /// Gigacycles this host retires in `d` of dedicated time.
    pub fn work_in(&self, d: Duration) -> f64 {
        d.as_secs_f64() * self.cpu_ghz
    }

    /// Draw a host from the 2003 consumer population: CPU 0.5–3 GHz, link
    /// class mixed (mostly DSL/cable, a modem tail, few LAN).
    pub fn sample_consumer(rng: &mut Pcg32) -> Self {
        let cpu_ghz = rng.range_f64(0.5, 3.0);
        let ram_mib = [128u32, 256, 512, 1024][rng.below(4) as usize];
        let roll = rng.uniform();
        let link = if roll < 0.40 {
            LinkClass::Dsl
        } else if roll < 0.80 {
            LinkClass::Cable
        } else if roll < 0.95 {
            LinkClass::Modem
        } else {
            LinkClass::Lan
        }
        .spec();
        HostSpec {
            device: DeviceClass::Pc,
            cpu_ghz,
            ram_mib,
            link,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn case2_calibration_five_hours_on_reference_pc() {
        // 36 000 gigacycles at 2 GHz = 18 000 s = 5 h.
        let pc = HostSpec::reference_pc();
        let t = pc.exec_time(36_000.0);
        assert!((t.as_secs_f64() - 18_000.0).abs() < 1e-6, "{t}");
    }

    #[test]
    fn work_and_exec_time_are_inverse() {
        let h = HostSpec {
            cpu_ghz: 1.4,
            ..HostSpec::reference_pc()
        };
        let d = h.exec_time(100.0);
        assert!((h.work_in(d) - 100.0).abs() < 1e-3);
    }

    #[test]
    fn faster_cpu_finishes_sooner() {
        let slow = HostSpec {
            cpu_ghz: 1.0,
            ..HostSpec::reference_pc()
        };
        let fast = HostSpec {
            cpu_ghz: 3.0,
            ..HostSpec::reference_pc()
        };
        assert!(fast.exec_time(10.0) < slow.exec_time(10.0));
    }

    #[test]
    fn negative_work_clamps_to_zero() {
        assert_eq!(HostSpec::reference_pc().exec_time(-5.0), Duration::ZERO);
    }

    #[test]
    fn consumer_population_is_in_spec() {
        let mut rng = Pcg32::new(3, 0);
        let mut classes = std::collections::HashSet::new();
        for _ in 0..500 {
            let h = HostSpec::sample_consumer(&mut rng);
            assert!((0.5..=3.0).contains(&h.cpu_ghz));
            classes.insert(h.link.class);
        }
        assert!(classes.len() >= 3, "population should mix link classes");
    }
}
