//! Lightweight summary statistics used by the experiment harness.

use std::fmt;

/// Online accumulator for count / mean / variance / min / max (Welford).
#[derive(Clone, Debug, Default)]
pub struct Summary {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    pub fn new() -> Self {
        Summary {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    pub fn add(&mut self, x: f64) {
        self.n += 1;
        let d = x - self.mean;
        self.mean += d / self.n as f64;
        self.m2 += d * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    pub fn count(&self) -> u64 {
        self.n
    }

    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance.
    pub fn variance(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    pub fn min(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.min
        }
    }

    pub fn max(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.max
        }
    }

    pub fn sum(&self) -> f64 {
        self.mean() * self.n as f64
    }

    pub fn merge(&mut self, other: &Summary) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n = self.n + other.n;
        let d = other.mean - self.mean;
        let mean = self.mean + d * other.n as f64 / n as f64;
        self.m2 += other.m2 + d * d * self.n as f64 * other.n as f64 / n as f64;
        self.mean = mean;
        self.n = n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.4} sd={:.4} min={:.4} max={:.4}",
            self.n,
            self.mean(),
            self.std_dev(),
            self.min(),
            self.max()
        )
    }
}

/// Exact quantiles over a retained sample set. Fine for experiment-scale
/// data (up to a few million points).
#[derive(Clone, Debug, Default)]
pub struct Quantiles {
    xs: Vec<f64>,
    sorted: bool,
}

impl Quantiles {
    pub fn new() -> Self {
        Quantiles {
            xs: Vec::new(),
            sorted: true,
        }
    }

    pub fn add(&mut self, x: f64) {
        self.xs.push(x);
        self.sorted = false;
    }

    pub fn len(&self) -> usize {
        self.xs.len()
    }

    pub fn is_empty(&self) -> bool {
        self.xs.is_empty()
    }

    /// `q` in `[0, 1]`; linear interpolation between order statistics.
    pub fn quantile(&mut self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile out of range");
        if self.xs.is_empty() {
            return 0.0;
        }
        if !self.sorted {
            self.xs
                .sort_unstable_by(|a, b| a.partial_cmp(b).expect("NaN in quantile data"));
            self.sorted = true;
        }
        let pos = q * (self.xs.len() - 1) as f64;
        let lo = pos.floor() as usize;
        let hi = pos.ceil() as usize;
        if lo == hi {
            self.xs[lo]
        } else {
            let w = pos - lo as f64;
            self.xs[lo] * (1.0 - w) + self.xs[hi] * w
        }
    }

    pub fn median(&mut self) -> f64 {
        self.quantile(0.5)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_matches_direct_computation() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut s = Summary::new();
        for &x in &xs {
            s.add(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 4.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
        assert!((s.sum() - 40.0).abs() < 1e-9);
    }

    #[test]
    fn empty_summary_is_zeroed() {
        let s = Summary::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 0.0);
    }

    #[test]
    fn merge_equals_single_stream() {
        let mut a = Summary::new();
        let mut b = Summary::new();
        let mut all = Summary::new();
        for i in 0..100 {
            let x = (i as f64).sin() * 10.0;
            if i % 2 == 0 {
                a.add(x);
            } else {
                b.add(x);
            }
            all.add(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert!((a.mean() - all.mean()).abs() < 1e-9);
        assert!((a.variance() - all.variance()).abs() < 1e-9);
    }

    #[test]
    fn quantiles_interpolate() {
        let mut q = Quantiles::new();
        for x in [1.0, 2.0, 3.0, 4.0] {
            q.add(x);
        }
        assert_eq!(q.quantile(0.0), 1.0);
        assert_eq!(q.quantile(1.0), 4.0);
        assert!((q.median() - 2.5).abs() < 1e-12);
        assert!((q.quantile(1.0 / 3.0) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn quantiles_tolerate_unsorted_inserts_between_queries() {
        let mut q = Quantiles::new();
        q.add(5.0);
        q.add(1.0);
        assert_eq!(q.median(), 3.0);
        q.add(9.0);
        assert_eq!(q.median(), 5.0);
    }
}
