//! Simulation time: microsecond-resolution instants and durations.
//!
//! Integer microseconds give a total order with no floating-point
//! accumulation drift; `u64` microseconds cover ~584 000 years, far beyond
//! any experiment horizon (the longest paper scenario is a year of SETI-style
//! accrual).

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant on the simulation clock, in microseconds since t=0.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A span of simulated time, in microseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Duration(pub u64);

pub const MICROS_PER_SEC: u64 = 1_000_000;

impl SimTime {
    pub const ZERO: SimTime = SimTime(0);

    /// Construct from whole seconds.
    pub fn from_secs(s: u64) -> Self {
        SimTime(s * MICROS_PER_SEC)
    }

    /// Fractional seconds since t=0.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / MICROS_PER_SEC as f64
    }

    pub fn as_micros(self) -> u64 {
        self.0
    }

    /// Duration since an earlier instant. Panics in debug builds if
    /// `earlier` is in the future.
    pub fn since(self, earlier: SimTime) -> Duration {
        debug_assert!(self >= earlier, "SimTime::since: earlier is later");
        Duration(self.0.saturating_sub(earlier.0))
    }
}

impl Duration {
    pub const ZERO: Duration = Duration(0);

    pub fn from_secs(s: u64) -> Self {
        Duration(s * MICROS_PER_SEC)
    }

    pub fn from_millis(ms: u64) -> Self {
        Duration(ms * 1_000)
    }

    pub fn from_micros(us: u64) -> Self {
        Duration(us)
    }

    /// Construct from fractional seconds, rounding to the nearest
    /// microsecond. Negative or non-finite inputs clamp to zero.
    pub fn from_secs_f64(s: f64) -> Self {
        if !s.is_finite() || s <= 0.0 {
            return Duration(0);
        }
        Duration((s * MICROS_PER_SEC as f64).round() as u64)
    }

    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / MICROS_PER_SEC as f64
    }

    pub fn as_micros(self) -> u64 {
        self.0
    }

    pub fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating duration subtraction.
    pub fn saturating_sub(self, rhs: Duration) -> Duration {
        Duration(self.0.saturating_sub(rhs.0))
    }
}

impl Add<Duration> for SimTime {
    type Output = SimTime;
    fn add(self, d: Duration) -> SimTime {
        SimTime(self.0 + d.0)
    }
}

impl AddAssign<Duration> for SimTime {
    fn add_assign(&mut self, d: Duration) {
        self.0 += d.0;
    }
}

impl Sub<Duration> for SimTime {
    type Output = SimTime;
    fn sub(self, d: Duration) -> SimTime {
        SimTime(self.0.saturating_sub(d.0))
    }
}

impl Add for Duration {
    type Output = Duration;
    fn add(self, rhs: Duration) -> Duration {
        Duration(self.0 + rhs.0)
    }
}

impl AddAssign for Duration {
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

impl Sub for Duration {
    type Output = Duration;
    fn sub(self, rhs: Duration) -> Duration {
        debug_assert!(self.0 >= rhs.0, "Duration subtraction underflow");
        Duration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for Duration {
    fn sub_assign(&mut self, rhs: Duration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for Duration {
    type Output = Duration;
    fn mul(self, k: u64) -> Duration {
        Duration(self.0 * k)
    }
}

impl Div<u64> for Duration {
    type Output = Duration;
    fn div(self, k: u64) -> Duration {
        Duration(self.0 / k)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Debug for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= MICROS_PER_SEC {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1_000.0)
        } else {
            write!(f, "{}us", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_round_trips() {
        let t = SimTime::from_secs(10);
        let d = Duration::from_millis(2500);
        assert_eq!((t + d).as_micros(), 12_500_000);
        assert_eq!((t + d).since(t), d);
    }

    #[test]
    fn duration_from_secs_f64_rounds() {
        assert_eq!(Duration::from_secs_f64(1.5).as_micros(), 1_500_000);
        assert_eq!(Duration::from_secs_f64(0.0000005).as_micros(), 1);
        assert_eq!(Duration::from_secs_f64(-3.0), Duration::ZERO);
        assert_eq!(Duration::from_secs_f64(f64::NAN), Duration::ZERO);
    }

    #[test]
    fn ordering_is_total() {
        let a = SimTime(5);
        let b = SimTime(7);
        assert!(a < b);
        assert_eq!(a.max(b), b);
    }

    #[test]
    fn display_scales_units() {
        assert_eq!(Duration::from_micros(12).to_string(), "12us");
        assert_eq!(Duration::from_micros(1_200).to_string(), "1.200ms");
        assert_eq!(Duration::from_secs(2).to_string(), "2.000s");
    }

    #[test]
    fn saturating_ops() {
        let d = Duration::from_micros(5);
        assert_eq!(d.saturating_sub(Duration::from_micros(9)), Duration::ZERO);
        let t = SimTime(3);
        assert_eq!(t - Duration::from_micros(10), SimTime::ZERO);
    }
}
