//! `netsim` — deterministic discrete-event simulation substrate for the
//! Consumer Grid reproduction.
//!
//! The paper's Consumer Grid targets privately-connected hosts (DSL, cable,
//! modem) with heterogeneous CPUs and volunteer-style availability. None of
//! that hardware is available here, so this crate provides the synthetic
//! equivalent: a discrete-event simulator with
//!
//! * a total-ordered event queue and microsecond clock ([`Sim`], [`EventQueue`]),
//! * deterministic, splittable random streams ([`rng::Pcg32`]),
//! * access-link models for consumer connection classes ([`link::LinkClass`]),
//! * a host model mapping work (gigacycles) to execution time ([`host::HostSpec`]),
//! * a star-topology internet cloud with per-host uplink/downlink queueing
//!   ([`net::Network`]),
//! * volunteer availability / churn processes ([`avail`]), and
//! * lightweight summary statistics ([`stats`]).
//!
//! Higher layers (`p2p`, `triana-core`) define their own event enums and run
//! them through [`Sim`]; all randomness flows from explicitly seeded streams
//! so every experiment is reproducible bit-for-bit.

pub mod avail;
pub mod event;
pub mod host;
pub mod link;
pub mod net;
pub mod payload;
pub mod rng;
pub mod stats;
pub mod time;

pub use event::{BinaryHeapQueue, EventQueue, EventTap, Intercept, Sim};
pub use host::HostSpec;
pub use link::{LinkClass, LinkSpec};
pub use net::{HostId, Network};
pub use payload::{PayloadArena, PayloadId, PayloadStats};
pub use rng::Pcg32;
pub use time::{Duration, SimTime};
