//! Recycled storage for bulky event payloads.
//!
//! Events that carry variable-size data (encoded frames, scatter/gather
//! buffers) used to box a fresh `Vec` per event, which put an allocation
//! on the simulator's hottest path. A [`PayloadArena`] instead owns every
//! buffer: producers [`acquire`](PayloadArena::acquire) a slot, fill it in
//! place, and thread the dense [`PayloadId`] through the event queue;
//! consumers read the slot and [`release`](PayloadArena::release) it. A
//! released slot keeps its heap capacity, so in steady state the arena
//! performs no allocation at all — `Vec<u8>` payloads reuse whatever
//! capacity the largest prior occupant left behind.
//!
//! The arena is deliberately *not* shared or synchronised: one world owns
//! one arena, exactly like it owns its event queue, so determinism needs
//! no locks. Slot indices are recycled LIFO, which keeps the working set
//! hot in cache and makes reuse order deterministic.

/// Dense handle to one arena slot. Only meaningful to the arena that
/// issued it; carrying it inside an event enum keeps the event `Copy`-ish
/// small while the bytes stay put.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PayloadId(u32);

/// Monotonic counters describing arena traffic.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PayloadStats {
    /// Acquires that had to grow the arena (a fresh slot).
    pub allocs: u64,
    /// Acquires served by recycling a released slot.
    pub reuses: u64,
}

/// Slab of recyclable payload slots with a LIFO free list.
pub struct PayloadArena<T> {
    slots: Vec<T>,
    free: Vec<u32>,
    stats: PayloadStats,
}

impl<T: Default> Default for PayloadArena<T> {
    fn default() -> Self {
        PayloadArena {
            slots: Vec::new(),
            free: Vec::new(),
            stats: PayloadStats::default(),
        }
    }
}

impl<T: Default> PayloadArena<T> {
    pub fn new() -> Self {
        Self::default()
    }

    /// Hand out a slot. The value inside is whatever the previous occupant
    /// left (or `T::default()` for a fresh slot) — callers reset it as
    /// part of filling it, e.g. `Vec::clear`, which is exactly what lets a
    /// recycled `Vec` keep its capacity.
    pub fn acquire(&mut self) -> (PayloadId, &mut T) {
        match self.free.pop() {
            Some(i) => {
                self.stats.reuses += 1;
                (PayloadId(i), &mut self.slots[i as usize])
            }
            None => {
                let i = self.slots.len() as u32;
                self.stats.allocs += 1;
                self.slots.push(T::default());
                (PayloadId(i), &mut self.slots[i as usize])
            }
        }
    }

    /// Read a live slot.
    pub fn get(&self, id: PayloadId) -> &T {
        &self.slots[id.0 as usize]
    }

    /// Mutate a live slot.
    pub fn get_mut(&mut self, id: PayloadId) -> &mut T {
        &mut self.slots[id.0 as usize]
    }

    /// Return a slot to the free list. The value is left in place (its
    /// capacity is the whole point); the next `acquire` may hand it out
    /// again. Releasing the same id twice without re-acquiring it is a
    /// logic error and panics in debug builds.
    pub fn release(&mut self, id: PayloadId) {
        debug_assert!(
            !self.free.contains(&id.0),
            "payload slot {} released twice",
            id.0
        );
        self.free.push(id.0);
    }

    /// Slots currently handed out.
    pub fn live(&self) -> usize {
        self.slots.len() - self.free.len()
    }

    /// Total slots ever created (the arena's high-water mark).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    pub fn stats(&self) -> PayloadStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_slots_then_lifo_reuse() {
        let mut a: PayloadArena<Vec<u8>> = PayloadArena::new();
        let (i0, b) = a.acquire();
        b.extend_from_slice(b"abc");
        let (i1, _) = a.acquire();
        assert_ne!(i0, i1);
        assert_eq!(
            a.stats(),
            PayloadStats {
                allocs: 2,
                reuses: 0
            }
        );
        a.release(i0);
        let (i2, buf) = a.acquire();
        assert_eq!(i2, i0, "LIFO recycling hands back the last released slot");
        assert_eq!(buf.as_slice(), b"abc", "contents survive until overwritten");
        assert!(buf.capacity() >= 3, "capacity is retained across recycling");
        assert_eq!(
            a.stats(),
            PayloadStats {
                allocs: 2,
                reuses: 1
            }
        );
    }

    #[test]
    fn steady_state_never_grows() {
        let mut a: PayloadArena<Vec<u8>> = PayloadArena::new();
        for round in 0..100u8 {
            let (id, buf) = a.acquire();
            buf.clear();
            buf.extend_from_slice(&[round; 16]);
            assert_eq!(a.get(id).as_slice(), &[round; 16]);
            a.release(id);
        }
        assert_eq!(a.capacity(), 1, "one slot serves the whole sequence");
        assert_eq!(a.stats().reuses, 99);
    }

    #[test]
    fn live_tracks_outstanding_slots() {
        let mut a: PayloadArena<Vec<u8>> = PayloadArena::new();
        let (x, _) = a.acquire();
        let (y, _) = a.acquire();
        assert_eq!(a.live(), 2);
        a.release(x);
        assert_eq!(a.live(), 1);
        a.release(y);
        assert_eq!(a.live(), 0);
        assert_eq!(a.capacity(), 2);
    }

    #[test]
    #[should_panic(expected = "released twice")]
    #[cfg(debug_assertions)]
    fn double_release_panics_in_debug() {
        let mut a: PayloadArena<Vec<u8>> = PayloadArena::new();
        let (id, _) = a.acquire();
        a.release(id);
        a.release(id);
    }
}
