//! The discrete-event engine: a clock plus a total-ordered event queue.
//!
//! `Sim<Ev>` is generic over the event payload so each layer (overlay,
//! workflow engine, experiment harness) can define its own event enum and
//! compose them with `From` impls. Ties in time are broken by insertion
//! sequence number, giving a total, deterministic order.
//!
//! The queue itself is a *calendar queue*: an array of time buckets of
//! fixed width, indexed by `(t / width) % nbuckets`, with events stored in
//! an arena slab and buckets holding only `u32` slot indices. For the
//! near-uniform event densities a network simulation produces, push and
//! pop are O(1) amortised versus the binary heap's O(log n) — the
//! difference that makes 10⁵-peer overlay experiments tractable. The pop
//! order is *exactly* the `(timestamp, insertion-seq)` total order of the
//! old heap, so every seeded experiment remains byte-identical.

use crate::rng::Pcg32;
use crate::time::{Duration, SimTime};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

struct Scheduled<Ev> {
    at: SimTime,
    seq: u64,
    ev: Ev,
}

impl<Ev> PartialEq for Scheduled<Ev> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<Ev> Eq for Scheduled<Ev> {}
impl<Ev> PartialOrd for Scheduled<Ev> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<Ev> Ord for Scheduled<Ev> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert for earliest-first order.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// The pre-refactor binary-heap event queue, kept as the reference
/// implementation: the calendar queue must agree with it event-for-event
/// (see the differential tests below), and the perf harness benches both
/// so BENCH_PERF.json keeps the heap number for the trajectory.
pub struct BinaryHeapQueue<Ev> {
    heap: BinaryHeap<Scheduled<Ev>>,
    next_seq: u64,
}

impl<Ev> Default for BinaryHeapQueue<Ev> {
    fn default() -> Self {
        BinaryHeapQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }
}

impl<Ev> BinaryHeapQueue<Ev> {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn push(&mut self, at: SimTime, ev: Ev) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { at, seq, ev });
    }

    pub fn pop(&mut self) -> Option<(SimTime, Ev)> {
        self.heap.pop().map(|s| (s.at, s.ev))
    }

    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|s| s.at)
    }

    pub fn len(&self) -> usize {
        self.heap.len()
    }

    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

/// Minimum and maximum bucket-array sizes. The array is always a power of
/// two so the `% nbuckets` in the index computation compiles to a mask.
const MIN_BUCKETS: usize = 16;
const MAX_BUCKETS: usize = 1 << 20;

/// A standalone priority queue of timestamped events (earliest first,
/// FIFO among equal timestamps), implemented as a calendar queue over an
/// arena-backed event slab.
pub struct EventQueue<Ev> {
    /// Arena of scheduled events; `None` slots are free.
    slab: Vec<Option<Scheduled<Ev>>>,
    /// Free slot indices available for reuse.
    free: Vec<u32>,
    /// `buckets[i]` holds slot indices with `(at / width) % nbuckets == i`,
    /// sorted *descending* by `(at, seq)` so the minimum pops from the end.
    buckets: Vec<Vec<u32>>,
    /// Bucket width in microseconds (≥ 1).
    width: u64,
    /// Cached slot index of the global minimum event, kept current on
    /// every push/pop so `peek_time` is O(1) and `&self`.
    next: Option<u32>,
    len: usize,
    next_seq: u64,
}

impl<Ev> Default for EventQueue<Ev> {
    fn default() -> Self {
        EventQueue {
            slab: Vec::new(),
            free: Vec::new(),
            buckets: (0..MIN_BUCKETS).map(|_| Vec::new()).collect(),
            width: 1024,
            next: None,
            len: 0,
            next_seq: 0,
        }
    }
}

impl<Ev> EventQueue<Ev> {
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    fn bucket_of(&self, at: SimTime) -> usize {
        ((at.0 / self.width) as usize) & (self.buckets.len() - 1)
    }

    #[inline]
    fn key(&self, idx: u32) -> (SimTime, u64) {
        let s = self.slab[idx as usize].as_ref().expect("live slot");
        (s.at, s.seq)
    }

    /// Insert a slot index into its bucket, keeping the bucket sorted
    /// descending by `(at, seq)`. Buckets average O(1) entries when the
    /// width is tuned, so the binary search + shift is cheap.
    fn insert_into_bucket(&mut self, idx: u32) {
        let b = self.bucket_of(self.slab[idx as usize].as_ref().expect("live").at);
        let k = self.key(idx);
        let bucket = &self.buckets[b];
        // Descending order: find the first position whose key is < k.
        let pos = bucket.partition_point(|&o| {
            let ok = {
                let s = self.slab[o as usize].as_ref().expect("live slot");
                (s.at, s.seq)
            };
            ok > k
        });
        self.buckets[b].insert(pos, idx);
    }

    pub fn push(&mut self, at: SimTime, ev: Ev) {
        let seq = self.next_seq;
        self.next_seq += 1;
        let idx = match self.free.pop() {
            Some(i) => {
                self.slab[i as usize] = Some(Scheduled { at, seq, ev });
                i
            }
            None => {
                let i = self.slab.len() as u32;
                self.slab.push(Some(Scheduled { at, seq, ev }));
                i
            }
        };
        self.len += 1;
        self.insert_into_bucket(idx);
        match self.next {
            Some(n) if self.key(n) <= (at, seq) => {}
            _ => self.next = Some(idx),
        }
        if self.len > self.buckets.len() * 2 && self.buckets.len() < MAX_BUCKETS {
            self.resize();
        }
    }

    pub fn pop(&mut self) -> Option<(SimTime, Ev)> {
        let idx = self.next?;
        let b = self.bucket_of(self.slab[idx as usize].as_ref().expect("live").at);
        let popped = self.buckets[b].pop().expect("cached min must be in bucket");
        debug_assert_eq!(popped, idx, "cached min must be its bucket's tail");
        let s = self.slab[idx as usize].take().expect("live slot");
        self.free.push(idx);
        self.len -= 1;
        if self.len * 4 < self.buckets.len() && self.buckets.len() > MIN_BUCKETS {
            self.resize();
        } else {
            self.next = self.find_next_from(s.at);
        }
        Some((s.at, s.ev))
    }

    pub fn peek_time(&self) -> Option<SimTime> {
        self.next
            .map(|i| self.slab[i as usize].as_ref().expect("live slot").at)
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Find the slot of the minimum event, scanning buckets calendar-style
    /// from the bucket containing `from` (the time of the last popped
    /// event; pops are monotone, so nothing earlier can exist). Each
    /// bucket's tail is its minimum; a tail belongs to the current
    /// "year" iff its timestamp falls before the bucket's current window
    /// end. One full empty lap falls back to a direct min scan.
    fn find_next_from(&self, from: SimTime) -> Option<u32> {
        if self.len == 0 {
            return None;
        }
        let n = self.buckets.len();
        let mut i = self.bucket_of(from);
        let mut window_end = (from.0 / self.width + 1) * self.width;
        for _ in 0..n {
            if let Some(&tail) = self.buckets[i].last() {
                let at = self.slab[tail as usize].as_ref().expect("live slot").at;
                if at.0 < window_end {
                    return Some(tail);
                }
            }
            i = (i + 1) & (n - 1);
            window_end += self.width;
        }
        // Sparse year: jump straight to the global minimum.
        self.buckets
            .iter()
            .filter_map(|b| b.last().copied())
            .min_by_key(|&t| self.key(t))
    }

    /// Rebuild the bucket array for the current population: nbuckets is
    /// the next power of two ≥ len (clamped), width the live event span
    /// divided by the population. Both depend only on queue contents, so
    /// resizing is deterministic.
    fn resize(&mut self) {
        let mut live: Vec<u32> = self.buckets.iter().flatten().copied().collect();
        live.sort_unstable_by_key(|&i| self.key(i));
        let nbuckets = live
            .len()
            .next_power_of_two()
            .clamp(MIN_BUCKETS, MAX_BUCKETS);
        let (lo, hi) = match (live.first(), live.last()) {
            (Some(&f), Some(&l)) => (self.key(f).0 .0, self.key(l).0 .0),
            _ => (0, 0),
        };
        self.width = ((hi - lo) / (live.len().max(1) as u64)).max(1);
        self.buckets = (0..nbuckets).map(|_| Vec::new()).collect();
        // Ascending insertion order makes every bucket sorted ascending;
        // reverse each so the minimum sits at the tail.
        for &idx in &live {
            let b = self.bucket_of(self.slab[idx as usize].as_ref().expect("live").at);
            self.buckets[b].push(idx);
        }
        for b in &mut self.buckets {
            b.reverse();
        }
        self.next = live.first().copied();
    }
}

/// What an [`EventTap`] decides to do with an event popped from the queue,
/// *before* it reaches the handler.
pub enum Intercept<Ev> {
    /// Deliver this (possibly substituted) event now.
    Deliver(Ev),
    /// Swallow the event entirely: the handler never sees it.
    Drop,
    /// Deliver the first event now and schedule the second `delay` later
    /// (message duplication).
    DeliverAndSchedule(Ev, Duration, Ev),
    /// Do not deliver now; push the event back `delay` into the future
    /// (message delay / reorder).
    Reschedule(Duration, Ev),
}

/// A fault-injection hook threaded through [`Sim::step`]: every event popped
/// from the queue is offered to the tap, which may deliver, drop, duplicate
/// or defer it. Ownership of the event passes through the tap, so `Ev` needs
/// no `Clone` bound — duplication is the tap's job (it must construct the
/// copy itself).
pub trait EventTap<Ev> {
    fn intercept(&mut self, now: SimTime, ev: Ev) -> Intercept<Ev>;
}

/// The simulator: current time, pending events, and a root random stream.
pub struct Sim<Ev> {
    now: SimTime,
    queue: EventQueue<Ev>,
    rng: Pcg32,
    processed: u64,
    /// Optional hard stop; events scheduled later than this are still queued
    /// but `run` will not dispatch past it.
    horizon: Option<SimTime>,
    tap: Option<Box<dyn EventTap<Ev>>>,
}

impl<Ev> Sim<Ev> {
    pub fn new(seed: u64) -> Self {
        Sim {
            now: SimTime::ZERO,
            queue: EventQueue::new(),
            rng: Pcg32::new(seed, 0xCAFE),
            processed: 0,
            horizon: None,
            tap: None,
        }
    }

    /// Install a fault-injection tap (see [`EventTap`]). Replaces any
    /// previous tap.
    pub fn set_tap(&mut self, tap: Box<dyn EventTap<Ev>>) {
        self.tap = Some(tap);
    }

    /// Remove the tap, returning it.
    pub fn take_tap(&mut self) -> Option<Box<dyn EventTap<Ev>>> {
        self.tap.take()
    }

    /// Timestamp of the next pending event, if any (does not advance time).
    pub fn peek_time(&self) -> Option<SimTime> {
        self.queue.peek_time()
    }

    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events dispatched so far.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Root random stream (split it rather than drawing from it directly in
    /// per-entity code).
    pub fn rng(&mut self) -> &mut Pcg32 {
        &mut self.rng
    }

    /// Derive an independent random stream for an entity.
    pub fn stream(&mut self, id: u64) -> Pcg32 {
        self.rng.split(id)
    }

    /// Stop dispatching events after this instant.
    pub fn set_horizon(&mut self, at: SimTime) {
        self.horizon = Some(at);
    }

    /// Schedule an event `delay` after now.
    pub fn schedule(&mut self, delay: Duration, ev: Ev) {
        self.queue.push(self.now + delay, ev);
    }

    /// Schedule an event at an absolute instant (clamped to now if earlier;
    /// the past cannot be revisited).
    pub fn schedule_at(&mut self, at: SimTime, ev: Ev) {
        self.queue.push(at.max(self.now), ev);
    }

    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Pop the next event, advancing the clock. Returns `None` when the
    /// queue is empty or the horizon is reached.
    pub fn step(&mut self) -> Option<Ev> {
        loop {
            let at = self.queue.peek_time()?;
            if let Some(h) = self.horizon {
                if at > h {
                    self.now = h;
                    return None;
                }
            }
            let (at, ev) = self.queue.pop().expect("peeked");
            debug_assert!(at >= self.now, "event queue went backwards");
            self.now = at;
            let ev = if let Some(tap) = self.tap.as_mut() {
                match tap.intercept(at, ev) {
                    Intercept::Deliver(ev) => ev,
                    Intercept::Drop => continue,
                    Intercept::DeliverAndSchedule(ev, delay, copy) => {
                        // A zero delay would still be FIFO-after the original
                        // (insertion seq breaks the tie), so no clamp needed.
                        self.queue.push(self.now + delay, copy);
                        ev
                    }
                    Intercept::Reschedule(delay, ev) => {
                        // Clamp to ≥1µs so a zero-delay defer cannot spin the
                        // loop forever re-popping the same event.
                        self.queue
                            .push(self.now + delay.max(Duration::from_micros(1)), ev);
                        continue;
                    }
                }
            } else {
                ev
            };
            self.processed += 1;
            return Some(ev);
        }
    }

    /// Run to completion (or horizon), dispatching each event to `handler`.
    /// The handler may schedule further events.
    pub fn run(&mut self, mut handler: impl FnMut(&mut Sim<Ev>, Ev)) {
        while let Some(ev) = self.step() {
            handler(self, ev);
        }
    }

    /// Run until the given instant, then stop (events at exactly `until` are
    /// dispatched).
    pub fn run_until(&mut self, until: SimTime, mut handler: impl FnMut(&mut Sim<Ev>, Ev)) {
        loop {
            match self.queue.peek_time() {
                Some(t) if t <= until => {
                    let ev = self.step().expect("peeked");
                    handler(self, ev);
                }
                _ => {
                    self.now = self.now.max(until.min(self.horizon.unwrap_or(until)));
                    break;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_dispatch_in_time_order() {
        let mut sim: Sim<u32> = Sim::new(1);
        sim.schedule(Duration::from_micros(30), 3);
        sim.schedule(Duration::from_micros(10), 1);
        sim.schedule(Duration::from_micros(20), 2);
        let mut seen = vec![];
        sim.run(|s, ev| seen.push((s.now().as_micros(), ev)));
        assert_eq!(seen, vec![(10, 1), (20, 2), (30, 3)]);
    }

    #[test]
    fn ties_break_fifo() {
        let mut sim: Sim<u32> = Sim::new(1);
        for i in 0..5 {
            sim.schedule(Duration::from_micros(7), i);
        }
        let mut seen = vec![];
        sim.run(|_, ev| seen.push(ev));
        assert_eq!(seen, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn handler_can_schedule_more() {
        let mut sim: Sim<u32> = Sim::new(1);
        sim.schedule(Duration::from_micros(1), 0);
        let mut count = 0;
        sim.run(|s, ev| {
            count += 1;
            if ev < 4 {
                s.schedule(Duration::from_micros(1), ev + 1);
            }
        });
        assert_eq!(count, 5);
        assert_eq!(sim.now().as_micros(), 5);
        assert_eq!(sim.processed(), 5);
    }

    #[test]
    fn horizon_stops_dispatch() {
        let mut sim: Sim<u32> = Sim::new(1);
        sim.set_horizon(SimTime(15));
        sim.schedule(Duration::from_micros(10), 1);
        sim.schedule(Duration::from_micros(20), 2);
        let mut seen = vec![];
        sim.run(|_, ev| seen.push(ev));
        assert_eq!(seen, vec![1]);
        assert_eq!(sim.now(), SimTime(15));
    }

    #[test]
    fn run_until_leaves_later_events_queued() {
        let mut sim: Sim<u32> = Sim::new(1);
        sim.schedule(Duration::from_micros(5), 1);
        sim.schedule(Duration::from_micros(50), 2);
        let mut seen = vec![];
        sim.run_until(SimTime(10), |_, ev| seen.push(ev));
        assert_eq!(seen, vec![1]);
        assert_eq!(sim.now(), SimTime(10));
        assert_eq!(sim.pending(), 1);
        sim.run(|_, ev| seen.push(ev));
        assert_eq!(seen, vec![1, 2]);
    }

    struct DropOdd;
    impl EventTap<u32> for DropOdd {
        fn intercept(&mut self, _now: SimTime, ev: u32) -> Intercept<u32> {
            if ev % 2 == 1 {
                Intercept::Drop
            } else {
                Intercept::Deliver(ev)
            }
        }
    }

    #[test]
    fn tap_can_drop_events() {
        let mut sim: Sim<u32> = Sim::new(1);
        sim.set_tap(Box::new(DropOdd));
        for i in 0..6 {
            sim.schedule(Duration::from_micros(i as u64 + 1), i);
        }
        let mut seen = vec![];
        sim.run(|_, ev| seen.push(ev));
        assert_eq!(seen, vec![0, 2, 4]);
        // Dropped events are not counted as processed.
        assert_eq!(sim.processed(), 3);
    }

    struct DupFirst {
        done: bool,
    }
    impl EventTap<u32> for DupFirst {
        fn intercept(&mut self, _now: SimTime, ev: u32) -> Intercept<u32> {
            if !self.done {
                self.done = true;
                Intercept::DeliverAndSchedule(ev, Duration::from_micros(5), ev + 100)
            } else {
                Intercept::Deliver(ev)
            }
        }
    }

    #[test]
    fn tap_can_duplicate_events() {
        let mut sim: Sim<u32> = Sim::new(1);
        sim.set_tap(Box::new(DupFirst { done: false }));
        sim.schedule(Duration::from_micros(1), 7);
        let mut seen = vec![];
        sim.run(|s, ev| seen.push((s.now().as_micros(), ev)));
        assert_eq!(seen, vec![(1, 7), (6, 107)]);
    }

    struct DeferOnce {
        deferred: bool,
    }
    impl EventTap<u32> for DeferOnce {
        fn intercept(&mut self, _now: SimTime, ev: u32) -> Intercept<u32> {
            if !self.deferred {
                self.deferred = true;
                Intercept::Reschedule(Duration::from_micros(10), ev)
            } else {
                Intercept::Deliver(ev)
            }
        }
    }

    #[test]
    fn tap_can_defer_and_reorder_events() {
        let mut sim: Sim<u32> = Sim::new(1);
        sim.set_tap(Box::new(DeferOnce { deferred: false }));
        sim.schedule(Duration::from_micros(1), 1); // deferred to t=11
        sim.schedule(Duration::from_micros(2), 2);
        let mut seen = vec![];
        sim.run(|_, ev| seen.push(ev));
        assert_eq!(seen, vec![2, 1]);
        assert!(sim.take_tap().is_some());
    }

    #[test]
    fn schedule_at_clamps_to_now() {
        let mut sim: Sim<u32> = Sim::new(1);
        sim.schedule(Duration::from_micros(10), 1);
        let mut fired_late = false;
        sim.run(|s, ev| {
            if ev == 1 {
                s.schedule_at(SimTime(3), 2); // in the past: clamps to now=10
            } else {
                fired_late = s.now() >= SimTime(10);
            }
        });
        assert!(fired_late);
    }

    /// Drive the calendar queue and the reference heap through an identical
    /// seeded push/pop schedule and demand event-for-event agreement. This
    /// is the determinism contract: swapping the queue implementation must
    /// not reorder any experiment.
    #[test]
    fn calendar_queue_matches_heap_differentially() {
        for seed in 0..8u64 {
            let mut rng = Pcg32::new(seed, 0xBEEF);
            let mut cal: EventQueue<u64> = EventQueue::new();
            let mut heap: BinaryHeapQueue<u64> = BinaryHeapQueue::new();
            let mut clock: u64 = 0;
            let mut tag: u64 = 0;
            for round in 0..2_000 {
                let burst = rng.below(4) + 1;
                for _ in 0..burst {
                    // Mix dense near-future with sparse far-future events,
                    // plus exact ties to exercise FIFO ordering.
                    let dt = match rng.below(10) {
                        0 => 0,
                        1..=6 => rng.below(50),
                        7 | 8 => rng.below(5_000),
                        _ => rng.below(1_000_000),
                    };
                    let at = SimTime(clock + dt);
                    cal.push(at, tag);
                    heap.push(at, tag);
                    tag += 1;
                }
                let pops = if round % 7 == 0 { burst + 2 } else { burst };
                for _ in 0..pops {
                    let a = cal.pop();
                    let b = heap.pop();
                    assert_eq!(a, b, "divergence at seed {seed} round {round}");
                    if let Some((t, _)) = a {
                        clock = t.0;
                    }
                }
                assert_eq!(cal.len(), heap.len());
                assert_eq!(cal.peek_time(), heap.peek_time());
            }
            while let Some(a) = cal.pop() {
                assert_eq!(Some(a), heap.pop());
            }
            assert!(heap.pop().is_none());
        }
    }

    /// Same-timestamp floods (the clique-broadcast pattern) must stay FIFO
    /// through grow/shrink resizes.
    #[test]
    fn calendar_queue_fifo_through_resize() {
        let mut q: EventQueue<u32> = EventQueue::new();
        for i in 0..10_000u32 {
            q.push(SimTime(42), i);
        }
        for i in 0..10_000u32 {
            let (t, ev) = q.pop().expect("still full");
            assert_eq!((t, ev), (SimTime(42), i));
        }
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
    }

    /// Widely-spaced events (sparse years) must still pop in order: the
    /// full-lap fallback to a direct minimum scan.
    #[test]
    fn calendar_queue_handles_sparse_far_future() {
        let mut q: EventQueue<u32> = EventQueue::new();
        q.push(SimTime(5), 1);
        q.push(SimTime(10_000_000_000), 3);
        q.push(SimTime(7_000_000), 2);
        assert_eq!(q.pop(), Some((SimTime(5), 1)));
        assert_eq!(q.pop(), Some((SimTime(7_000_000), 2)));
        q.push(SimTime(8_000_000), 10);
        assert_eq!(q.pop(), Some((SimTime(8_000_000), 10)));
        assert_eq!(q.pop(), Some((SimTime(10_000_000_000), 3)));
        assert_eq!(q.pop(), None);
    }

    /// The arena must recycle slots: interleaved push/pop at steady state
    /// keeps the slab at the high-water mark instead of growing forever.
    #[test]
    fn calendar_queue_arena_reuses_slots() {
        let mut q: EventQueue<u32> = EventQueue::new();
        for i in 0..64u32 {
            q.push(SimTime(i as u64), i);
        }
        let high_water = q.slab.len();
        for i in 64..100_000u32 {
            q.pop();
            q.push(SimTime(i as u64), i);
        }
        assert_eq!(q.slab.len(), high_water);
        assert_eq!(q.len(), 64);
    }
}
