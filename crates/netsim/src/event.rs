//! The discrete-event engine: a clock plus a total-ordered event queue.
//!
//! `Sim<Ev>` is generic over the event payload so each layer (overlay,
//! workflow engine, experiment harness) can define its own event enum and
//! compose them with `From` impls. Ties in time are broken by insertion
//! sequence number, giving a total, deterministic order.

use crate::rng::Pcg32;
use crate::time::{Duration, SimTime};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

struct Scheduled<Ev> {
    at: SimTime,
    seq: u64,
    ev: Ev,
}

impl<Ev> PartialEq for Scheduled<Ev> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<Ev> Eq for Scheduled<Ev> {}
impl<Ev> PartialOrd for Scheduled<Ev> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<Ev> Ord for Scheduled<Ev> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert for earliest-first order.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A standalone priority queue of timestamped events (earliest first,
/// FIFO among equal timestamps).
pub struct EventQueue<Ev> {
    heap: BinaryHeap<Scheduled<Ev>>,
    next_seq: u64,
}

impl<Ev> Default for EventQueue<Ev> {
    fn default() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }
}

impl<Ev> EventQueue<Ev> {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn push(&mut self, at: SimTime, ev: Ev) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { at, seq, ev });
    }

    pub fn pop(&mut self) -> Option<(SimTime, Ev)> {
        self.heap.pop().map(|s| (s.at, s.ev))
    }

    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|s| s.at)
    }

    pub fn len(&self) -> usize {
        self.heap.len()
    }

    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

/// What an [`EventTap`] decides to do with an event popped from the queue,
/// *before* it reaches the handler.
pub enum Intercept<Ev> {
    /// Deliver this (possibly substituted) event now.
    Deliver(Ev),
    /// Swallow the event entirely: the handler never sees it.
    Drop,
    /// Deliver the first event now and schedule the second `delay` later
    /// (message duplication).
    DeliverAndSchedule(Ev, Duration, Ev),
    /// Do not deliver now; push the event back `delay` into the future
    /// (message delay / reorder).
    Reschedule(Duration, Ev),
}

/// A fault-injection hook threaded through [`Sim::step`]: every event popped
/// from the queue is offered to the tap, which may deliver, drop, duplicate
/// or defer it. Ownership of the event passes through the tap, so `Ev` needs
/// no `Clone` bound — duplication is the tap's job (it must construct the
/// copy itself).
pub trait EventTap<Ev> {
    fn intercept(&mut self, now: SimTime, ev: Ev) -> Intercept<Ev>;
}

/// The simulator: current time, pending events, and a root random stream.
pub struct Sim<Ev> {
    now: SimTime,
    queue: EventQueue<Ev>,
    rng: Pcg32,
    processed: u64,
    /// Optional hard stop; events scheduled later than this are still queued
    /// but `run` will not dispatch past it.
    horizon: Option<SimTime>,
    tap: Option<Box<dyn EventTap<Ev>>>,
}

impl<Ev> Sim<Ev> {
    pub fn new(seed: u64) -> Self {
        Sim {
            now: SimTime::ZERO,
            queue: EventQueue::new(),
            rng: Pcg32::new(seed, 0xCAFE),
            processed: 0,
            horizon: None,
            tap: None,
        }
    }

    /// Install a fault-injection tap (see [`EventTap`]). Replaces any
    /// previous tap.
    pub fn set_tap(&mut self, tap: Box<dyn EventTap<Ev>>) {
        self.tap = Some(tap);
    }

    /// Remove the tap, returning it.
    pub fn take_tap(&mut self) -> Option<Box<dyn EventTap<Ev>>> {
        self.tap.take()
    }

    /// Timestamp of the next pending event, if any (does not advance time).
    pub fn peek_time(&self) -> Option<SimTime> {
        self.queue.peek_time()
    }

    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events dispatched so far.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Root random stream (split it rather than drawing from it directly in
    /// per-entity code).
    pub fn rng(&mut self) -> &mut Pcg32 {
        &mut self.rng
    }

    /// Derive an independent random stream for an entity.
    pub fn stream(&mut self, id: u64) -> Pcg32 {
        self.rng.split(id)
    }

    /// Stop dispatching events after this instant.
    pub fn set_horizon(&mut self, at: SimTime) {
        self.horizon = Some(at);
    }

    /// Schedule an event `delay` after now.
    pub fn schedule(&mut self, delay: Duration, ev: Ev) {
        self.queue.push(self.now + delay, ev);
    }

    /// Schedule an event at an absolute instant (clamped to now if earlier;
    /// the past cannot be revisited).
    pub fn schedule_at(&mut self, at: SimTime, ev: Ev) {
        self.queue.push(at.max(self.now), ev);
    }

    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Pop the next event, advancing the clock. Returns `None` when the
    /// queue is empty or the horizon is reached.
    pub fn step(&mut self) -> Option<Ev> {
        loop {
            let at = self.queue.peek_time()?;
            if let Some(h) = self.horizon {
                if at > h {
                    self.now = h;
                    return None;
                }
            }
            let (at, ev) = self.queue.pop().expect("peeked");
            debug_assert!(at >= self.now, "event queue went backwards");
            self.now = at;
            let ev = if let Some(tap) = self.tap.as_mut() {
                match tap.intercept(at, ev) {
                    Intercept::Deliver(ev) => ev,
                    Intercept::Drop => continue,
                    Intercept::DeliverAndSchedule(ev, delay, copy) => {
                        // A zero delay would still be FIFO-after the original
                        // (insertion seq breaks the tie), so no clamp needed.
                        self.queue.push(self.now + delay, copy);
                        ev
                    }
                    Intercept::Reschedule(delay, ev) => {
                        // Clamp to ≥1µs so a zero-delay defer cannot spin the
                        // loop forever re-popping the same event.
                        self.queue
                            .push(self.now + delay.max(Duration::from_micros(1)), ev);
                        continue;
                    }
                }
            } else {
                ev
            };
            self.processed += 1;
            return Some(ev);
        }
    }

    /// Run to completion (or horizon), dispatching each event to `handler`.
    /// The handler may schedule further events.
    pub fn run(&mut self, mut handler: impl FnMut(&mut Sim<Ev>, Ev)) {
        while let Some(ev) = self.step() {
            handler(self, ev);
        }
    }

    /// Run until the given instant, then stop (events at exactly `until` are
    /// dispatched).
    pub fn run_until(&mut self, until: SimTime, mut handler: impl FnMut(&mut Sim<Ev>, Ev)) {
        loop {
            match self.queue.peek_time() {
                Some(t) if t <= until => {
                    let ev = self.step().expect("peeked");
                    handler(self, ev);
                }
                _ => {
                    self.now = self.now.max(until.min(self.horizon.unwrap_or(until)));
                    break;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_dispatch_in_time_order() {
        let mut sim: Sim<u32> = Sim::new(1);
        sim.schedule(Duration::from_micros(30), 3);
        sim.schedule(Duration::from_micros(10), 1);
        sim.schedule(Duration::from_micros(20), 2);
        let mut seen = vec![];
        sim.run(|s, ev| seen.push((s.now().as_micros(), ev)));
        assert_eq!(seen, vec![(10, 1), (20, 2), (30, 3)]);
    }

    #[test]
    fn ties_break_fifo() {
        let mut sim: Sim<u32> = Sim::new(1);
        for i in 0..5 {
            sim.schedule(Duration::from_micros(7), i);
        }
        let mut seen = vec![];
        sim.run(|_, ev| seen.push(ev));
        assert_eq!(seen, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn handler_can_schedule_more() {
        let mut sim: Sim<u32> = Sim::new(1);
        sim.schedule(Duration::from_micros(1), 0);
        let mut count = 0;
        sim.run(|s, ev| {
            count += 1;
            if ev < 4 {
                s.schedule(Duration::from_micros(1), ev + 1);
            }
        });
        assert_eq!(count, 5);
        assert_eq!(sim.now().as_micros(), 5);
        assert_eq!(sim.processed(), 5);
    }

    #[test]
    fn horizon_stops_dispatch() {
        let mut sim: Sim<u32> = Sim::new(1);
        sim.set_horizon(SimTime(15));
        sim.schedule(Duration::from_micros(10), 1);
        sim.schedule(Duration::from_micros(20), 2);
        let mut seen = vec![];
        sim.run(|_, ev| seen.push(ev));
        assert_eq!(seen, vec![1]);
        assert_eq!(sim.now(), SimTime(15));
    }

    #[test]
    fn run_until_leaves_later_events_queued() {
        let mut sim: Sim<u32> = Sim::new(1);
        sim.schedule(Duration::from_micros(5), 1);
        sim.schedule(Duration::from_micros(50), 2);
        let mut seen = vec![];
        sim.run_until(SimTime(10), |_, ev| seen.push(ev));
        assert_eq!(seen, vec![1]);
        assert_eq!(sim.now(), SimTime(10));
        assert_eq!(sim.pending(), 1);
        sim.run(|_, ev| seen.push(ev));
        assert_eq!(seen, vec![1, 2]);
    }

    struct DropOdd;
    impl EventTap<u32> for DropOdd {
        fn intercept(&mut self, _now: SimTime, ev: u32) -> Intercept<u32> {
            if ev % 2 == 1 {
                Intercept::Drop
            } else {
                Intercept::Deliver(ev)
            }
        }
    }

    #[test]
    fn tap_can_drop_events() {
        let mut sim: Sim<u32> = Sim::new(1);
        sim.set_tap(Box::new(DropOdd));
        for i in 0..6 {
            sim.schedule(Duration::from_micros(i as u64 + 1), i);
        }
        let mut seen = vec![];
        sim.run(|_, ev| seen.push(ev));
        assert_eq!(seen, vec![0, 2, 4]);
        // Dropped events are not counted as processed.
        assert_eq!(sim.processed(), 3);
    }

    struct DupFirst {
        done: bool,
    }
    impl EventTap<u32> for DupFirst {
        fn intercept(&mut self, _now: SimTime, ev: u32) -> Intercept<u32> {
            if !self.done {
                self.done = true;
                Intercept::DeliverAndSchedule(ev, Duration::from_micros(5), ev + 100)
            } else {
                Intercept::Deliver(ev)
            }
        }
    }

    #[test]
    fn tap_can_duplicate_events() {
        let mut sim: Sim<u32> = Sim::new(1);
        sim.set_tap(Box::new(DupFirst { done: false }));
        sim.schedule(Duration::from_micros(1), 7);
        let mut seen = vec![];
        sim.run(|s, ev| seen.push((s.now().as_micros(), ev)));
        assert_eq!(seen, vec![(1, 7), (6, 107)]);
    }

    struct DeferOnce {
        deferred: bool,
    }
    impl EventTap<u32> for DeferOnce {
        fn intercept(&mut self, _now: SimTime, ev: u32) -> Intercept<u32> {
            if !self.deferred {
                self.deferred = true;
                Intercept::Reschedule(Duration::from_micros(10), ev)
            } else {
                Intercept::Deliver(ev)
            }
        }
    }

    #[test]
    fn tap_can_defer_and_reorder_events() {
        let mut sim: Sim<u32> = Sim::new(1);
        sim.set_tap(Box::new(DeferOnce { deferred: false }));
        sim.schedule(Duration::from_micros(1), 1); // deferred to t=11
        sim.schedule(Duration::from_micros(2), 2);
        let mut seen = vec![];
        sim.run(|_, ev| seen.push(ev));
        assert_eq!(seen, vec![2, 1]);
        assert!(sim.take_tap().is_some());
    }

    #[test]
    fn schedule_at_clamps_to_now() {
        let mut sim: Sim<u32> = Sim::new(1);
        sim.schedule(Duration::from_micros(10), 1);
        let mut fired_late = false;
        sim.run(|s, ev| {
            if ev == 1 {
                s.schedule_at(SimTime(3), 2); // in the past: clamps to now=10
            } else {
                fired_late = s.now() >= SimTime(10);
            }
        });
        assert!(fired_late);
    }
}
