//! The discrete-event engine: a clock plus a total-ordered event queue.
//!
//! `Sim<Ev>` is generic over the event payload so each layer (overlay,
//! workflow engine, experiment harness) can define its own event enum and
//! compose them with `From` impls. Ties in time are broken by insertion
//! sequence number, giving a total, deterministic order.
//!
//! The queue itself is a *calendar queue*: an array of time buckets of
//! fixed width, indexed by `(t / width) % nbuckets`, with events stored in
//! an arena slab and buckets holding only `u32` slot indices. For the
//! near-uniform event densities a network simulation produces, push and
//! pop are O(1) amortised versus the binary heap's O(log n) — the
//! difference that makes 10⁵-peer overlay experiments tractable. The pop
//! order is *exactly* the `(timestamp, insertion-seq)` total order of the
//! old heap, so every seeded experiment remains byte-identical.

use crate::rng::Pcg32;
use crate::time::{Duration, SimTime};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

struct Scheduled<Ev> {
    at: SimTime,
    seq: u64,
    ev: Ev,
}

impl<Ev> PartialEq for Scheduled<Ev> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<Ev> Eq for Scheduled<Ev> {}
impl<Ev> PartialOrd for Scheduled<Ev> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<Ev> Ord for Scheduled<Ev> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert for earliest-first order.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// The pre-refactor binary-heap event queue, kept as the reference
/// implementation: the calendar queue must agree with it event-for-event
/// (see the differential tests below), and the perf harness benches both
/// so BENCH_PERF.json keeps the heap number for the trajectory.
pub struct BinaryHeapQueue<Ev> {
    heap: BinaryHeap<Scheduled<Ev>>,
    next_seq: u64,
}

impl<Ev> Default for BinaryHeapQueue<Ev> {
    fn default() -> Self {
        BinaryHeapQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }
}

impl<Ev> BinaryHeapQueue<Ev> {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn push(&mut self, at: SimTime, ev: Ev) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { at, seq, ev });
    }

    pub fn pop(&mut self) -> Option<(SimTime, Ev)> {
        self.heap.pop().map(|s| (s.at, s.ev))
    }

    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|s| s.at)
    }

    pub fn len(&self) -> usize {
        self.heap.len()
    }

    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

/// Minimum and maximum bucket-array sizes. The array is always a power of
/// two so the `% nbuckets` in the index computation compiles to a mask.
const MIN_BUCKETS: usize = 16;

/// Capacity seeded into a bucket on first use (see `push`). At the tuned
/// ~2-entry average occupancy, the chance of any bucket ever exceeding
/// this is negligible (Poisson tail ~1e-17 per fill), so steady-state
/// churn never grows a bucket; the cost is bounded at 24 entries per
/// *touched* bucket.
const BUCKET_RESERVE: usize = 24;

const MAX_BUCKETS: usize = 1 << 20;

/// A bucket entry carries its sort key inline so ordering decisions
/// (binary search on push, window checks on pop) never touch the payload
/// slab — the slab is read exactly once per event, when it pops.
#[derive(Clone, Copy)]
struct Entry {
    at: u64,
    seq: u64,
    idx: u32,
}

impl Entry {
    #[inline]
    fn key(self) -> (u64, u64) {
        (self.at, self.seq)
    }
}

/// Sentinel for "no slot" in the intrusive free chain.
const NO_SLOT: u32 = u32::MAX;

impl Entry {
    /// Sentinel meaning "queue empty" for the cached minimum: the
    /// maximal key, so any real entry's key compares below it.
    const NONE: Entry = Entry {
        at: u64::MAX,
        seq: u64::MAX,
        idx: NO_SLOT,
    };
}

/// One payload arena slot: a live event, or — while free — the index of
/// the next free slot. Which variant is live is tracked structurally (see
/// the safety invariants on [`EventQueue`]), never read blind.
union Slot<Ev> {
    payload: std::mem::ManuallyDrop<Ev>,
    link: u32,
}

/// A standalone priority queue of timestamped events (earliest first,
/// FIFO among equal timestamps), implemented as a calendar queue over an
/// arena-backed payload slab.
///
/// Hot-path layout (see DESIGN.md "Hot-path memory layout"):
/// - The bucket width is always a power of two, stored as `shift`, so the
///   bucket index is a shift+mask instead of a 64-bit division (the
///   division cost three ~25-cycle `div`s per event in the previous
///   layout — push, pop, and the next-min scan each paid one).
/// - Buckets hold `Entry { at, seq, idx }` with the key inline; the
///   payload slab is only dereferenced on pop, exactly once per event.
/// - The cached global minimum stores the full entry, making `peek_time`
///   a field read.
///
/// At steady state (stable population, no resizes) push and pop allocate
/// nothing: slots recycle through `free` and bucket vectors keep their
/// capacity.
///
/// # Safety invariants
///
/// The `unsafe` in push/pop rests on two structural invariants:
/// 1. `buckets.len()` is always a power of two, so any index masked with
///    `buckets.len() - 1` is in bounds.
/// 2. Every slot index `0..slab.len()` is at all times either *live*
///    (appears in exactly one bucket entry; the slot holds an initialised
///    payload) or *free* (reachable from `free_head` through the
///    intrusive link chain; the slot holds a link). Pop moves the payload
///    out and overwrites the slot with a link; push overwrites the link
///    with a fresh payload before the index re-enters any bucket.
pub struct EventQueue<Ev> {
    /// Arena of event payloads, occupancy governed by invariant 2. Free
    /// slots double as the free list's links, so recycling a slot touches
    /// only memory the push/pop already touches for the payload itself.
    slab: Vec<Slot<Ev>>,
    /// Head of the intrusive free-slot chain (`NO_SLOT` when empty).
    free_head: u32,
    /// `buckets[i]` holds entries with `(at >> shift) % nbuckets == i`,
    /// sorted *descending* by `(at, seq)` so the minimum pops from the end.
    buckets: Vec<Vec<Entry>>,
    /// log2 of the bucket width in microseconds (width = `1 << shift`).
    shift: u32,
    /// Cached `buckets.len() - 1` (invariant 1 makes this a valid mask).
    mask: usize,
    /// Cached `(1 << shift) - 1`: masks a timestamp to its window offset.
    tmask: u64,
    /// Cached global minimum entry (`Entry::NONE` when empty), kept
    /// current on every push/pop so `peek_time` is O(1) and `&self`.
    next: Entry,
    len: usize,
    next_seq: u64,
}

impl<Ev> Default for EventQueue<Ev> {
    fn default() -> Self {
        EventQueue {
            slab: Vec::new(),
            free_head: NO_SLOT,
            buckets: (0..MIN_BUCKETS).map(|_| Vec::new()).collect(),
            shift: 10,
            mask: MIN_BUCKETS - 1,
            tmask: (1 << 10) - 1,
            next: Entry::NONE,
            len: 0,
            next_seq: 0,
        }
    }
}

impl<Ev> Drop for EventQueue<Ev> {
    fn drop(&mut self) {
        // Slab slots are unions, so live payloads must be dropped by
        // hand: the bucket entries are the authoritative occupancy map.
        for bucket in &self.buckets {
            for ent in bucket {
                // SAFETY: every bucket entry indexes a live slab slot
                // (invariant 2), each exactly once.
                unsafe { std::mem::ManuallyDrop::drop(&mut self.slab[ent.idx as usize].payload) };
            }
        }
    }
}

impl<Ev> EventQueue<Ev> {
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    fn bucket_of(&self, at: u64) -> usize {
        ((at >> self.shift) as usize) & self.mask
    }

    #[inline]
    pub fn push(&mut self, at: SimTime, ev: Ev) {
        let seq = self.next_seq;
        self.next_seq += 1;
        let idx = if self.free_head != NO_SLOT {
            let i = self.free_head;
            // SAFETY: the free chain only ever holds indices < slab.len(),
            // and a free slot holds a link (invariant 2). Assigning the
            // payload field drops nothing (`ManuallyDrop`).
            let slot = unsafe { self.slab.get_unchecked_mut(i as usize) };
            self.free_head = unsafe { slot.link };
            slot.payload = std::mem::ManuallyDrop::new(ev);
            i
        } else {
            let i = self.slab.len() as u32;
            self.slab.push(Slot {
                payload: std::mem::ManuallyDrop::new(ev),
            });
            i
        };
        let ent = Entry { at: at.0, seq, idx };
        self.len += 1;
        // Keep the bucket sorted descending by (at, seq). Buckets average
        // O(1) entries when the width is tuned, so a shift-down scan from
        // the tail beats a binary search's setup cost.
        let b = self.bucket_of(ent.at);
        // SAFETY: `b` is masked with `buckets.len() - 1` and the length is
        // a power of two (invariant 1).
        let bucket = unsafe { self.buckets.get_unchecked_mut(b) };
        // First touch after (re)sizing seeds enough capacity that later
        // occupancy records cannot force a mid-run grow: with tuned widths
        // a bucket averages ~2 entries, and a Poisson tail past this
        // reserve is vanishingly rare — so the steady-state pop/push loop
        // performs no allocation at all (the perf harness gates on this).
        // The grow check, shift-down and insert are fused so the entry is
        // written exactly once (`Vec::push` followed by a shift would
        // write it twice and re-check capacity).
        unsafe {
            let n = bucket.len();
            if n == bucket.capacity() {
                bucket.reserve(if n == 0 { BUCKET_RESERVE } else { n });
            }
            // SAFETY: capacity > n after the reserve; `i` walks `n..=0`,
            // every write lands in `0..=n`, and `set_len(n + 1)` only
            // exposes slots that were just initialised.
            let p = bucket.as_mut_ptr();
            let mut i = n;
            while i > 0 && (*p.add(i - 1)).key() < ent.key() {
                *p.add(i) = *p.add(i - 1);
                i -= 1;
            }
            *p.add(i) = ent;
            bucket.set_len(n + 1);
        }
        if ent.key() < self.next.key() {
            self.next = ent;
        }
        if self.len > self.buckets.len() * 2 && self.buckets.len() < MAX_BUCKETS {
            self.resize();
        }
    }

    #[inline]
    pub fn pop(&mut self) -> Option<(SimTime, Ev)> {
        let ent = self.next;
        if ent.idx == NO_SLOT {
            return None;
        }
        let b = self.bucket_of(ent.at);
        // SAFETY: masked index, power-of-two length (invariant 1); the
        // cached min's bucket cannot be empty (it contains the min), so
        // the tail removal cannot underflow, and `Entry` is `Copy`, so
        // shrinking via `set_len` leaks nothing.
        let tail = unsafe {
            let bucket = self.buckets.get_unchecked_mut(b);
            let newlen = bucket.len() - 1;
            debug_assert_eq!(
                bucket.get_unchecked(newlen).idx,
                ent.idx,
                "cached min must be its bucket's tail"
            );
            bucket.set_len(newlen);
            // The bucket's new tail: in the dense steady state it is the
            // global minimum (fast path below).
            if newlen > 0 {
                Some(*bucket.get_unchecked(newlen - 1))
            } else {
                None
            }
        };
        // SAFETY: the cached min is a live entry (invariant 2), so the
        // slot is in bounds and initialised; the slot is then retired
        // onto the free chain until the next push re-fills it.
        let ev = unsafe {
            let slot = self.slab.get_unchecked_mut(ent.idx as usize);
            let ev = std::mem::ManuallyDrop::take(&mut slot.payload);
            slot.link = self.free_head;
            ev
        };
        self.free_head = ent.idx;
        self.len -= 1;
        if self.len * 4 < self.buckets.len() && self.buckets.len() > MIN_BUCKETS {
            self.resize();
        } else {
            // Fast path: the popped bucket's new tail is still inside the
            // current window, so it is the global minimum and no calendar
            // scan is needed.
            let window_end = (ent.at | self.tmask) + 1;
            self.next = match tail {
                Some(tail) if tail.at < window_end => tail,
                // The popped bucket is already known to hold nothing in
                // the current window, so the scan starts at its successor.
                _ => self.find_next_after(b, window_end),
            };
        }
        Some((SimTime(ent.at), ev))
    }

    pub fn peek_time(&self) -> Option<SimTime> {
        if self.next.idx == NO_SLOT {
            None
        } else {
            Some(SimTime(self.next.at))
        }
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Find the minimum entry, scanning buckets calendar-style from the
    /// successor of bucket `after` (whose window `pop` has already ruled
    /// out; pops are monotone, so nothing earlier can exist). Each
    /// bucket's tail is its minimum; a tail belongs to the current "year"
    /// iff its timestamp falls before the bucket's current window end.
    /// One full empty lap falls back to a direct min scan.
    fn find_next_after(&self, after: usize, mut window_end: u64) -> Entry {
        if self.len == 0 {
            return Entry::NONE;
        }
        let n = self.buckets.len();
        let width = self.tmask + 1;
        let mut i = (after + 1) & self.mask;
        for _ in 1..n {
            window_end += width;
            if let Some(&tail) = self.buckets[i].last() {
                if tail.at < window_end {
                    return tail;
                }
            }
            i = (i + 1) & self.mask;
        }
        // Sparse year: jump straight to the global minimum.
        self.buckets
            .iter()
            .filter_map(|b| b.last().copied())
            .min_by_key(|e| e.key())
            .unwrap_or(Entry::NONE)
    }

    /// Rebuild the bucket array for the current population: nbuckets is
    /// the next power of two ≥ len (clamped), width the live event span
    /// divided by the population, rounded up to a power of two and then
    /// doubled (slightly-too-wide buckets measure faster than
    /// slightly-too-narrow: a ~2-entry bucket costs one extra compare on
    /// push, while an empty bucket costs a whole extra scan step on pop).
    /// Both depend only on queue contents, so resizing is deterministic.
    fn resize(&mut self) {
        let mut live: Vec<Entry> = self.buckets.iter().flatten().copied().collect();
        live.sort_unstable_by_key(|e| e.key());
        let nbuckets = live
            .len()
            .next_power_of_two()
            .clamp(MIN_BUCKETS, MAX_BUCKETS);
        let (lo, hi) = match (live.first(), live.last()) {
            (Some(f), Some(l)) => (f.at, l.at),
            _ => (0, 0),
        };
        let width = ((hi - lo) / (live.len().max(1) as u64))
            .max(1)
            .next_power_of_two()
            << 1;
        self.shift = width.trailing_zeros();
        self.tmask = width - 1;
        self.mask = nbuckets - 1;
        self.buckets = (0..nbuckets).map(|_| Vec::new()).collect();
        // Ascending insertion order makes every bucket sorted ascending;
        // reverse each so the minimum sits at the tail. Buckets get the
        // same first-touch reserve as `push`, so post-resize occupancy
        // records cannot creep capacities up through repeated doublings.
        for &ent in &live {
            let b = self.bucket_of(ent.at);
            let bucket = &mut self.buckets[b];
            if bucket.capacity() == 0 {
                bucket.reserve(BUCKET_RESERVE);
            }
            bucket.push(ent);
        }
        for b in &mut self.buckets {
            b.reverse();
        }
        self.next = live.first().copied().unwrap_or(Entry::NONE);
    }
}

/// What an [`EventTap`] decides to do with an event popped from the queue,
/// *before* it reaches the handler.
pub enum Intercept<Ev> {
    /// Deliver this (possibly substituted) event now.
    Deliver(Ev),
    /// Swallow the event entirely: the handler never sees it.
    Drop,
    /// Deliver the first event now and schedule the second `delay` later
    /// (message duplication).
    DeliverAndSchedule(Ev, Duration, Ev),
    /// Do not deliver now; push the event back `delay` into the future
    /// (message delay / reorder).
    Reschedule(Duration, Ev),
}

/// A fault-injection hook threaded through [`Sim::step`]: every event popped
/// from the queue is offered to the tap, which may deliver, drop, duplicate
/// or defer it. Ownership of the event passes through the tap, so `Ev` needs
/// no `Clone` bound — duplication is the tap's job (it must construct the
/// copy itself).
pub trait EventTap<Ev> {
    fn intercept(&mut self, now: SimTime, ev: Ev) -> Intercept<Ev>;
}

/// The simulator: current time, pending events, and a root random stream.
pub struct Sim<Ev> {
    now: SimTime,
    queue: EventQueue<Ev>,
    rng: Pcg32,
    processed: u64,
    /// Optional hard stop; events scheduled later than this are still queued
    /// but `run` will not dispatch past it.
    horizon: Option<SimTime>,
    tap: Option<Box<dyn EventTap<Ev>>>,
}

impl<Ev> Sim<Ev> {
    pub fn new(seed: u64) -> Self {
        Sim {
            now: SimTime::ZERO,
            queue: EventQueue::new(),
            rng: Pcg32::new(seed, 0xCAFE),
            processed: 0,
            horizon: None,
            tap: None,
        }
    }

    /// Install a fault-injection tap (see [`EventTap`]). Replaces any
    /// previous tap.
    pub fn set_tap(&mut self, tap: Box<dyn EventTap<Ev>>) {
        self.tap = Some(tap);
    }

    /// Remove the tap, returning it.
    pub fn take_tap(&mut self) -> Option<Box<dyn EventTap<Ev>>> {
        self.tap.take()
    }

    /// Timestamp of the next pending event, if any (does not advance time).
    pub fn peek_time(&self) -> Option<SimTime> {
        self.queue.peek_time()
    }

    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events dispatched so far.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Root random stream (split it rather than drawing from it directly in
    /// per-entity code).
    pub fn rng(&mut self) -> &mut Pcg32 {
        &mut self.rng
    }

    /// Derive an independent random stream for an entity.
    pub fn stream(&mut self, id: u64) -> Pcg32 {
        self.rng.split(id)
    }

    /// Stop dispatching events after this instant.
    pub fn set_horizon(&mut self, at: SimTime) {
        self.horizon = Some(at);
    }

    /// Schedule an event `delay` after now.
    pub fn schedule(&mut self, delay: Duration, ev: Ev) {
        self.queue.push(self.now + delay, ev);
    }

    /// Schedule an event at an absolute instant (clamped to now if earlier;
    /// the past cannot be revisited).
    pub fn schedule_at(&mut self, at: SimTime, ev: Ev) {
        self.queue.push(at.max(self.now), ev);
    }

    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Pop the next event, advancing the clock. Returns `None` when the
    /// queue is empty or the horizon is reached.
    pub fn step(&mut self) -> Option<Ev> {
        loop {
            let at = self.queue.peek_time()?;
            if let Some(h) = self.horizon {
                if at > h {
                    self.now = h;
                    return None;
                }
            }
            let (at, ev) = self.queue.pop().expect("peeked");
            debug_assert!(at >= self.now, "event queue went backwards");
            self.now = at;
            let ev = if let Some(tap) = self.tap.as_mut() {
                match tap.intercept(at, ev) {
                    Intercept::Deliver(ev) => ev,
                    Intercept::Drop => continue,
                    Intercept::DeliverAndSchedule(ev, delay, copy) => {
                        // A zero delay would still be FIFO-after the original
                        // (insertion seq breaks the tie), so no clamp needed.
                        self.queue.push(self.now + delay, copy);
                        ev
                    }
                    Intercept::Reschedule(delay, ev) => {
                        // Clamp to ≥1µs so a zero-delay defer cannot spin the
                        // loop forever re-popping the same event.
                        self.queue
                            .push(self.now + delay.max(Duration::from_micros(1)), ev);
                        continue;
                    }
                }
            } else {
                ev
            };
            self.processed += 1;
            return Some(ev);
        }
    }

    /// Run to completion (or horizon), dispatching each event to `handler`.
    /// The handler may schedule further events.
    pub fn run(&mut self, mut handler: impl FnMut(&mut Sim<Ev>, Ev)) {
        while let Some(ev) = self.step() {
            handler(self, ev);
        }
    }

    /// Run until the given instant, then stop (events at exactly `until` are
    /// dispatched).
    pub fn run_until(&mut self, until: SimTime, mut handler: impl FnMut(&mut Sim<Ev>, Ev)) {
        loop {
            match self.queue.peek_time() {
                Some(t) if t <= until => {
                    let ev = self.step().expect("peeked");
                    handler(self, ev);
                }
                _ => {
                    self.now = self.now.max(until.min(self.horizon.unwrap_or(until)));
                    break;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_dispatch_in_time_order() {
        let mut sim: Sim<u32> = Sim::new(1);
        sim.schedule(Duration::from_micros(30), 3);
        sim.schedule(Duration::from_micros(10), 1);
        sim.schedule(Duration::from_micros(20), 2);
        let mut seen = vec![];
        sim.run(|s, ev| seen.push((s.now().as_micros(), ev)));
        assert_eq!(seen, vec![(10, 1), (20, 2), (30, 3)]);
    }

    #[test]
    fn ties_break_fifo() {
        let mut sim: Sim<u32> = Sim::new(1);
        for i in 0..5 {
            sim.schedule(Duration::from_micros(7), i);
        }
        let mut seen = vec![];
        sim.run(|_, ev| seen.push(ev));
        assert_eq!(seen, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn handler_can_schedule_more() {
        let mut sim: Sim<u32> = Sim::new(1);
        sim.schedule(Duration::from_micros(1), 0);
        let mut count = 0;
        sim.run(|s, ev| {
            count += 1;
            if ev < 4 {
                s.schedule(Duration::from_micros(1), ev + 1);
            }
        });
        assert_eq!(count, 5);
        assert_eq!(sim.now().as_micros(), 5);
        assert_eq!(sim.processed(), 5);
    }

    #[test]
    fn horizon_stops_dispatch() {
        let mut sim: Sim<u32> = Sim::new(1);
        sim.set_horizon(SimTime(15));
        sim.schedule(Duration::from_micros(10), 1);
        sim.schedule(Duration::from_micros(20), 2);
        let mut seen = vec![];
        sim.run(|_, ev| seen.push(ev));
        assert_eq!(seen, vec![1]);
        assert_eq!(sim.now(), SimTime(15));
    }

    #[test]
    fn run_until_leaves_later_events_queued() {
        let mut sim: Sim<u32> = Sim::new(1);
        sim.schedule(Duration::from_micros(5), 1);
        sim.schedule(Duration::from_micros(50), 2);
        let mut seen = vec![];
        sim.run_until(SimTime(10), |_, ev| seen.push(ev));
        assert_eq!(seen, vec![1]);
        assert_eq!(sim.now(), SimTime(10));
        assert_eq!(sim.pending(), 1);
        sim.run(|_, ev| seen.push(ev));
        assert_eq!(seen, vec![1, 2]);
    }

    struct DropOdd;
    impl EventTap<u32> for DropOdd {
        fn intercept(&mut self, _now: SimTime, ev: u32) -> Intercept<u32> {
            if ev % 2 == 1 {
                Intercept::Drop
            } else {
                Intercept::Deliver(ev)
            }
        }
    }

    #[test]
    fn tap_can_drop_events() {
        let mut sim: Sim<u32> = Sim::new(1);
        sim.set_tap(Box::new(DropOdd));
        for i in 0..6 {
            sim.schedule(Duration::from_micros(i as u64 + 1), i);
        }
        let mut seen = vec![];
        sim.run(|_, ev| seen.push(ev));
        assert_eq!(seen, vec![0, 2, 4]);
        // Dropped events are not counted as processed.
        assert_eq!(sim.processed(), 3);
    }

    struct DupFirst {
        done: bool,
    }
    impl EventTap<u32> for DupFirst {
        fn intercept(&mut self, _now: SimTime, ev: u32) -> Intercept<u32> {
            if !self.done {
                self.done = true;
                Intercept::DeliverAndSchedule(ev, Duration::from_micros(5), ev + 100)
            } else {
                Intercept::Deliver(ev)
            }
        }
    }

    #[test]
    fn tap_can_duplicate_events() {
        let mut sim: Sim<u32> = Sim::new(1);
        sim.set_tap(Box::new(DupFirst { done: false }));
        sim.schedule(Duration::from_micros(1), 7);
        let mut seen = vec![];
        sim.run(|s, ev| seen.push((s.now().as_micros(), ev)));
        assert_eq!(seen, vec![(1, 7), (6, 107)]);
    }

    struct DeferOnce {
        deferred: bool,
    }
    impl EventTap<u32> for DeferOnce {
        fn intercept(&mut self, _now: SimTime, ev: u32) -> Intercept<u32> {
            if !self.deferred {
                self.deferred = true;
                Intercept::Reschedule(Duration::from_micros(10), ev)
            } else {
                Intercept::Deliver(ev)
            }
        }
    }

    #[test]
    fn tap_can_defer_and_reorder_events() {
        let mut sim: Sim<u32> = Sim::new(1);
        sim.set_tap(Box::new(DeferOnce { deferred: false }));
        sim.schedule(Duration::from_micros(1), 1); // deferred to t=11
        sim.schedule(Duration::from_micros(2), 2);
        let mut seen = vec![];
        sim.run(|_, ev| seen.push(ev));
        assert_eq!(seen, vec![2, 1]);
        assert!(sim.take_tap().is_some());
    }

    #[test]
    fn schedule_at_clamps_to_now() {
        let mut sim: Sim<u32> = Sim::new(1);
        sim.schedule(Duration::from_micros(10), 1);
        let mut fired_late = false;
        sim.run(|s, ev| {
            if ev == 1 {
                s.schedule_at(SimTime(3), 2); // in the past: clamps to now=10
            } else {
                fired_late = s.now() >= SimTime(10);
            }
        });
        assert!(fired_late);
    }

    /// Drive the calendar queue and the reference heap through an identical
    /// seeded push/pop schedule and demand event-for-event agreement. This
    /// is the determinism contract: swapping the queue implementation must
    /// not reorder any experiment.
    #[test]
    fn calendar_queue_matches_heap_differentially() {
        for seed in 0..8u64 {
            let mut rng = Pcg32::new(seed, 0xBEEF);
            let mut cal: EventQueue<u64> = EventQueue::new();
            let mut heap: BinaryHeapQueue<u64> = BinaryHeapQueue::new();
            let mut clock: u64 = 0;
            let mut tag: u64 = 0;
            for round in 0..2_000 {
                let burst = rng.below(4) + 1;
                for _ in 0..burst {
                    // Mix dense near-future with sparse far-future events,
                    // plus exact ties to exercise FIFO ordering.
                    let dt = match rng.below(10) {
                        0 => 0,
                        1..=6 => rng.below(50),
                        7 | 8 => rng.below(5_000),
                        _ => rng.below(1_000_000),
                    };
                    let at = SimTime(clock + dt);
                    cal.push(at, tag);
                    heap.push(at, tag);
                    tag += 1;
                }
                let pops = if round % 7 == 0 { burst + 2 } else { burst };
                for _ in 0..pops {
                    let a = cal.pop();
                    let b = heap.pop();
                    assert_eq!(a, b, "divergence at seed {seed} round {round}");
                    if let Some((t, _)) = a {
                        clock = t.0;
                    }
                }
                assert_eq!(cal.len(), heap.len());
                assert_eq!(cal.peek_time(), heap.peek_time());
            }
            while let Some(a) = cal.pop() {
                assert_eq!(Some(a), heap.pop());
            }
            assert!(heap.pop().is_none());
        }
    }

    /// Same-timestamp floods (the clique-broadcast pattern) must stay FIFO
    /// through grow/shrink resizes.
    #[test]
    fn calendar_queue_fifo_through_resize() {
        let mut q: EventQueue<u32> = EventQueue::new();
        for i in 0..10_000u32 {
            q.push(SimTime(42), i);
        }
        for i in 0..10_000u32 {
            let (t, ev) = q.pop().expect("still full");
            assert_eq!((t, ev), (SimTime(42), i));
        }
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
    }

    /// Widely-spaced events (sparse years) must still pop in order: the
    /// full-lap fallback to a direct minimum scan.
    #[test]
    fn calendar_queue_handles_sparse_far_future() {
        let mut q: EventQueue<u32> = EventQueue::new();
        q.push(SimTime(5), 1);
        q.push(SimTime(10_000_000_000), 3);
        q.push(SimTime(7_000_000), 2);
        assert_eq!(q.pop(), Some((SimTime(5), 1)));
        assert_eq!(q.pop(), Some((SimTime(7_000_000), 2)));
        q.push(SimTime(8_000_000), 10);
        assert_eq!(q.pop(), Some((SimTime(8_000_000), 10)));
        assert_eq!(q.pop(), Some((SimTime(10_000_000_000), 3)));
        assert_eq!(q.pop(), None);
    }

    /// The arena must recycle slots: interleaved push/pop at steady state
    /// keeps the slab at the high-water mark instead of growing forever.
    #[test]
    fn calendar_queue_arena_reuses_slots() {
        let mut q: EventQueue<u32> = EventQueue::new();
        for i in 0..64u32 {
            q.push(SimTime(i as u64), i);
        }
        let high_water = q.slab.len();
        for i in 64..100_000u32 {
            q.pop();
            q.push(SimTime(i as u64), i);
        }
        assert_eq!(q.slab.len(), high_water);
        assert_eq!(q.len(), 64);
    }
}
