//! The discrete-event engine: a clock plus a total-ordered event queue.
//!
//! `Sim<Ev>` is generic over the event payload so each layer (overlay,
//! workflow engine, experiment harness) can define its own event enum and
//! compose them with `From` impls. Ties in time are broken by insertion
//! sequence number, giving a total, deterministic order.

use crate::rng::Pcg32;
use crate::time::{Duration, SimTime};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

struct Scheduled<Ev> {
    at: SimTime,
    seq: u64,
    ev: Ev,
}

impl<Ev> PartialEq for Scheduled<Ev> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<Ev> Eq for Scheduled<Ev> {}
impl<Ev> PartialOrd for Scheduled<Ev> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<Ev> Ord for Scheduled<Ev> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert for earliest-first order.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A standalone priority queue of timestamped events (earliest first,
/// FIFO among equal timestamps).
pub struct EventQueue<Ev> {
    heap: BinaryHeap<Scheduled<Ev>>,
    next_seq: u64,
}

impl<Ev> Default for EventQueue<Ev> {
    fn default() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }
}

impl<Ev> EventQueue<Ev> {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn push(&mut self, at: SimTime, ev: Ev) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { at, seq, ev });
    }

    pub fn pop(&mut self) -> Option<(SimTime, Ev)> {
        self.heap.pop().map(|s| (s.at, s.ev))
    }

    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|s| s.at)
    }

    pub fn len(&self) -> usize {
        self.heap.len()
    }

    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

/// The simulator: current time, pending events, and a root random stream.
pub struct Sim<Ev> {
    now: SimTime,
    queue: EventQueue<Ev>,
    rng: Pcg32,
    processed: u64,
    /// Optional hard stop; events scheduled later than this are still queued
    /// but `run` will not dispatch past it.
    horizon: Option<SimTime>,
}

impl<Ev> Sim<Ev> {
    pub fn new(seed: u64) -> Self {
        Sim {
            now: SimTime::ZERO,
            queue: EventQueue::new(),
            rng: Pcg32::new(seed, 0xCAFE),
            processed: 0,
            horizon: None,
        }
    }

    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events dispatched so far.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Root random stream (split it rather than drawing from it directly in
    /// per-entity code).
    pub fn rng(&mut self) -> &mut Pcg32 {
        &mut self.rng
    }

    /// Derive an independent random stream for an entity.
    pub fn stream(&mut self, id: u64) -> Pcg32 {
        self.rng.split(id)
    }

    /// Stop dispatching events after this instant.
    pub fn set_horizon(&mut self, at: SimTime) {
        self.horizon = Some(at);
    }

    /// Schedule an event `delay` after now.
    pub fn schedule(&mut self, delay: Duration, ev: Ev) {
        self.queue.push(self.now + delay, ev);
    }

    /// Schedule an event at an absolute instant (clamped to now if earlier;
    /// the past cannot be revisited).
    pub fn schedule_at(&mut self, at: SimTime, ev: Ev) {
        self.queue.push(at.max(self.now), ev);
    }

    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Pop the next event, advancing the clock. Returns `None` when the
    /// queue is empty or the horizon is reached.
    pub fn step(&mut self) -> Option<Ev> {
        let at = self.queue.peek_time()?;
        if let Some(h) = self.horizon {
            if at > h {
                self.now = h;
                return None;
            }
        }
        let (at, ev) = self.queue.pop().expect("peeked");
        debug_assert!(at >= self.now, "event queue went backwards");
        self.now = at;
        self.processed += 1;
        Some(ev)
    }

    /// Run to completion (or horizon), dispatching each event to `handler`.
    /// The handler may schedule further events.
    pub fn run(&mut self, mut handler: impl FnMut(&mut Sim<Ev>, Ev)) {
        while let Some(ev) = self.step() {
            handler(self, ev);
        }
    }

    /// Run until the given instant, then stop (events at exactly `until` are
    /// dispatched).
    pub fn run_until(&mut self, until: SimTime, mut handler: impl FnMut(&mut Sim<Ev>, Ev)) {
        loop {
            match self.queue.peek_time() {
                Some(t) if t <= until => {
                    let ev = self.step().expect("peeked");
                    handler(self, ev);
                }
                _ => {
                    self.now = self.now.max(until.min(self.horizon.unwrap_or(until)));
                    break;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_dispatch_in_time_order() {
        let mut sim: Sim<u32> = Sim::new(1);
        sim.schedule(Duration::from_micros(30), 3);
        sim.schedule(Duration::from_micros(10), 1);
        sim.schedule(Duration::from_micros(20), 2);
        let mut seen = vec![];
        sim.run(|s, ev| seen.push((s.now().as_micros(), ev)));
        assert_eq!(seen, vec![(10, 1), (20, 2), (30, 3)]);
    }

    #[test]
    fn ties_break_fifo() {
        let mut sim: Sim<u32> = Sim::new(1);
        for i in 0..5 {
            sim.schedule(Duration::from_micros(7), i);
        }
        let mut seen = vec![];
        sim.run(|_, ev| seen.push(ev));
        assert_eq!(seen, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn handler_can_schedule_more() {
        let mut sim: Sim<u32> = Sim::new(1);
        sim.schedule(Duration::from_micros(1), 0);
        let mut count = 0;
        sim.run(|s, ev| {
            count += 1;
            if ev < 4 {
                s.schedule(Duration::from_micros(1), ev + 1);
            }
        });
        assert_eq!(count, 5);
        assert_eq!(sim.now().as_micros(), 5);
        assert_eq!(sim.processed(), 5);
    }

    #[test]
    fn horizon_stops_dispatch() {
        let mut sim: Sim<u32> = Sim::new(1);
        sim.set_horizon(SimTime(15));
        sim.schedule(Duration::from_micros(10), 1);
        sim.schedule(Duration::from_micros(20), 2);
        let mut seen = vec![];
        sim.run(|_, ev| seen.push(ev));
        assert_eq!(seen, vec![1]);
        assert_eq!(sim.now(), SimTime(15));
    }

    #[test]
    fn run_until_leaves_later_events_queued() {
        let mut sim: Sim<u32> = Sim::new(1);
        sim.schedule(Duration::from_micros(5), 1);
        sim.schedule(Duration::from_micros(50), 2);
        let mut seen = vec![];
        sim.run_until(SimTime(10), |_, ev| seen.push(ev));
        assert_eq!(seen, vec![1]);
        assert_eq!(sim.now(), SimTime(10));
        assert_eq!(sim.pending(), 1);
        sim.run(|_, ev| seen.push(ev));
        assert_eq!(seen, vec![1, 2]);
    }

    #[test]
    fn schedule_at_clamps_to_now() {
        let mut sim: Sim<u32> = Sim::new(1);
        sim.schedule(Duration::from_micros(10), 1);
        let mut fired_late = false;
        sim.run(|s, ev| {
            if ev == 1 {
                s.schedule_at(SimTime(3), 2); // in the past: clamps to now=10
            } else {
                fired_late = s.now() >= SimTime(10);
            }
        });
        assert!(fired_late);
    }
}
