//! Deterministic random streams.
//!
//! Every stochastic process in the simulator (churn, link jitter, workload
//! generation, overlay wiring) draws from an explicitly seeded [`Pcg32`]
//! stream. PCG32 is implemented here rather than taken from `rand` so that
//! the bit-stream is pinned by this crate and can never drift across `rand`
//! releases; `rand::RngCore` is implemented on top so `rand` distributions
//! still work.

use rand::RngCore;

const MULT: u64 = 6364136223846793005;

/// A PCG-XSH-RR 64/32 generator: 64-bit state, 32-bit output, with an odd
/// stream increment allowing many independent streams from one seed.
#[derive(Clone, Debug)]
pub struct Pcg32 {
    state: u64,
    inc: u64,
}

impl Pcg32 {
    /// Create a generator from a seed and a stream id. Distinct stream ids
    /// yield statistically independent sequences for the same seed.
    pub fn new(seed: u64, stream: u64) -> Self {
        let mut rng = Pcg32 {
            state: 0,
            inc: (stream << 1) | 1,
        };
        rng.next_u32();
        rng.state = rng.state.wrapping_add(seed);
        rng.next_u32();
        rng
    }

    /// Derive a child stream; used to give each host / process its own
    /// independent randomness so adding a host never perturbs another's draws.
    pub fn split(&mut self, stream: u64) -> Pcg32 {
        let seed = self.next_u64();
        Pcg32::new(seed, stream)
    }

    pub fn next_u32(&mut self) -> u32 {
        let old = self.state;
        self.state = old.wrapping_mul(MULT).wrapping_add(self.inc);
        let xorshifted = (((old >> 18) ^ old) >> 27) as u32;
        let rot = (old >> 59) as u32;
        xorshifted.rotate_right(rot)
    }

    pub fn next_u64(&mut self) -> u64 {
        (self.next_u32() as u64) << 32 | self.next_u32() as u64
    }

    /// Uniform in [0, 1).
    pub fn uniform(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in [lo, hi).
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.uniform()
    }

    /// Uniform integer in [0, n). Uses Lemire's multiply-shift rejection for
    /// unbiased results.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "Pcg32::below(0)");
        loop {
            let x = self.next_u64();
            let (hi, lo) = {
                let m = (x as u128) * (n as u128);
                ((m >> 64) as u64, m as u64)
            };
            if lo >= n || lo >= n.wrapping_neg() % n {
                return hi;
            }
        }
    }

    /// Exponential variate with the given mean (inverse-CDF method).
    pub fn exp(&mut self, mean: f64) -> f64 {
        debug_assert!(mean > 0.0);
        let u = 1.0 - self.uniform(); // in (0, 1]
        -mean * u.ln()
    }

    /// Standard normal variate (Box–Muller; one value per call, the pair's
    /// second member is discarded to keep the stream position predictable).
    pub fn normal(&mut self) -> f64 {
        let u1 = 1.0 - self.uniform();
        let u2 = self.uniform();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Normal variate with mean and standard deviation.
    pub fn normal_with(&mut self, mean: f64, sd: f64) -> f64 {
        mean + sd * self.normal()
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }

    /// Choose a random element index, or `None` if the slice is empty.
    pub fn choose_index(&mut self, len: usize) -> Option<usize> {
        if len == 0 {
            None
        } else {
            Some(self.below(len as u64) as usize)
        }
    }
}

impl RngCore for Pcg32 {
    fn next_u32(&mut self) -> u32 {
        Pcg32::next_u32(self)
    }
    fn next_u64(&mut self) -> u64 {
        Pcg32::next_u64(self)
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(4) {
            let w = Pcg32::next_u32(self).to_le_bytes();
            chunk.copy_from_slice(&w[..chunk.len()]);
        }
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = Pcg32::new(42, 1);
        let mut b = Pcg32::new(42, 1);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn streams_differ() {
        let mut a = Pcg32::new(42, 1);
        let mut b = Pcg32::new(42, 2);
        let same = (0..64).filter(|_| a.next_u32() == b.next_u32()).count();
        assert!(
            same < 4,
            "streams should be nearly disjoint, got {same} collisions"
        );
    }

    #[test]
    fn uniform_in_unit_interval_with_plausible_mean() {
        let mut r = Pcg32::new(7, 0);
        let n = 20_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let u = r.uniform();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn below_is_unbiased_across_buckets() {
        let mut r = Pcg32::new(9, 3);
        let mut counts = [0u32; 7];
        for _ in 0..70_000 {
            counts[r.below(7) as usize] += 1;
        }
        for &c in &counts {
            assert!((c as i64 - 10_000).abs() < 600, "bucket count {c}");
        }
    }

    #[test]
    fn exponential_mean_matches() {
        let mut r = Pcg32::new(11, 0);
        let mean: f64 = (0..50_000).map(|_| r.exp(3.0)).sum::<f64>() / 50_000.0;
        assert!((mean - 3.0).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn normal_moments_match() {
        let mut r = Pcg32::new(13, 0);
        let n = 50_000;
        let xs: Vec<f64> = (0..n).map(|_| r.normal()).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn shuffle_permutes() {
        let mut r = Pcg32::new(5, 5);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(
            v,
            (0..50).collect::<Vec<_>>(),
            "shuffle left slice untouched"
        );
    }

    #[test]
    fn split_streams_are_independent_of_later_parent_use() {
        let mut parent1 = Pcg32::new(1, 0);
        let mut child1 = parent1.split(9);
        let mut parent2 = Pcg32::new(1, 0);
        let mut child2 = parent2.split(9);
        parent2.next_u64(); // extra parent use must not affect the child
        for _ in 0..10 {
            assert_eq!(child1.next_u64(), child2.next_u64());
        }
    }
}
