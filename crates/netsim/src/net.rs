//! The simulated internet: hosts on access links around an over-provisioned
//! core.
//!
//! Topology is a star: every host's access link meets an infinite-capacity
//! core that contributes only propagation latency. A message therefore
//! queues on the sender's **uplink**, crosses the core, and queues on the
//! receiver's **downlink** — capturing the defining property of the consumer
//! population (asymmetric, slow edges; fast middle) without simulating
//! routers.

use crate::host::HostSpec;
use crate::time::{Duration, SimTime};
use std::collections::HashSet;
use std::fmt;

/// Index of a host within a [`Network`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct HostId(pub u32);

impl fmt::Debug for HostId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "h{}", self.0)
    }
}

impl fmt::Display for HostId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "h{}", self.0)
    }
}

struct HostState {
    spec: HostSpec,
    online: bool,
    /// Earliest instant the uplink is free (FIFO serialization queue).
    up_free: SimTime,
    /// Earliest instant the downlink is free.
    down_free: SimTime,
}

/// Aggregate traffic counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NetStats {
    pub messages: u64,
    pub bytes: u64,
    pub dropped: u64,
}

/// The host table plus link-queue state.
pub struct Network {
    hosts: Vec<HostState>,
    stats: NetStats,
    /// Local (same-host) delivery cost; models IPC, not the network.
    pub loopback: Duration,
    observer: obs::Obs,
    /// Severed host pairs (stored normalized low-high); transfers between
    /// them fail as [`SendError::LinkCut`]. Models a routing partition
    /// between two otherwise-online hosts.
    cut_links: HashSet<(HostId, HostId)>,
}

/// Why a transfer could not be initiated.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SendError {
    SourceOffline,
    DestOffline,
    /// The path between the two hosts is administratively severed
    /// (fault-injected partition); both endpoints are still online.
    LinkCut,
}

impl Default for Network {
    fn default() -> Self {
        Self::new()
    }
}

impl Network {
    pub fn new() -> Self {
        Network {
            hosts: Vec::new(),
            stats: NetStats::default(),
            loopback: Duration::from_micros(50),
            observer: obs::Obs::disabled(),
            cut_links: HashSet::new(),
        }
    }

    fn norm_pair(a: HostId, b: HostId) -> (HostId, HostId) {
        if a <= b {
            (a, b)
        } else {
            (b, a)
        }
    }

    /// Sever or restore the path between two hosts (order-insensitive).
    /// While cut, [`Network::transfer`] between them fails with
    /// [`SendError::LinkCut`] and counts as dropped.
    pub fn set_link_cut(&mut self, a: HostId, b: HostId, cut: bool) {
        let pair = Self::norm_pair(a, b);
        if cut {
            self.cut_links.insert(pair);
        } else {
            self.cut_links.remove(&pair);
        }
    }

    pub fn is_link_cut(&self, a: HostId, b: HostId) -> bool {
        self.cut_links.contains(&Self::norm_pair(a, b))
    }

    /// Restore every severed link.
    pub fn clear_link_cuts(&mut self) {
        self.cut_links.clear();
    }

    /// Attach a metrics observer; every [`Network::transfer`] then also feeds
    /// the `net.*` counters in the shared registry.
    pub fn set_obs(&mut self, observer: obs::Obs) {
        self.observer = observer;
    }

    pub fn add_host(&mut self, spec: HostSpec) -> HostId {
        let id = HostId(self.hosts.len() as u32);
        self.hosts.push(HostState {
            spec,
            online: true,
            up_free: SimTime::ZERO,
            down_free: SimTime::ZERO,
        });
        id
    }

    pub fn len(&self) -> usize {
        self.hosts.len()
    }

    pub fn is_empty(&self) -> bool {
        self.hosts.is_empty()
    }

    pub fn host_ids(&self) -> impl Iterator<Item = HostId> + '_ {
        (0..self.hosts.len() as u32).map(HostId)
    }

    pub fn spec(&self, id: HostId) -> &HostSpec {
        &self.hosts[id.0 as usize].spec
    }

    pub fn is_online(&self, id: HostId) -> bool {
        self.hosts[id.0 as usize].online
    }

    pub fn set_online(&mut self, id: HostId, online: bool) {
        self.hosts[id.0 as usize].online = online;
    }

    pub fn stats(&self) -> NetStats {
        self.stats
    }

    pub fn reset_stats(&mut self) {
        self.stats = NetStats::default();
    }

    /// Latency + serialization for a transfer starting now, **with** link
    /// queueing; mutates queue state. Returns the delivery delay relative to
    /// `now`, or an error if either endpoint is offline (the message is
    /// counted as dropped).
    pub fn transfer(
        &mut self,
        now: SimTime,
        src: HostId,
        dst: HostId,
        bytes: u64,
    ) -> Result<Duration, SendError> {
        if !self.hosts[src.0 as usize].online {
            self.stats.dropped += 1;
            self.observer.incr("net.dropped");
            return Err(SendError::SourceOffline);
        }
        if !self.hosts[dst.0 as usize].online {
            self.stats.dropped += 1;
            self.observer.incr("net.dropped");
            return Err(SendError::DestOffline);
        }
        if !self.cut_links.is_empty() && self.is_link_cut(src, dst) && src != dst {
            self.stats.dropped += 1;
            self.observer.incr("net.dropped");
            return Err(SendError::LinkCut);
        }
        self.stats.messages += 1;
        self.stats.bytes += bytes;
        if self.observer.is_enabled() {
            self.observer.incr("net.transfers");
            self.observer.add("net.bytes", bytes);
        }
        if src == dst {
            return Ok(self.loopback);
        }
        let (up_lat, up_ser) = {
            let s = &self.hosts[src.0 as usize];
            (s.spec.link.latency, s.spec.link.up_serialization(bytes))
        };
        let (down_lat, down_ser) = {
            let d = &self.hosts[dst.0 as usize];
            (d.spec.link.latency, d.spec.link.down_serialization(bytes))
        };
        // Uplink FIFO queue.
        let up_start = now.max(self.hosts[src.0 as usize].up_free);
        let up_done = up_start + up_ser;
        self.hosts[src.0 as usize].up_free = up_done;
        // Core propagation.
        let arrive = up_done + up_lat + down_lat;
        // Downlink FIFO queue.
        let down_start = arrive.max(self.hosts[dst.0 as usize].down_free);
        let done = down_start + down_ser;
        self.hosts[dst.0 as usize].down_free = done;
        Ok(done.since(now))
    }

    /// Transfer delay if sent now, **without** mutating queue state; used
    /// for planning / placement estimates.
    pub fn estimate(&self, now: SimTime, src: HostId, dst: HostId, bytes: u64) -> Duration {
        if src == dst {
            return self.loopback;
        }
        let s = &self.hosts[src.0 as usize];
        let d = &self.hosts[dst.0 as usize];
        let up_done = now.max(s.up_free) + s.spec.link.up_serialization(bytes);
        let arrive = up_done + s.spec.link.latency + d.spec.link.latency;
        let done = arrive.max(d.down_free) + d.spec.link.down_serialization(bytes);
        done.since(now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::LinkClass;

    fn net_with(classes: &[LinkClass]) -> (Network, Vec<HostId>) {
        let mut net = Network::new();
        let ids = classes
            .iter()
            .map(|&c| {
                let mut spec = HostSpec::reference_pc();
                spec.link = c.spec();
                net.add_host(spec)
            })
            .collect();
        (net, ids)
    }

    #[test]
    fn attached_observer_counts_transfers_and_drops() {
        let observer = obs::Obs::enabled();
        let (mut net, ids) = net_with(&[LinkClass::Lan, LinkClass::Lan]);
        net.set_obs(observer.clone());
        net.transfer(SimTime::ZERO, ids[0], ids[1], 1_000).unwrap();
        net.set_online(ids[1], false);
        assert!(net.transfer(SimTime::ZERO, ids[0], ids[1], 1_000).is_err());
        let reg = observer.registry().unwrap();
        assert_eq!(reg.counter_value("net.transfers"), 1);
        assert_eq!(reg.counter_value("net.bytes"), 1_000);
        assert_eq!(reg.counter_value("net.dropped"), 1);
        // The observer mirrors the built-in stats block.
        assert_eq!(net.stats().messages, 1);
        assert_eq!(net.stats().dropped, 1);
    }

    #[test]
    fn transfer_includes_both_latencies_and_serialization() {
        let (mut net, ids) = net_with(&[LinkClass::Dsl, LinkClass::Dsl]);
        let bytes = 256_000 / 8; // 1 s of uplink at 256 kbit/s
        let d = net.transfer(SimTime::ZERO, ids[0], ids[1], bytes).unwrap();
        // up 1 s + 2*25 ms + down (256000 bits / 1 Mbit/s = 0.256 s)
        let expect = 1.0 + 0.05 + 0.256;
        assert!((d.as_secs_f64() - expect).abs() < 1e-3, "{d}");
    }

    #[test]
    fn uplink_queues_serialize_back_to_back_sends() {
        let (mut net, ids) = net_with(&[LinkClass::Dsl, LinkClass::Lan]);
        let bytes = 256_000 / 8; // 1 s of DSL uplink each
        let d1 = net.transfer(SimTime::ZERO, ids[0], ids[1], bytes).unwrap();
        let d2 = net.transfer(SimTime::ZERO, ids[0], ids[1], bytes).unwrap();
        assert!(
            d2.as_secs_f64() > d1.as_secs_f64() + 0.9,
            "second send must wait for the uplink: {d1} then {d2}"
        );
    }

    #[test]
    fn offline_endpoints_drop() {
        let (mut net, ids) = net_with(&[LinkClass::Lan, LinkClass::Lan]);
        net.set_online(ids[1], false);
        assert_eq!(
            net.transfer(SimTime::ZERO, ids[0], ids[1], 10),
            Err(SendError::DestOffline)
        );
        net.set_online(ids[1], true);
        net.set_online(ids[0], false);
        assert_eq!(
            net.transfer(SimTime::ZERO, ids[0], ids[1], 10),
            Err(SendError::SourceOffline)
        );
        assert_eq!(net.stats().dropped, 2);
        assert_eq!(net.stats().messages, 0);
    }

    #[test]
    fn cut_links_drop_until_restored() {
        let (mut net, ids) = net_with(&[LinkClass::Lan, LinkClass::Lan, LinkClass::Lan]);
        net.set_link_cut(ids[1], ids[0], true); // order-insensitive
        assert!(net.is_link_cut(ids[0], ids[1]));
        assert_eq!(
            net.transfer(SimTime::ZERO, ids[0], ids[1], 10),
            Err(SendError::LinkCut)
        );
        // Other paths unaffected.
        assert!(net.transfer(SimTime::ZERO, ids[0], ids[2], 10).is_ok());
        net.set_link_cut(ids[0], ids[1], false);
        assert!(net.transfer(SimTime::ZERO, ids[0], ids[1], 10).is_ok());
        assert_eq!(net.stats().dropped, 1);
    }

    #[test]
    fn loopback_is_constant_and_cheap() {
        let (mut net, ids) = net_with(&[LinkClass::Modem]);
        let d = net
            .transfer(SimTime::ZERO, ids[0], ids[0], 10_000_000)
            .unwrap();
        assert_eq!(d, net.loopback);
    }

    #[test]
    fn estimate_matches_transfer_but_does_not_mutate() {
        let (mut net, ids) = net_with(&[LinkClass::Cable, LinkClass::Dsl]);
        let e1 = net.estimate(SimTime::ZERO, ids[0], ids[1], 50_000);
        let t = net.transfer(SimTime::ZERO, ids[0], ids[1], 50_000).unwrap();
        assert_eq!(e1, t);
        // estimate again: now reflects queueing from the real transfer
        let e2 = net.estimate(SimTime::ZERO, ids[0], ids[1], 50_000);
        assert!(e2 > e1);
    }

    #[test]
    fn stats_accumulate() {
        let (mut net, ids) = net_with(&[LinkClass::Lan, LinkClass::Lan]);
        net.transfer(SimTime::ZERO, ids[0], ids[1], 100).unwrap();
        net.transfer(SimTime::ZERO, ids[1], ids[0], 200).unwrap();
        assert_eq!(net.stats().messages, 2);
        assert_eq!(net.stats().bytes, 300);
        net.reset_stats();
        assert_eq!(net.stats(), NetStats::default());
    }

    #[test]
    fn faster_links_deliver_sooner() {
        let (mut net, ids) = net_with(&[LinkClass::Lan, LinkClass::Lan, LinkClass::Modem]);
        let lan = net
            .transfer(SimTime::ZERO, ids[0], ids[1], 100_000)
            .unwrap();
        let modem = net
            .transfer(SimTime::ZERO, ids[0], ids[2], 100_000)
            .unwrap();
        assert!(modem.as_micros() > lan.as_micros() * 10);
    }
}
