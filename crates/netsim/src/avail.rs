//! Volunteer availability and churn models.
//!
//! §3.7 of the paper: peers donate cycles "when their workstation is idle
//! i.e. when the screen saver turns on", and Case 2 lists the downtime causes
//! that inflate the required peer count: "connection lost, user intervenes,
//! computational bandwidth not reached". A host's availability is an
//! alternating up/down renewal process; we pre-generate a deterministic
//! [`AvailabilityTrace`] per host so experiments are reproducible and
//! queries are O(log n).

use crate::rng::Pcg32;
use crate::time::{Duration, SimTime, MICROS_PER_SEC};

const DAY: u64 = 86_400;

/// Generative model for a host's up/down pattern.
#[derive(Clone, Debug, PartialEq)]
pub enum AvailabilityModel {
    /// Dedicated resource: never leaves.
    AlwaysOn,
    /// Memoryless churn: up-time ~ Exp(mean_up), down-time ~ Exp(mean_down).
    Exponential {
        mean_up: Duration,
        mean_down: Duration,
    },
    /// SETI/Condor screensaver model: the host is donated during one idle
    /// block per day (mean start hour & length, jittered), and each idle
    /// block may be cut short by the user returning (probability per block).
    Screensaver {
        /// Mean local start hour of the idle block, e.g. 22.0 for 10pm.
        start_hour: f64,
        /// Mean idle-block length in hours.
        mean_hours: f64,
        /// Probability the user interrupts the block early.
        interrupt_prob: f64,
    },
}

impl AvailabilityModel {
    /// A typical volunteer PC: donated overnight (~10 h from 10pm), with a
    /// 20% chance of early interruption.
    pub fn typical_volunteer() -> Self {
        AvailabilityModel::Screensaver {
            start_hour: 22.0,
            mean_hours: 10.0,
            interrupt_prob: 0.2,
        }
    }

    /// Generate the up-interval trace on `[0, horizon)`.
    pub fn trace(&self, horizon: SimTime, rng: &mut Pcg32) -> AvailabilityTrace {
        let mut ups: Vec<(SimTime, SimTime)> = Vec::new();
        match *self {
            AvailabilityModel::AlwaysOn => {
                ups.push((SimTime::ZERO, horizon));
            }
            AvailabilityModel::Exponential { mean_up, mean_down } => {
                assert!(!mean_up.is_zero(), "mean_up must be positive");
                let mut t = SimTime::ZERO;
                // Randomize the initial phase: start up or down in proportion
                // to the stationary distribution.
                let frac_up = mean_up.as_secs_f64()
                    / (mean_up.as_secs_f64() + mean_down.as_secs_f64().max(1e-9));
                let mut up = rng.uniform() < frac_up;
                while t < horizon {
                    let mean = if up { mean_up } else { mean_down };
                    let len = Duration::from_secs_f64(rng.exp(mean.as_secs_f64()).max(1e-6));
                    let end = (t + len).min(horizon);
                    if up {
                        ups.push((t, end));
                    }
                    t = end;
                    up = !up;
                }
            }
            AvailabilityModel::Screensaver {
                start_hour,
                mean_hours,
                interrupt_prob,
            } => {
                let days = horizon.as_micros() / (DAY * MICROS_PER_SEC) + 2;
                for day in 0..days {
                    let start_s =
                        day as f64 * DAY as f64 + (start_hour + rng.normal() * 0.75) * 3600.0;
                    let mut len_s = (mean_hours + rng.normal() * 1.0).max(0.25) * 3600.0;
                    if rng.uniform() < interrupt_prob {
                        len_s *= rng.uniform(); // user came back early
                    }
                    let start =
                        SimTime((start_s.max(0.0) * MICROS_PER_SEC as f64) as u64).min(horizon);
                    let end = (start + Duration::from_secs_f64(len_s)).min(horizon);
                    if end > start {
                        ups.push((start, end));
                    }
                }
            }
        }
        AvailabilityTrace::from_intervals(ups, horizon)
    }
}

/// A host's availability as a sorted, disjoint list of up-intervals
/// `[start, end)` over `[0, horizon)`.
#[derive(Clone, Debug, PartialEq)]
pub struct AvailabilityTrace {
    ups: Vec<(SimTime, SimTime)>,
    horizon: SimTime,
}

impl AvailabilityTrace {
    /// Normalize raw intervals: sort, clamp, merge overlaps, drop empties.
    pub fn from_intervals(mut ups: Vec<(SimTime, SimTime)>, horizon: SimTime) -> Self {
        ups.retain(|&(s, e)| e > s && s < horizon);
        for iv in ups.iter_mut() {
            iv.1 = iv.1.min(horizon);
        }
        ups.sort_unstable();
        let mut merged: Vec<(SimTime, SimTime)> = Vec::with_capacity(ups.len());
        for (s, e) in ups {
            match merged.last_mut() {
                Some(last) if s <= last.1 => last.1 = last.1.max(e),
                _ => merged.push((s, e)),
            }
        }
        AvailabilityTrace {
            ups: merged,
            horizon,
        }
    }

    /// An always-up trace.
    pub fn always(horizon: SimTime) -> Self {
        AvailabilityTrace {
            ups: vec![(SimTime::ZERO, horizon)],
            horizon,
        }
    }

    pub fn horizon(&self) -> SimTime {
        self.horizon
    }

    pub fn intervals(&self) -> &[(SimTime, SimTime)] {
        &self.ups
    }

    /// Is the host up at `t`?
    pub fn is_up(&self, t: SimTime) -> bool {
        match self.ups.binary_search_by(|&(s, _)| s.cmp(&t)) {
            Ok(_) => true,
            Err(0) => false,
            Err(i) => t < self.ups[i - 1].1,
        }
    }

    /// The next instant ≥ `t` at which the host transitions (up→down or
    /// down→up), or `None` if no more transitions before the horizon.
    pub fn next_transition(&self, t: SimTime) -> Option<SimTime> {
        for &(s, e) in &self.ups {
            if s > t {
                return Some(s);
            }
            if e > t && e < self.horizon {
                return Some(e);
            }
        }
        None
    }

    /// Earliest instant ≥ `t` at which the host is up, or `None`.
    pub fn next_up(&self, t: SimTime) -> Option<SimTime> {
        if self.is_up(t) {
            return Some(t);
        }
        self.ups.iter().map(|&(s, _)| s).find(|&s| s >= t)
    }

    /// End of the current up-interval containing `t` (i.e. when the host
    /// will next go down), or `None` if the host is down at `t`.
    pub fn up_until(&self, t: SimTime) -> Option<SimTime> {
        match self.ups.binary_search_by(|&(s, _)| s.cmp(&t)) {
            Ok(i) => Some(self.ups[i].1),
            Err(0) => None,
            Err(i) if t < self.ups[i - 1].1 => Some(self.ups[i - 1].1),
            Err(_) => None,
        }
    }

    /// Fraction of `[0, horizon)` the host is up.
    pub fn uptime_fraction(&self) -> f64 {
        if self.horizon == SimTime::ZERO {
            return 0.0;
        }
        let up: u64 = self.ups.iter().map(|&(s, e)| e.since(s).as_micros()).sum();
        up as f64 / self.horizon.as_micros() as f64
    }

    /// Total up-time within `[from, to)`.
    pub fn uptime_within(&self, from: SimTime, to: SimTime) -> Duration {
        let mut total = Duration::ZERO;
        for &(s, e) in &self.ups {
            let lo = s.max(from);
            let hi = e.min(to);
            if hi > lo {
                total += hi.since(lo);
            }
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hours(h: u64) -> Duration {
        Duration::from_secs(h * 3600)
    }

    #[test]
    fn always_on_is_up_everywhere() {
        let horizon = SimTime::from_secs(1000);
        let mut rng = Pcg32::new(1, 0);
        let tr = AvailabilityModel::AlwaysOn.trace(horizon, &mut rng);
        assert!(tr.is_up(SimTime::ZERO));
        assert!(tr.is_up(SimTime::from_secs(999)));
        assert_eq!(tr.uptime_fraction(), 1.0);
        assert_eq!(tr.next_transition(SimTime::ZERO), None);
    }

    #[test]
    fn exponential_uptime_fraction_matches_stationary_ratio() {
        let horizon = SimTime::from_secs(30 * 86_400);
        let mut rng = Pcg32::new(2, 0);
        let model = AvailabilityModel::Exponential {
            mean_up: hours(8),
            mean_down: hours(16),
        };
        let tr = model.trace(horizon, &mut rng);
        let f = tr.uptime_fraction();
        assert!((f - 1.0 / 3.0).abs() < 0.08, "uptime fraction {f}");
    }

    #[test]
    fn screensaver_gives_roughly_nightly_blocks() {
        let horizon = SimTime::from_secs(14 * 86_400);
        let mut rng = Pcg32::new(3, 0);
        let tr = AvailabilityModel::typical_volunteer().trace(horizon, &mut rng);
        // ~10h/day minus interruptions: expect 25–45% uptime.
        let f = tr.uptime_fraction();
        assert!((0.2..0.55).contains(&f), "uptime fraction {f}");
        // Block count on the order of one per day.
        let n = tr.intervals().len();
        assert!((10..=20).contains(&n), "blocks {n}");
    }

    #[test]
    fn interval_normalization_merges_and_clamps() {
        let horizon = SimTime(100);
        let tr = AvailabilityTrace::from_intervals(
            vec![
                (SimTime(50), SimTime(60)),
                (SimTime(10), SimTime(30)),
                (SimTime(25), SimTime(40)),  // overlaps previous
                (SimTime(90), SimTime(500)), // past horizon
                (SimTime(70), SimTime(70)),  // empty
            ],
            horizon,
        );
        assert_eq!(
            tr.intervals(),
            &[
                (SimTime(10), SimTime(40)),
                (SimTime(50), SimTime(60)),
                (SimTime(90), SimTime(100))
            ]
        );
    }

    #[test]
    fn point_queries_agree_with_intervals() {
        let tr = AvailabilityTrace::from_intervals(
            vec![(SimTime(10), SimTime(20)), (SimTime(30), SimTime(40))],
            SimTime(50),
        );
        assert!(!tr.is_up(SimTime(5)));
        assert!(tr.is_up(SimTime(10)));
        assert!(tr.is_up(SimTime(15)));
        assert!(!tr.is_up(SimTime(20))); // half-open
        assert_eq!(tr.next_up(SimTime(5)), Some(SimTime(10)));
        assert_eq!(tr.next_up(SimTime(15)), Some(SimTime(15)));
        assert_eq!(tr.next_up(SimTime(45)), None);
        assert_eq!(tr.up_until(SimTime(15)), Some(SimTime(20)));
        assert_eq!(tr.up_until(SimTime(25)), None);
        assert_eq!(tr.next_transition(SimTime(0)), Some(SimTime(10)));
        assert_eq!(tr.next_transition(SimTime(10)), Some(SimTime(20)));
        assert_eq!(tr.next_transition(SimTime(40)), None);
    }

    #[test]
    fn uptime_within_window() {
        let tr = AvailabilityTrace::from_intervals(
            vec![(SimTime(10), SimTime(20)), (SimTime(30), SimTime(40))],
            SimTime(50),
        );
        assert_eq!(tr.uptime_within(SimTime(0), SimTime(50)), Duration(20));
        assert_eq!(tr.uptime_within(SimTime(15), SimTime(35)), Duration(10));
        assert_eq!(tr.uptime_within(SimTime(20), SimTime(30)), Duration::ZERO);
    }

    #[test]
    fn trace_final_up_interval_never_reports_transition_at_horizon() {
        // An interval ending exactly at the horizon is not a "transition":
        // the sim ends there anyway.
        let tr = AvailabilityTrace::always(SimTime(100));
        assert_eq!(tr.next_transition(SimTime(50)), None);
    }
}
