//! Consumer access-link models.
//!
//! The paper positions the Consumer Grid on "resources such as DSL/Cable, and
//! the variety of devices that can be connected together using these
//! technologies". Each host gets an access link of one of the 2003-era
//! classes below; the core internet is modelled as an over-provisioned cloud
//! that only contributes propagation latency (see [`crate::net`]).

use crate::time::Duration;
use std::fmt;

/// 2003-era consumer connection classes with representative bandwidths.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum LinkClass {
    /// Campus / institutional LAN (the paper's All-Hands demo ran on one).
    Lan,
    /// Cable modem: fast down, modest up.
    Cable,
    /// ADSL: asymmetric.
    Dsl,
    /// 56k dial-up modem: the long tail of the consumer population.
    Modem,
}

impl LinkClass {
    pub const ALL: [LinkClass; 4] = [
        LinkClass::Lan,
        LinkClass::Cable,
        LinkClass::Dsl,
        LinkClass::Modem,
    ];

    /// Representative link parameters for the class.
    pub fn spec(self) -> LinkSpec {
        match self {
            LinkClass::Lan => LinkSpec {
                class: self,
                up_bps: 100_000_000 / 8 * 8, // 100 Mbit/s symmetric
                down_bps: 100_000_000,
                latency: Duration::from_micros(500),
            },
            LinkClass::Cable => LinkSpec {
                class: self,
                up_bps: 256_000,
                down_bps: 2_000_000,
                latency: Duration::from_millis(15),
            },
            LinkClass::Dsl => LinkSpec {
                class: self,
                up_bps: 256_000,
                down_bps: 1_000_000,
                latency: Duration::from_millis(25),
            },
            LinkClass::Modem => LinkSpec {
                class: self,
                up_bps: 33_600,
                down_bps: 56_000,
                latency: Duration::from_millis(120),
            },
        }
    }
}

impl fmt::Display for LinkClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            LinkClass::Lan => "lan",
            LinkClass::Cable => "cable",
            LinkClass::Dsl => "dsl",
            LinkClass::Modem => "modem",
        };
        f.write_str(s)
    }
}

/// Concrete access-link parameters. Bandwidths are in *bits* per second;
/// latency is one-way propagation to the internet core.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LinkSpec {
    pub class: LinkClass,
    pub up_bps: u64,
    pub down_bps: u64,
    pub latency: Duration,
}

impl LinkSpec {
    /// Time to push `bytes` through the uplink (serialization only).
    pub fn up_serialization(&self, bytes: u64) -> Duration {
        serialization(bytes, self.up_bps)
    }

    /// Time to pull `bytes` through the downlink (serialization only).
    pub fn down_serialization(&self, bytes: u64) -> Duration {
        serialization(bytes, self.down_bps)
    }
}

fn serialization(bytes: u64, bps: u64) -> Duration {
    debug_assert!(bps > 0);
    // micros = bytes * 8 * 1e6 / bps, computed in u128 to avoid overflow.
    let micros = (bytes as u128 * 8 * 1_000_000).div_ceil(bps as u128);
    Duration(micros as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serialization_times_are_sane() {
        let dsl = LinkClass::Dsl.spec();
        // 7.2 MB (the paper's GW chunk) over 1 Mbit/s downlink: ~57.6 s.
        let t = dsl.down_serialization(7_200_000);
        assert!((t.as_secs_f64() - 57.6).abs() < 0.1, "{t}");
        // Same chunk over the 256 kbit/s uplink: 4x slower.
        let up = dsl.up_serialization(7_200_000);
        assert!((up.as_secs_f64() - 225.0).abs() < 0.5, "{up}");
    }

    #[test]
    fn lan_dwarfs_modem() {
        let lan = LinkClass::Lan.spec().down_serialization(1_000_000);
        let modem = LinkClass::Modem.spec().down_serialization(1_000_000);
        assert!(modem.as_micros() > lan.as_micros() * 100);
    }

    #[test]
    fn zero_bytes_costs_nothing_to_serialize() {
        for class in LinkClass::ALL {
            assert_eq!(class.spec().up_serialization(0), Duration::ZERO);
        }
    }

    #[test]
    fn asymmetry_down_faster_than_up_for_consumer_links() {
        for class in [LinkClass::Cable, LinkClass::Dsl, LinkClass::Modem] {
            let s = class.spec();
            assert!(s.down_bps > s.up_bps, "{class} should be asymmetric");
        }
    }
}
