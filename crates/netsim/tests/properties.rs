//! Property tests on the simulation substrate.

use netsim::avail::AvailabilityModel;
use netsim::{
    Duration, EventQueue, HostSpec, LinkClass, Network, PayloadArena, Pcg32, Sim, SimTime,
};
use proptest::prelude::*;

proptest! {
    /// Events always pop in non-decreasing time order, FIFO among ties.
    #[test]
    fn event_queue_total_order(times in proptest::collection::vec(0u64..1_000, 1..200)) {
        let mut q: EventQueue<usize> = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(SimTime(t), i);
        }
        let mut last: Option<(SimTime, usize)> = None;
        while let Some((t, idx)) = q.pop() {
            if let Some((lt, lidx)) = last {
                prop_assert!(t >= lt, "time went backwards");
                if t == lt {
                    prop_assert!(idx > lidx, "FIFO violated among equal times");
                }
            }
            last = Some((t, idx));
        }
    }

    /// The sim clock never goes backwards while handlers schedule more
    /// events with arbitrary delays.
    #[test]
    fn sim_clock_monotone(delays in proptest::collection::vec(0u64..10_000, 1..100)) {
        let mut sim: Sim<u64> = Sim::new(1);
        for &d in &delays {
            sim.schedule(Duration::from_micros(d), d);
        }
        let mut last = SimTime::ZERO;
        let mut extra = delays.len() as u64;
        sim.run(|s, d| {
            assert!(s.now() >= last);
            last = s.now();
            // occasionally schedule follow-ups
            if d % 7 == 0 && extra > 0 {
                extra -= 1;
                s.schedule(Duration::from_micros(d % 50), d + 1);
            }
        });
    }

    /// Transfer delay is monotone in payload size and never less than the
    /// two propagation latencies.
    #[test]
    fn transfer_monotone_in_bytes(
        a in 0u64..1_000_000,
        b in 0u64..1_000_000,
        src_class in 0usize..4,
        dst_class in 0usize..4,
    ) {
        let (small, large) = (a.min(b), a.max(b));
        let mk = |class: usize| {
            let mut spec = HostSpec::reference_pc();
            spec.link = LinkClass::ALL[class].spec();
            spec
        };
        let mut net = Network::new();
        let s = net.add_host(mk(src_class));
        let d = net.add_host(mk(dst_class));
        let t_small = net.estimate(SimTime::ZERO, s, d, small);
        let t_large = net.estimate(SimTime::ZERO, s, d, large);
        prop_assert!(t_large >= t_small);
        let min_latency = net.spec(s).link.latency + net.spec(d).link.latency;
        if s != d {
            prop_assert!(t_small >= min_latency);
        }
    }

    /// Availability traces never exceed the horizon and keep uptime
    /// fraction within [0,1] for every model.
    #[test]
    fn traces_bounded(seed in any::<u64>(), model_idx in 0usize..3, horizon_s in 1u64..2_000_000) {
        let model = match model_idx {
            0 => AvailabilityModel::AlwaysOn,
            1 => AvailabilityModel::Exponential {
                mean_up: Duration::from_secs(3_600),
                mean_down: Duration::from_secs(1_800),
            },
            _ => AvailabilityModel::typical_volunteer(),
        };
        let horizon = SimTime::from_secs(horizon_s);
        let mut rng = Pcg32::new(seed, 2);
        let tr = model.trace(horizon, &mut rng);
        for &(s, e) in tr.intervals() {
            prop_assert!(s < e);
            prop_assert!(e <= horizon);
        }
        let f = tr.uptime_fraction();
        prop_assert!((0.0..=1.0).contains(&f), "fraction {f}");
    }

    /// Normalization yields strictly increasing, alternating intervals —
    /// each up-interval is non-empty and separated from the next by a real
    /// down-gap — and every point/window query agrees with a linear scan
    /// over the raw input intervals.
    #[test]
    fn trace_queries_agree_with_linear_scan_oracle(
        raw in proptest::collection::vec((0u64..200, 0u64..200), 0..40),
        horizon in 1u64..200,
    ) {
        let hz = SimTime(horizon);
        let ups: Vec<(SimTime, SimTime)> = raw
            .iter()
            .map(|&(a, b)| (SimTime(a.min(b)), SimTime(a.max(b))))
            .collect();
        let tr = netsim::avail::AvailabilityTrace::from_intervals(ups.clone(), hz);
        for &(s, e) in tr.intervals() {
            prop_assert!(s < e, "empty interval survived normalization");
            prop_assert!(e <= hz, "interval past the horizon");
        }
        for w in tr.intervals().windows(2) {
            // Strictly increasing AND separated: adjacent/overlapping
            // intervals must have been merged, so up and down alternate.
            prop_assert!(w[0].1 < w[1].0, "{:?} then {:?}", w[0], w[1]);
        }
        // Oracle: up at t iff some raw interval covers t (clamped).
        let oracle = |t: SimTime| ups.iter().any(|&(s, e)| s <= t && t < e.min(hz));
        for t in 0..horizon {
            let t = SimTime(t);
            prop_assert_eq!(tr.is_up(t), oracle(t), "is_up({:?})", t);
            let expect_next_up = (t.0..horizon).map(SimTime).find(|&x| oracle(x));
            prop_assert_eq!(tr.next_up(t), expect_next_up, "next_up({:?})", t);
        }
        let scan_up = (0..horizon).filter(|&t| oracle(SimTime(t))).count() as u64;
        prop_assert_eq!(tr.uptime_within(SimTime::ZERO, hz).as_micros(), scan_up);
    }

    /// Model-generated traces alternate too, and `AlwaysOn` is never down
    /// anywhere inside the horizon.
    #[test]
    fn model_traces_alternate_and_always_on_never_down(
        seed in any::<u64>(),
        model_idx in 0usize..3,
        horizon_s in 1u64..2_000_000,
        probe in any::<u64>(),
    ) {
        let model = match model_idx {
            0 => AvailabilityModel::AlwaysOn,
            1 => AvailabilityModel::Exponential {
                mean_up: Duration::from_secs(600),
                mean_down: Duration::from_secs(300),
            },
            _ => AvailabilityModel::typical_volunteer(),
        };
        let horizon = SimTime::from_secs(horizon_s);
        let mut rng = Pcg32::new(seed, 3);
        let tr = model.trace(horizon, &mut rng);
        for w in tr.intervals().windows(2) {
            prop_assert!(w[0].1 < w[1].0, "{:?} then {:?}", w[0], w[1]);
        }
        let t = SimTime(probe % horizon.as_micros());
        if model_idx == 0 {
            prop_assert!(tr.is_up(t), "AlwaysOn down at {:?}", t);
            prop_assert_eq!(tr.uptime_fraction(), 1.0);
        }
        // is_up must agree with the interval list at the probe point.
        let scan = tr.intervals().iter().any(|&(s, e)| s <= t && t < e);
        prop_assert_eq!(tr.is_up(t), scan);
    }

    /// Arena-recycled payload buffers observe exactly the same bytes as a
    /// fresh-allocation baseline under arbitrary acquire/release
    /// interleavings — slot recycling must never leak a previous
    /// occupant's bytes into a live payload.
    #[test]
    fn arena_recycling_matches_allocating_baseline(
        ops in proptest::collection::vec(
            (any::<bool>(), proptest::collection::vec(any::<u8>(), 0..64)),
            1..100,
        ),
    ) {
        let mut arena: PayloadArena<Vec<u8>> = PayloadArena::new();
        let mut live_arena = Vec::new();
        let mut live_base: Vec<Vec<u8>> = Vec::new();
        let mut seen_arena: Vec<Vec<u8>> = Vec::new();
        let mut seen_base: Vec<Vec<u8>> = Vec::new();
        for (release_oldest, bytes) in &ops {
            if *release_oldest && !live_arena.is_empty() {
                let id = live_arena.remove(0);
                seen_arena.push(arena.get(id).clone());
                arena.release(id);
                seen_base.push(live_base.remove(0));
            }
            let (id, buf) = arena.acquire();
            buf.clear();
            buf.extend_from_slice(bytes);
            live_arena.push(id);
            live_base.push(bytes.clone());
        }
        for id in live_arena {
            seen_arena.push(arena.get(id).clone());
            arena.release(id);
        }
        seen_base.append(&mut live_base);
        prop_assert_eq!(seen_arena, seen_base);
        prop_assert_eq!(arena.live(), 0);
        let st = arena.stats();
        prop_assert_eq!(st.allocs as usize, arena.capacity());
        prop_assert_eq!((st.allocs + st.reuses) as usize, ops.len());
    }

    /// Slab-recycled event payloads come back intact: an arbitrary
    /// interleaving of pushes and pops yields exactly the (time, payload)
    /// sequence a sorted stable oracle predicts, so free-list slot reuse
    /// never swaps or corrupts a queued payload.
    #[test]
    fn event_queue_recycling_preserves_payloads(
        ops in proptest::collection::vec(
            (any::<bool>(), 0u64..1_000, any::<u64>()),
            1..300,
        ),
    ) {
        let mut q: EventQueue<u64> = EventQueue::new();
        let mut oracle: std::collections::BTreeMap<(u64, u64), u64> = Default::default();
        let mut seq = 0u64;
        fn check(
            got: Option<(SimTime, u64)>,
            oracle: &mut std::collections::BTreeMap<(u64, u64), u64>,
        ) {
            let want = oracle.pop_first();
            match (got, want) {
                (Some((gt, gp)), Some(((wt, _), wp))) => {
                    assert_eq!(gt, SimTime(wt));
                    assert_eq!(gp, wp);
                }
                (None, None) => {}
                (got, want) => panic!("queue {got:?} vs oracle {want:?}"),
            }
        }
        for &(push, t, p) in &ops {
            if push {
                q.push(SimTime(t), p);
                oracle.insert((t, seq), p);
                seq += 1;
            } else {
                check(q.pop(), &mut oracle);
            }
        }
        while !oracle.is_empty() {
            check(q.pop(), &mut oracle);
        }
        prop_assert_eq!(q.pop(), None);
    }

    /// Queued transfers preserve FIFO on the uplink: a later send never
    /// arrives before an earlier equal-size send between the same pair.
    #[test]
    fn uplink_fifo(bytes in 1u64..100_000, n in 2usize..8) {
        let mut net = Network::new();
        let mk = || {
            let mut spec = HostSpec::reference_pc();
            spec.link = LinkClass::Dsl.spec();
            spec
        };
        let s = net.add_host(mk());
        let d = net.add_host(mk());
        let mut last = Duration::ZERO;
        for _ in 0..n {
            let t = net.transfer(SimTime::ZERO, s, d, bytes).unwrap();
            prop_assert!(t >= last);
            last = t;
        }
    }
}
