//! Enrollment-cost models (experiment E9).
//!
//! §2 argues Globus's administration model cannot reach consumers: "if
//! thousands of users wanted access to a resource it would be a daunting
//! task indeed for any administrator", versus Triana which "installs easily
//! with a 'point-and-click' method to instantiate a service daemon" and
//! "does not rely on Certification Agencies". These models quantify that
//! argument: administrative effort and time-to-first-job as a function of
//! user count.

use netsim::{Duration, LinkSpec};

/// Cost parameters for the certificate + per-user account workflow.
#[derive(Clone, Debug)]
pub struct GlobusAdminModel {
    /// User-side: generating a key pair and certificate request.
    pub cert_request: Duration,
    /// CA round-trip before the certificate is signed.
    pub ca_turnaround: Duration,
    /// Administrator time to create and register one account.
    pub admin_per_account: Duration,
    /// How many administrators process account requests in parallel.
    pub admins: u32,
    /// Daily administrator working time budget.
    pub admin_day: Duration,
}

impl GlobusAdminModel {
    /// Defaults representative of 2003-era practice: a day of CA turnaround,
    /// 15 minutes of admin work per account, one admin with an 8-hour day.
    pub fn default_2003() -> Self {
        GlobusAdminModel {
            cert_request: Duration::from_secs(30 * 60),
            ca_turnaround: Duration::from_secs(24 * 3600),
            admin_per_account: Duration::from_secs(15 * 60),
            admins: 1,
            admin_day: Duration::from_secs(8 * 3600),
        }
    }

    /// Total administrator working time to enrol `users`.
    pub fn total_admin_time(&self, users: u64) -> Duration {
        self.admin_per_account * users
    }

    /// Time until the `users`-th user (1-based) can run a first job,
    /// assuming all users apply at t=0 and accounts are processed FIFO at
    /// `admins × admin_day` per day.
    pub fn time_to_first_job(&self, user_rank: u64) -> Duration {
        assert!(user_rank >= 1);
        // Work queued ahead of this user, divided over parallel admins.
        let work = self.admin_per_account.as_secs_f64() * user_rank as f64 / self.admins as f64;
        // Admin works admin_day per 24h: stretch elapsed time accordingly.
        let stretch = 86_400.0 / self.admin_day.as_secs_f64();
        let admin_elapsed = Duration::from_secs_f64(work * stretch);
        self.cert_request + self.ca_turnaround + admin_elapsed
    }
}

/// Cost parameters for a Triana peer installation.
#[derive(Clone, Debug)]
pub struct TrianaInstallModel {
    /// Size of the service-daemon download from the portal (§3.2: "may be
    /// downloaded from a pre-defined portal").
    pub daemon_bytes: u64,
    /// Point-and-click installation time.
    pub install: Duration,
}

impl TrianaInstallModel {
    /// A ~5 MB Java daemon and two minutes of clicking.
    pub fn default_2003() -> Self {
        TrianaInstallModel {
            daemon_bytes: 5_000_000,
            install: Duration::from_secs(120),
        }
    }

    /// No administrator is involved at all.
    pub fn total_admin_time(&self, _users: u64) -> Duration {
        Duration::ZERO
    }

    /// Time until a user on `link` can run a first job. Independent of how
    /// many other users enrol (the defining property).
    pub fn time_to_first_job(&self, link: &LinkSpec) -> Duration {
        link.down_serialization(self.daemon_bytes) + self.install
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::LinkClass;

    #[test]
    fn globus_admin_time_scales_linearly() {
        let m = GlobusAdminModel::default_2003();
        let t1 = m.total_admin_time(100);
        let t2 = m.total_admin_time(200);
        assert_eq!(t2.as_micros(), t1.as_micros() * 2);
        // 1000 users * 15 min = 250 admin hours.
        assert!((m.total_admin_time(1000).as_secs_f64() - 250.0 * 3600.0).abs() < 1.0);
    }

    #[test]
    fn globus_latency_grows_with_queue_position() {
        let m = GlobusAdminModel::default_2003();
        let first = m.time_to_first_job(1);
        let thousandth = m.time_to_first_job(1000);
        assert!(thousandth.as_secs_f64() > first.as_secs_f64() * 10.0);
        // First user still pays CA turnaround: > 1 day.
        assert!(first.as_secs_f64() > 86_400.0);
    }

    #[test]
    fn triana_time_is_flat_in_user_count_and_minutes_scale() {
        let m = TrianaInstallModel::default_2003();
        let dsl = LinkClass::Dsl.spec();
        let t = m.time_to_first_job(&dsl);
        // 5 MB at 1 Mbit/s = 40 s, + 120 s install.
        assert!((t.as_secs_f64() - 160.0).abs() < 1.0, "{t}");
        assert_eq!(m.total_admin_time(1_000_000), Duration::ZERO);
    }

    #[test]
    fn triana_beats_globus_by_orders_of_magnitude_at_scale() {
        let g = GlobusAdminModel::default_2003();
        let t = TrianaInstallModel::default_2003();
        let modem = LinkClass::Modem.spec();
        let triana_worst = t.time_to_first_job(&modem);
        let globus_best = g.time_to_first_job(1);
        assert!(globus_best.as_secs_f64() / triana_worst.as_secs_f64() > 50.0);
    }

    #[test]
    fn more_admins_reduce_latency_not_effort() {
        let base = GlobusAdminModel::default_2003();
        let staffed = GlobusAdminModel {
            admins: 4,
            ..GlobusAdminModel::default_2003()
        };
        assert!(staffed.time_to_first_job(500) < base.time_to_first_job(500));
        assert_eq!(staffed.total_admin_time(500), base.total_admin_time(500));
    }
}
