//! `resources` — consumer-resource management for the Consumer Grid.
//!
//! The paper's §2 contrasts Globus's per-user account administration with
//! Triana's "virtual account" model ("program modules are automatically
//! transported and executed on resources enrolled in the Triana environment
//! effectively using a virtual account"), and sketches billing ("the shell
//! would also maintain billing information for resources used"). §3.2/§3.5
//! describe gatewaying into local resource managers (Globus GRAM, batch
//! queues) and the trust decisions a resource owner makes.
//!
//! * [`account`] — virtual accounts and the billing ledger,
//! * [`trust`] — the owner's resource policy (certified-library allowlists,
//!   donation limits),
//! * [`lrm`] — local resource managers: a fork-style direct launcher and a
//!   GRAM/batch-style queue,
//! * [`admin`] — the enrollment-cost models behind experiment E9,
//! * [`enroll`] — the SETI-style population/aggregate-CPU model behind E7.

pub mod account;
pub mod admin;
pub mod enroll;
pub mod lrm;
pub mod trust;

pub use account::{BillingLedger, UsageRecord, VirtualAccount};
pub use admin::{GlobusAdminModel, TrianaInstallModel};
pub use lrm::{BatchQueue, DirectLauncher, ResourceManager};
pub use trust::ResourcePolicy;
