//! Local resource managers.
//!
//! §3.1: "The server component within each peer can interact with Globus
//! GRAM to launch jobs locally on the node … A Triana network therefore can
//! be composed of a number of different kinds of resource management
//! systems … In the case where no local resource manager is available, the
//! Triana server component can itself be used to launch the application."
//!
//! Both managers are deterministic calculators: given a submission instant
//! and a work size they return the completion instant, tracking internal
//! core/slot occupancy. This keeps them usable from both the discrete-event
//! executor and analytic experiments.

use netsim::{Duration, HostSpec, SimTime};

/// A local job launcher on one host.
pub trait ResourceManager {
    /// Submit `gigacycles` of sequential work at `now`; returns
    /// `(start, completion)` instants.
    fn submit(&mut self, now: SimTime, gigacycles: f64) -> (SimTime, SimTime);

    /// Number of jobs that can execute simultaneously.
    fn parallel_capacity(&self) -> u32;

    /// Earliest instant a new job submitted at `now` would start.
    fn earliest_start(&self, now: SimTime) -> SimTime;
}

/// The Triana server's own fork-style launcher: one job per core, no queue
/// overhead.
#[derive(Clone, Debug)]
pub struct DirectLauncher {
    host: HostSpec,
    core_free: Vec<SimTime>,
}

impl DirectLauncher {
    pub fn new(host: HostSpec, cores: u32) -> Self {
        assert!(cores >= 1);
        DirectLauncher {
            host,
            core_free: vec![SimTime::ZERO; cores as usize],
        }
    }

    pub fn host(&self) -> &HostSpec {
        &self.host
    }

    fn pick_core(&self, now: SimTime) -> usize {
        // Earliest-free core (ties broken by index for determinism).
        let mut best = 0;
        for i in 1..self.core_free.len() {
            if self.core_free[i] < self.core_free[best] {
                best = i;
            }
        }
        let _ = now;
        best
    }
}

impl ResourceManager for DirectLauncher {
    fn submit(&mut self, now: SimTime, gigacycles: f64) -> (SimTime, SimTime) {
        let core = self.pick_core(now);
        let start = now.max(self.core_free[core]);
        let done = start + self.host.exec_time(gigacycles);
        self.core_free[core] = done;
        (start, done)
    }

    fn parallel_capacity(&self) -> u32 {
        self.core_free.len() as u32
    }

    fn earliest_start(&self, now: SimTime) -> SimTime {
        let min = self
            .core_free
            .iter()
            .copied()
            .min()
            .unwrap_or(SimTime::ZERO);
        now.max(min)
    }
}

/// A GRAM/batch-queue-style manager: fixed execution slots, a fixed
/// per-job submission overhead (certificate check, queue poll), and FIFO
/// dispatch — the "batch job scheduler" path of §2.
#[derive(Clone, Debug)]
pub struct BatchQueue {
    host: HostSpec,
    slot_free: Vec<SimTime>,
    /// Authentication + scheduling overhead added before a job can start.
    pub submit_overhead: Duration,
}

impl BatchQueue {
    pub fn new(host: HostSpec, slots: u32, submit_overhead: Duration) -> Self {
        assert!(slots >= 1);
        BatchQueue {
            host,
            slot_free: vec![SimTime::ZERO; slots as usize],
            submit_overhead,
        }
    }
}

impl ResourceManager for BatchQueue {
    fn submit(&mut self, now: SimTime, gigacycles: f64) -> (SimTime, SimTime) {
        let eligible = now + self.submit_overhead;
        let mut best = 0;
        for i in 1..self.slot_free.len() {
            if self.slot_free[i] < self.slot_free[best] {
                best = i;
            }
        }
        let start = eligible.max(self.slot_free[best]);
        let done = start + self.host.exec_time(gigacycles);
        self.slot_free[best] = done;
        (start, done)
    }

    fn parallel_capacity(&self) -> u32 {
        self.slot_free.len() as u32
    }

    fn earliest_start(&self, now: SimTime) -> SimTime {
        let min = self
            .slot_free
            .iter()
            .copied()
            .min()
            .unwrap_or(SimTime::ZERO);
        (now + self.submit_overhead).max(min)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pc() -> HostSpec {
        HostSpec::reference_pc() // 2 GHz
    }

    #[test]
    fn direct_launcher_runs_immediately() {
        let mut rm = DirectLauncher::new(pc(), 1);
        let (start, done) = rm.submit(SimTime::from_secs(5), 20.0); // 10 s at 2 GHz
        assert_eq!(start, SimTime::from_secs(5));
        assert_eq!(done, SimTime::from_secs(15));
    }

    #[test]
    fn direct_launcher_serializes_beyond_core_count() {
        let mut rm = DirectLauncher::new(pc(), 2);
        let t0 = SimTime::ZERO;
        let (_, d1) = rm.submit(t0, 20.0);
        let (_, d2) = rm.submit(t0, 20.0);
        let (s3, d3) = rm.submit(t0, 20.0);
        assert_eq!(d1, SimTime::from_secs(10));
        assert_eq!(d2, SimTime::from_secs(10));
        assert_eq!(s3, SimTime::from_secs(10), "third job waits for a core");
        assert_eq!(d3, SimTime::from_secs(20));
    }

    #[test]
    fn batch_queue_adds_submission_overhead() {
        let mut rm = BatchQueue::new(pc(), 1, Duration::from_secs(30));
        let (start, done) = rm.submit(SimTime::ZERO, 20.0);
        assert_eq!(start, SimTime::from_secs(30));
        assert_eq!(done, SimTime::from_secs(40));
    }

    #[test]
    fn batch_queue_fifo_backlog() {
        let mut rm = BatchQueue::new(pc(), 1, Duration::from_secs(10));
        let (_, d1) = rm.submit(SimTime::ZERO, 20.0); // starts 10, done 20
        let (s2, _) = rm.submit(SimTime::ZERO, 20.0);
        assert_eq!(d1, SimTime::from_secs(20));
        assert_eq!(s2, SimTime::from_secs(20), "second job queues behind first");
    }

    #[test]
    fn earliest_start_predicts_submit() {
        let mut rm = BatchQueue::new(pc(), 2, Duration::from_secs(5));
        rm.submit(SimTime::ZERO, 200.0);
        rm.submit(SimTime::ZERO, 200.0);
        let predicted = rm.earliest_start(SimTime::ZERO);
        let (actual, _) = rm.submit(SimTime::ZERO, 1.0);
        assert_eq!(predicted, actual);
    }

    #[test]
    fn direct_beats_batch_for_short_jobs() {
        // The paper's point about interactive vs. batch access: for a short
        // job the queue overhead dominates.
        let mut direct = DirectLauncher::new(pc(), 1);
        let mut batch = BatchQueue::new(pc(), 1, Duration::from_secs(60));
        let (_, d_direct) = direct.submit(SimTime::ZERO, 2.0); // 1 s of work
        let (_, d_batch) = batch.submit(SimTime::ZERO, 2.0);
        assert!(d_batch.since(d_direct).as_secs_f64() > 50.0);
    }
}
