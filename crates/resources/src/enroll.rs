//! Volunteer-population aggregation (experiment E7).
//!
//! §3.7 quotes the SETI@home counters: "With 3154517 users taking part there
//! has been a total CPU time of 668852.233 years". This module models a
//! volunteer population (host mix × availability mix) and computes the
//! aggregate donated CPU, both analytically (expected value) and by
//! deterministic sampling, so the experiment can check the linear scaling
//! and the users → CPU-years ratio.

use netsim::avail::AvailabilityModel;
use netsim::{HostSpec, Pcg32, SimTime};

/// A volunteer population description.
#[derive(Clone, Debug)]
pub struct Population {
    /// Number of enrolled users.
    pub users: u64,
    /// Availability model shared by the population.
    pub availability: AvailabilityModel,
}

/// Result of an aggregation run.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AggregateCpu {
    /// Donated wall-clock CPU time, in years (the SETI metric: a host up
    /// for a year donates one CPU-year regardless of clock speed).
    pub cpu_years: f64,
    /// Donated compute normalised to the paper's 2 GHz reference PC.
    pub reference_pc_years: f64,
    /// Mean uptime fraction observed across the sample.
    pub mean_uptime: f64,
}

impl Population {
    pub fn new(users: u64, availability: AvailabilityModel) -> Self {
        Population {
            users,
            availability,
        }
    }

    /// Estimate aggregate donated CPU over `wall_years`, sampling
    /// `sample_hosts` representative volunteers from the consumer host mix
    /// and scaling up. Deterministic for a given seed.
    pub fn aggregate(&self, wall_years: f64, sample_hosts: usize, seed: u64) -> AggregateCpu {
        assert!(sample_hosts > 0);
        let horizon = SimTime::from_secs((wall_years * 365.25 * 86_400.0) as u64);
        let mut rng = Pcg32::new(seed, 0xE7);
        let mut uptime_sum = 0.0;
        let mut ghz_uptime_sum = 0.0;
        for i in 0..sample_hosts {
            let host = HostSpec::sample_consumer(&mut rng);
            let mut r = rng.split(i as u64 + 1);
            let trace = self.availability.trace(horizon, &mut r);
            let f = trace.uptime_fraction();
            uptime_sum += f;
            ghz_uptime_sum += f * host.cpu_ghz;
        }
        let mean_uptime = uptime_sum / sample_hosts as f64;
        let mean_ghz_uptime = ghz_uptime_sum / sample_hosts as f64;
        AggregateCpu {
            cpu_years: self.users as f64 * mean_uptime * wall_years,
            reference_pc_years: self.users as f64 * mean_ghz_uptime / 2.0 * wall_years,
            mean_uptime,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn always_on_population_donates_one_cpu_year_per_user_year() {
        let pop = Population::new(1_000, AvailabilityModel::AlwaysOn);
        let agg = pop.aggregate(1.0, 50, 42);
        assert!((agg.cpu_years - 1_000.0).abs() < 1e-6);
        assert_eq!(agg.mean_uptime, 1.0);
    }

    #[test]
    fn aggregate_scales_linearly_in_users() {
        let avail = AvailabilityModel::typical_volunteer();
        let a = Population::new(10_000, avail.clone()).aggregate(1.0, 100, 7);
        let b = Population::new(20_000, avail).aggregate(1.0, 100, 7);
        assert!((b.cpu_years / a.cpu_years - 2.0).abs() < 1e-9);
    }

    #[test]
    fn seti_scale_ratio_is_plausible() {
        // SETI: 3.15 M users, 668 852 CPU-years over ~2.2 wall-years of
        // operation => users donated roughly 10% of wall time on average.
        // Our volunteer model (overnight donation) should land within a
        // factor of a few of that ratio.
        let pop = Population::new(3_154_517, AvailabilityModel::typical_volunteer());
        let agg = pop.aggregate(2.2, 200, 11);
        let ratio = agg.cpu_years / (pop.users as f64 * 2.2);
        assert!((0.1..0.6).contains(&ratio), "uptime ratio {ratio}");
        assert!(agg.cpu_years > 600_000.0, "cpu-years {}", agg.cpu_years);
    }

    #[test]
    fn reference_pc_years_accounts_for_cpu_mix() {
        // The consumer mix averages < 2 GHz, so reference-PC years are
        // slightly below raw CPU-years for the same availability.
        let pop = Population::new(1_000, AvailabilityModel::AlwaysOn);
        let agg = pop.aggregate(1.0, 200, 3);
        assert!(agg.reference_pc_years < agg.cpu_years);
        assert!(agg.reference_pc_years > agg.cpu_years * 0.5);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let pop = Population::new(5_000, AvailabilityModel::typical_volunteer());
        let a = pop.aggregate(0.5, 60, 9);
        let b = pop.aggregate(0.5, 60, 9);
        assert_eq!(a, b);
    }
}
