//! Virtual accounts and billing.
//!
//! Instead of per-user OS accounts (the Globus model the paper criticises),
//! every job on a Triana peer runs under a **virtual account** identified by
//! the submitting controller. The peer meters usage per virtual account so
//! the owner can bill or cap donations.

use netsim::{Duration, SimTime};
use std::collections::HashMap;
use std::fmt;

/// Identity of a submitting user/controller, as seen by a resource owner.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VirtualAccount(pub String);

impl fmt::Display for VirtualAccount {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "va:{}", self.0)
    }
}

/// One metered job execution.
#[derive(Clone, Debug, PartialEq)]
pub struct UsageRecord {
    pub at: SimTime,
    pub cpu: Duration,
    pub bytes_in: u64,
    pub bytes_out: u64,
    /// Work metered by the sandbox (TVM instructions) where applicable.
    pub instructions: u64,
}

/// Aggregate usage for one account.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct AccountTotals {
    pub jobs: u64,
    pub cpu: Duration,
    pub bytes_in: u64,
    pub bytes_out: u64,
    pub instructions: u64,
}

/// Per-peer billing ledger keyed by virtual account.
#[derive(Debug, Default)]
pub struct BillingLedger {
    records: HashMap<VirtualAccount, Vec<UsageRecord>>,
}

impl BillingLedger {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn charge(&mut self, account: &VirtualAccount, rec: UsageRecord) {
        self.records.entry(account.clone()).or_default().push(rec);
    }

    pub fn records(&self, account: &VirtualAccount) -> &[UsageRecord] {
        self.records.get(account).map_or(&[], Vec::as_slice)
    }

    pub fn totals(&self, account: &VirtualAccount) -> AccountTotals {
        let mut t = AccountTotals::default();
        for r in self.records(account) {
            t.jobs += 1;
            t.cpu += r.cpu;
            t.bytes_in += r.bytes_in;
            t.bytes_out += r.bytes_out;
            t.instructions += r.instructions;
        }
        t
    }

    /// Total CPU donated across all accounts.
    pub fn total_cpu(&self) -> Duration {
        self.records
            .values()
            .flatten()
            .fold(Duration::ZERO, |acc, r| acc + r.cpu)
    }

    pub fn accounts(&self) -> impl Iterator<Item = &VirtualAccount> {
        self.records.keys()
    }

    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(secs: u64) -> UsageRecord {
        UsageRecord {
            at: SimTime::from_secs(secs),
            cpu: Duration::from_secs(secs),
            bytes_in: 100,
            bytes_out: 50,
            instructions: 1_000,
        }
    }

    #[test]
    fn charges_accumulate_per_account() {
        let mut ledger = BillingLedger::new();
        let alice = VirtualAccount("alice".into());
        let bob = VirtualAccount("bob".into());
        ledger.charge(&alice, rec(10));
        ledger.charge(&alice, rec(20));
        ledger.charge(&bob, rec(5));
        let a = ledger.totals(&alice);
        assert_eq!(a.jobs, 2);
        assert_eq!(a.cpu, Duration::from_secs(30));
        assert_eq!(a.bytes_in, 200);
        assert_eq!(a.instructions, 2_000);
        assert_eq!(ledger.totals(&bob).jobs, 1);
        assert_eq!(ledger.total_cpu(), Duration::from_secs(35));
    }

    #[test]
    fn unknown_account_reads_as_zero() {
        let ledger = BillingLedger::new();
        let ghost = VirtualAccount("ghost".into());
        assert_eq!(ledger.totals(&ghost), AccountTotals::default());
        assert!(ledger.records(&ghost).is_empty());
    }

    #[test]
    fn records_are_kept_in_charge_order() {
        let mut ledger = BillingLedger::new();
        let a = VirtualAccount("a".into());
        ledger.charge(&a, rec(3));
        ledger.charge(&a, rec(1));
        let times: Vec<u64> = ledger
            .records(&a)
            .iter()
            .map(|r| r.at.as_micros())
            .collect();
        assert_eq!(times, vec![3_000_000, 1_000_000]);
    }
}
