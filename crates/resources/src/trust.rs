//! Resource-owner trust policy.
//!
//! §3.5/§3.7: an owner "must agree to participate in a Consumer Grid by
//! allowing the Triana peer to exist on their computation resource"; the
//! only protection is the sandbox, and the paper proposes an alternative
//! where owners "only download executables that are selected from a
//! pre-agreed, certified, software library". [`ResourcePolicy`] captures
//! both models plus donation limits.

use std::collections::HashSet;

/// What a resource owner permits on their machine.
#[derive(Clone, Debug, PartialEq)]
pub struct ResourcePolicy {
    /// Accept any sandboxed module (the default Triana model), or only
    /// modules whose content hash is on the certified list.
    pub certified_only: bool,
    /// Content hashes of the pre-agreed certified library.
    pub certified_hashes: HashSet<u64>,
    /// Maximum RAM (MiB) donated to guest modules ("users also would have
    /// the option to specify how much RAM the applications could use").
    pub max_guest_ram_mib: u32,
    /// Whether guest modules may use the (simulated) host-I/O capability.
    pub allow_host_io: bool,
    /// Donate only when idle (screensaver model) vs. always.
    pub idle_only: bool,
}

impl ResourcePolicy {
    /// The paper's default: sandbox-only trust, idle-time donation.
    pub fn sandbox_default(max_guest_ram_mib: u32) -> Self {
        ResourcePolicy {
            certified_only: false,
            certified_hashes: HashSet::new(),
            max_guest_ram_mib,
            allow_host_io: false,
            idle_only: true,
        }
    }

    /// Certified-library-only trust (§3.7's proposed alternative).
    pub fn certified(hashes: impl IntoIterator<Item = u64>, max_guest_ram_mib: u32) -> Self {
        ResourcePolicy {
            certified_only: true,
            certified_hashes: hashes.into_iter().collect(),
            max_guest_ram_mib,
            allow_host_io: false,
            idle_only: true,
        }
    }

    /// May a module with this content hash run here?
    pub fn admits_module(&self, hash: u64) -> bool {
        !self.certified_only || self.certified_hashes.contains(&hash)
    }

    /// May a job needing `ram_mib` run here?
    pub fn admits_ram(&self, ram_mib: u32) -> bool {
        ram_mib <= self.max_guest_ram_mib
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sandbox_default_admits_any_module() {
        let p = ResourcePolicy::sandbox_default(256);
        assert!(p.admits_module(0xDEAD));
        assert!(p.admits_module(0xBEEF));
        assert!(!p.allow_host_io);
        assert!(p.idle_only);
    }

    #[test]
    fn certified_only_checks_the_allowlist() {
        let p = ResourcePolicy::certified([0xAAAA, 0xBBBB], 256);
        assert!(p.admits_module(0xAAAA));
        assert!(!p.admits_module(0xCCCC));
    }

    #[test]
    fn ram_limit_is_enforced() {
        let p = ResourcePolicy::sandbox_default(128);
        assert!(p.admits_ram(128));
        assert!(!p.admits_ram(129));
    }
}
