//! `taskgraph-xml` — the XML task-graph dialect of Code Segment 1.
//!
//! §3.1: "A Triana network can be constructed using the GUI or directly by
//! writing an XML taskgraph"; §3.3: "transmitting the connectivity graph to
//! nodes has a limited overhead – as the graph itself is a text file that
//! does not consume many resources". This crate provides:
//!
//! * [`xml`] — a small, dependency-free XML reader/writer (elements,
//!   attributes, text, entities) sufficient for the dialect;
//! * [`mod@format`] — the task-graph mapping: serialize a
//!   `triana_core::TaskGraph` to XML and parse it back, preserving tasks,
//!   parameters, cables, groups and their distribution policies.

pub mod bpel;
pub mod format;
pub mod wsfl;
pub mod xml;

pub use bpel::{from_bpel, to_bpel};
pub use format::{from_xml, from_xml_obs, to_xml, FormatError};
pub use wsfl::{from_wsfl, to_pnml, to_wsfl};
pub use xml::{parse, XmlError, XmlNode};
