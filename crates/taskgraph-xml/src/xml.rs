//! A minimal XML reader/writer.
//!
//! Supports exactly what the task-graph dialect needs: nested elements,
//! attributes (double- or single-quoted), text content, comments, XML
//! declarations, self-closing tags, and the five predefined entities. No
//! namespaces, CDATA, or DTDs — the dialect doesn't use them.

use std::fmt;

/// One XML element.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct XmlNode {
    pub name: String,
    pub attrs: Vec<(String, String)>,
    pub children: Vec<XmlNode>,
    /// Concatenated text content directly inside this element.
    pub text: String,
}

impl XmlNode {
    pub fn new(name: &str) -> Self {
        XmlNode {
            name: name.to_string(),
            ..Default::default()
        }
    }

    pub fn with_attr(mut self, key: &str, value: &str) -> Self {
        self.attrs.push((key.to_string(), value.to_string()));
        self
    }

    pub fn attr(&self, key: &str) -> Option<&str> {
        self.attrs
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    pub fn child(&self, name: &str) -> Option<&XmlNode> {
        self.children.iter().find(|c| c.name == name)
    }

    pub fn children_named<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a XmlNode> {
        self.children.iter().filter(move |c| c.name == name)
    }

    /// Serialize with 2-space indentation.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out
    }

    fn write(&self, out: &mut String, depth: usize) {
        let pad = "  ".repeat(depth);
        out.push_str(&pad);
        out.push('<');
        out.push_str(&self.name);
        for (k, v) in &self.attrs {
            out.push(' ');
            out.push_str(k);
            out.push_str("=\"");
            out.push_str(&escape(v));
            out.push('"');
        }
        if self.children.is_empty() && self.text.is_empty() {
            out.push_str("/>\n");
            return;
        }
        out.push('>');
        if !self.text.is_empty() {
            out.push_str(&escape(&self.text));
        }
        if !self.children.is_empty() {
            out.push('\n');
            for c in &self.children {
                c.write(out, depth + 1);
            }
            out.push_str(&pad);
        }
        out.push_str("</");
        out.push_str(&self.name);
        out.push_str(">\n");
    }
}

/// Parsing failure with byte offset.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct XmlError {
    pub offset: usize,
    pub message: String,
}

impl fmt::Display for XmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "XML error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for XmlError {}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '&' => out.push_str("&amp;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&apos;"),
            _ => out.push(c),
        }
    }
    out
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err<T>(&self, message: impl Into<String>) -> Result<T, XmlError> {
        Err(XmlError {
            offset: self.pos,
            message: message.into(),
        })
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn starts_with(&self, s: &str) -> bool {
        self.bytes[self.pos..].starts_with(s.as_bytes())
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    fn skip_misc(&mut self) -> Result<(), XmlError> {
        loop {
            self.skip_ws();
            if self.starts_with("<?") {
                match self.bytes[self.pos..].windows(2).position(|w| w == b"?>") {
                    Some(i) => self.pos += i + 2,
                    None => return self.err("unterminated declaration"),
                }
            } else if self.starts_with("<!--") {
                match self.bytes[self.pos..].windows(3).position(|w| w == b"-->") {
                    Some(i) => self.pos += i + 3,
                    None => return self.err("unterminated comment"),
                }
            } else {
                return Ok(());
            }
        }
    }

    fn name(&mut self) -> Result<String, XmlError> {
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || matches!(c, b'_' | b'-' | b'.' | b':') {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == start {
            return self.err("expected a name");
        }
        Ok(String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned())
    }

    fn unescape(&self, raw: &str) -> Result<String, XmlError> {
        if !raw.contains('&') {
            return Ok(raw.to_string());
        }
        let mut out = String::with_capacity(raw.len());
        let mut rest = raw;
        while let Some(i) = rest.find('&') {
            out.push_str(&rest[..i]);
            rest = &rest[i..];
            let end = match rest.find(';') {
                Some(e) => e,
                None => {
                    return Err(XmlError {
                        offset: self.pos,
                        message: "unterminated entity".into(),
                    })
                }
            };
            match &rest[..=end] {
                "&lt;" => out.push('<'),
                "&gt;" => out.push('>'),
                "&amp;" => out.push('&'),
                "&quot;" => out.push('"'),
                "&apos;" => out.push('\''),
                other => {
                    return Err(XmlError {
                        offset: self.pos,
                        message: format!("unknown entity `{other}`"),
                    })
                }
            }
            rest = &rest[end + 1..];
        }
        out.push_str(rest);
        Ok(out)
    }

    fn element(&mut self) -> Result<XmlNode, XmlError> {
        if self.peek() != Some(b'<') {
            return self.err("expected `<`");
        }
        self.pos += 1;
        let name = self.name()?;
        let mut node = XmlNode::new(&name);
        loop {
            self.skip_ws();
            match self.peek() {
                Some(b'/') => {
                    self.pos += 1;
                    if self.peek() != Some(b'>') {
                        return self.err("expected `>` after `/`");
                    }
                    self.pos += 1;
                    return Ok(node);
                }
                Some(b'>') => {
                    self.pos += 1;
                    break;
                }
                Some(_) => {
                    let key = self.name()?;
                    self.skip_ws();
                    if self.peek() != Some(b'=') {
                        return self.err("expected `=`");
                    }
                    self.pos += 1;
                    self.skip_ws();
                    let quote = match self.peek() {
                        Some(q @ (b'"' | b'\'')) => q,
                        _ => return self.err("expected quoted attribute value"),
                    };
                    self.pos += 1;
                    let start = self.pos;
                    while self.peek().is_some_and(|c| c != quote) {
                        self.pos += 1;
                    }
                    if self.peek().is_none() {
                        return self.err("unterminated attribute value");
                    }
                    let raw = String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned();
                    self.pos += 1;
                    node.attrs.push((key, self.unescape(&raw)?));
                }
                None => return self.err("unexpected end of input in tag"),
            }
        }
        // Content: text and children until the closing tag.
        loop {
            let start = self.pos;
            while self.peek().is_some_and(|c| c != b'<') {
                self.pos += 1;
            }
            if self.pos > start {
                let raw = String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned();
                let text = self.unescape(&raw)?;
                let trimmed = text.trim();
                if !trimmed.is_empty() {
                    node.text.push_str(trimmed);
                }
            }
            if self.peek().is_none() {
                return self.err(format!("missing closing tag for `{name}`"));
            }
            if self.starts_with("<!--") {
                self.skip_misc()?;
                continue;
            }
            if self.starts_with("</") {
                self.pos += 2;
                let close = self.name()?;
                if close != name {
                    return self.err(format!("mismatched closing tag `{close}` for `{name}`"));
                }
                self.skip_ws();
                if self.peek() != Some(b'>') {
                    return self.err("expected `>`");
                }
                self.pos += 1;
                return Ok(node);
            }
            node.children.push(self.element()?);
        }
    }
}

/// Parse a document into its root element.
pub fn parse(input: &str) -> Result<XmlNode, XmlError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_misc()?;
    let root = p.element()?;
    p.skip_misc()?;
    if p.pos != p.bytes.len() {
        return p.err("trailing content after root element");
    }
    Ok(root)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_elements_and_attrs() {
        let doc = r#"<a x="1"><b y='two'/><c>text</c></a>"#;
        let root = parse(doc).unwrap();
        assert_eq!(root.name, "a");
        assert_eq!(root.attr("x"), Some("1"));
        assert_eq!(root.children.len(), 2);
        assert_eq!(root.child("b").unwrap().attr("y"), Some("two"));
        assert_eq!(root.child("c").unwrap().text, "text");
    }

    #[test]
    fn round_trips_through_pretty_printer() {
        let node = XmlNode::new("taskgraph")
            .with_attr("name", "Group<Test> & \"quotes\"")
            .with_attr("v", "1");
        let mut root = node;
        root.children
            .push(XmlNode::new("task").with_attr("type", "Wave"));
        let mut inner = XmlNode::new("note");
        inner.text = "a < b && c".to_string();
        root.children.push(inner);
        let text = root.to_string_pretty();
        let back = parse(&text).unwrap();
        assert_eq!(back, root);
    }

    #[test]
    fn declaration_and_comments_skipped() {
        let doc =
            "<?xml version=\"1.0\"?>\n<!-- header -->\n<r><!-- inner --><x/></r>\n<!-- tail -->";
        let root = parse(doc).unwrap();
        assert_eq!(root.name, "r");
        assert_eq!(root.children.len(), 1);
    }

    #[test]
    fn entities_decoded() {
        let root = parse("<r a=\"&lt;&amp;&gt;\">&quot;hi&apos;</r>").unwrap();
        assert_eq!(root.attr("a"), Some("<&>"));
        assert_eq!(root.text, "\"hi'");
    }

    #[test]
    fn errors_are_located() {
        let e = parse("<a><b></a>").unwrap_err();
        assert!(e.message.contains("mismatched"));
        assert!(e.offset > 0);
        assert!(parse("<a>").is_err());
        assert!(parse("<a x=1/>").is_err());
        assert!(parse("<a/><b/>").is_err());
        assert!(parse("<r>&bogus;</r>").is_err());
    }

    #[test]
    fn whitespace_only_text_ignored() {
        let root = parse("<a>\n  <b/>\n</a>").unwrap();
        assert_eq!(root.text, "");
    }

    #[test]
    fn children_named_filters() {
        let root = parse("<g><m i=\"0\"/><x/><m i=\"1\"/></g>").unwrap();
        let ms: Vec<_> = root.children_named("m").collect();
        assert_eq!(ms.len(), 2);
        assert_eq!(ms[1].attr("i"), Some("1"));
    }
}
