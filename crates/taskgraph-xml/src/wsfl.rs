//! WSFL-flavoured task graphs.
//!
//! §3.1: "A Triana network can be constructed using the GUI or directly by
//! writing an XML taskgraph (in Web Services Flow Language (WSFL), Petri
//! net or Business Process Enactment Language for Web Services (BPEL4WS)
//! formats)." This module maps a `TaskGraph` onto the WSFL vocabulary —
//! `flowModel`, `serviceProvider`, `activity`, `dataLink` — and back, so a
//! workflow authored in either dialect drives the same engine.

use crate::format::FormatError;
use crate::xml::{parse, XmlNode};
use triana_core::unit::Params;
use triana_core::{DistributionPolicy, TaskGraph, TaskId};

/// Serialize a task graph as a WSFL flow model.
pub fn to_wsfl(graph: &TaskGraph) -> String {
    let mut root = XmlNode::new("flowModel").with_attr("name", &graph.name);
    // One serviceProvider per unit type in use.
    let mut seen_types: Vec<&str> = Vec::new();
    for t in &graph.tasks {
        if !seen_types.contains(&t.unit_type.as_str()) {
            seen_types.push(&t.unit_type);
            root.children.push(
                XmlNode::new("serviceProvider")
                    .with_attr("name", &t.unit_type)
                    .with_attr("type", "trianaUnit"),
            );
        }
    }
    for t in &graph.tasks {
        let mut act = XmlNode::new("activity")
            .with_attr("name", &t.name)
            .with_attr("performedBy", &t.unit_type)
            .with_attr("in", &t.n_in.to_string())
            .with_attr("out", &t.n_out.to_string());
        for (k, v) in &t.params {
            act.children.push(
                XmlNode::new("input")
                    .with_attr("name", k)
                    .with_attr("value", v),
            );
        }
        root.children.push(act);
    }
    for g in &graph.groups {
        let mut blk = XmlNode::new("block").with_attr("name", &g.name).with_attr(
            "distribution",
            match g.policy {
                DistributionPolicy::Parallel => "parallel",
                DistributionPolicy::PeerToPeer => "peer-to-peer",
            },
        );
        for &m in &g.members {
            blk.children.push(
                XmlNode::new("activityRef").with_attr("name", &graph.tasks[m.0 as usize].name),
            );
        }
        root.children.push(blk);
    }
    for c in &graph.cables {
        root.children.push(
            XmlNode::new("dataLink")
                .with_attr(
                    "source",
                    &format!("{}:{}", graph.tasks[c.from.0 .0 as usize].name, c.from.1),
                )
                .with_attr(
                    "target",
                    &format!("{}:{}", graph.tasks[c.to.0 .0 as usize].name, c.to.1),
                ),
        );
    }
    format!("<?xml version=\"1.0\"?>\n{}", root.to_string_pretty())
}

fn require<'a>(node: &'a XmlNode, attr: &str) -> Result<&'a str, FormatError> {
    node.attr(attr).ok_or_else(|| FormatError::Missing {
        element: node.name.clone(),
        attr: attr.to_string(),
    })
}

fn endpoint(s: &str, graph: &TaskGraph) -> Result<(TaskId, usize), FormatError> {
    let (name, port) = s
        .rsplit_once(':')
        .ok_or_else(|| FormatError::BadEndpoint(s.to_string()))?;
    let port: usize = port
        .parse()
        .map_err(|_| FormatError::BadEndpoint(s.to_string()))?;
    let task = graph
        .task_by_name(name)
        .ok_or_else(|| FormatError::UnknownTaskName(name.to_string()))?;
    Ok((task.id, port))
}

/// Parse a WSFL flow model back into a task graph.
pub fn from_wsfl(text: &str) -> Result<TaskGraph, FormatError> {
    let root = parse(text)?;
    if root.name != "flowModel" {
        return Err(FormatError::NotATaskGraph(root.name));
    }
    let mut graph = TaskGraph::new(root.attr("name").unwrap_or(""));
    for act in root.children_named("activity") {
        let name = require(act, "name")?;
        let unit_type = require(act, "performedBy")?;
        let n_in: usize = require(act, "in")?
            .parse()
            .map_err(|_| FormatError::BadNumber {
                attr: "in".into(),
                value: act.attr("in").unwrap_or("").to_string(),
            })?;
        let n_out: usize = require(act, "out")?
            .parse()
            .map_err(|_| FormatError::BadNumber {
                attr: "out".into(),
                value: act.attr("out").unwrap_or("").to_string(),
            })?;
        let mut params = Params::new();
        for p in act.children_named("input") {
            params.insert(
                require(p, "name")?.to_string(),
                require(p, "value")?.to_string(),
            );
        }
        graph.add_task_raw(unit_type, name, params, n_in, n_out)?;
    }
    for blk in root.children_named("block") {
        let name = require(blk, "name")?;
        let policy = match require(blk, "distribution")? {
            "parallel" => DistributionPolicy::Parallel,
            "peer-to-peer" => DistributionPolicy::PeerToPeer,
            other => return Err(FormatError::BadPolicy(other.to_string())),
        };
        let mut members = Vec::new();
        for m in blk.children_named("activityRef") {
            let tname = require(m, "name")?;
            let task = graph
                .task_by_name(tname)
                .ok_or_else(|| FormatError::UnknownTaskName(tname.to_string()))?;
            members.push(task.id);
        }
        graph.add_group(name, members, policy)?;
    }
    for link in root.children_named("dataLink") {
        let from = endpoint(require(link, "source")?, &graph)?;
        let to = endpoint(require(link, "target")?, &graph)?;
        graph.connect(from.0, from.1, to.0, to.1)?;
    }
    Ok(graph)
}

/// Export a task graph as a PNML Petri net (export only): each task is a
/// transition, each cable a place with arcs from producer to consumer.
pub fn to_pnml(graph: &TaskGraph) -> String {
    let mut net = XmlNode::new("net")
        .with_attr("id", &graph.name)
        .with_attr("type", "http://www.pnml.org/version-2009/grammar/ptnet");
    for t in &graph.tasks {
        let mut tr = XmlNode::new("transition").with_attr("id", &format!("t_{}", t.name));
        let mut name = XmlNode::new("name");
        let mut text = XmlNode::new("text");
        text.text = format!("{} ({})", t.name, t.unit_type);
        name.children.push(text);
        tr.children.push(name);
        net.children.push(tr);
    }
    for (i, c) in graph.cables.iter().enumerate() {
        let from = &graph.tasks[c.from.0 .0 as usize].name;
        let to = &graph.tasks[c.to.0 .0 as usize].name;
        let place_id = format!("p_{i}_{from}_{to}");
        net.children
            .push(XmlNode::new("place").with_attr("id", &place_id));
        net.children.push(
            XmlNode::new("arc")
                .with_attr("id", &format!("a{i}s"))
                .with_attr("source", &format!("t_{from}"))
                .with_attr("target", &place_id),
        );
        net.children.push(
            XmlNode::new("arc")
                .with_attr("id", &format!("a{i}t"))
                .with_attr("source", &place_id)
                .with_attr("target", &format!("t_{to}")),
        );
    }
    let mut pnml = XmlNode::new("pnml");
    pnml.children.push(net);
    format!("<?xml version=\"1.0\"?>\n{}", pnml.to_string_pretty())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format;

    fn sample() -> TaskGraph {
        let mut g = TaskGraph::new("GroupTest");
        let w = g
            .add_task_raw(
                "Wave",
                "wave",
                Params::from([("freq".to_string(), "440".to_string())]),
                0,
                1,
            )
            .unwrap();
        let ga = g
            .add_task_raw("Gaussian", "gauss", Params::new(), 1, 1)
            .unwrap();
        let ff = g.add_task_raw("FFT", "fft", Params::new(), 1, 1).unwrap();
        g.connect(w, 0, ga, 0).unwrap();
        g.connect(ga, 0, ff, 0).unwrap();
        g.add_group("GroupTask", vec![ga, ff], DistributionPolicy::PeerToPeer)
            .unwrap();
        g
    }

    #[test]
    fn wsfl_round_trips() {
        let g = sample();
        let wsfl = to_wsfl(&g);
        assert!(wsfl.contains("<flowModel name=\"GroupTest\">"));
        assert!(wsfl.contains("performedBy=\"Gaussian\""));
        assert!(wsfl.contains("<dataLink source=\"wave:0\" target=\"gauss:0\"/>"));
        let back = from_wsfl(&wsfl).unwrap();
        assert_eq!(back, g);
    }

    #[test]
    fn wsfl_and_native_dialect_agree() {
        let g = sample();
        let via_native = format::from_xml(&format::to_xml(&g)).unwrap();
        let via_wsfl = from_wsfl(&to_wsfl(&g)).unwrap();
        assert_eq!(via_native, via_wsfl);
    }

    #[test]
    fn wsfl_lists_each_provider_once() {
        let mut g = sample();
        g.add_task_raw("FFT", "fft2", Params::new(), 1, 1).unwrap();
        let wsfl = to_wsfl(&g);
        assert_eq!(wsfl.matches("serviceProvider name=\"FFT\"").count(), 1);
    }

    #[test]
    fn wrong_root_rejected() {
        assert!(matches!(
            from_wsfl("<taskgraph/>"),
            Err(FormatError::NotATaskGraph(_))
        ));
    }

    #[test]
    fn pnml_export_has_transitions_places_arcs() {
        let g = sample();
        let pnml = to_pnml(&g);
        // 3 transitions, 2 places (one per cable), 4 arcs.
        assert_eq!(pnml.matches("<transition").count(), 3);
        assert_eq!(pnml.matches("<place").count(), 2);
        assert_eq!(pnml.matches("<arc").count(), 4);
        // And it is well-formed XML.
        crate::xml::parse(&pnml).unwrap();
    }

    #[test]
    fn dangling_wsfl_link_rejected() {
        let g = sample();
        let wsfl = to_wsfl(&g).replace("source=\"wave:0\"", "source=\"ghost:0\"");
        assert!(matches!(
            from_wsfl(&wsfl),
            Err(FormatError::UnknownTaskName(_))
        ));
    }
}
