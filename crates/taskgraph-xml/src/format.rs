//! TaskGraph ⇄ XML mapping (the dialect of Code Segment 1).
//!
//! ```xml
//! <taskgraph name="GroupTest">
//!   <task name="wave" type="Wave" in="0" out="1">
//!     <param name="freq" value="440"/>
//!   </task>
//!   <group name="GroupTask" policy="parallel">
//!     <member task="gauss"/>
//!   </group>
//!   <connection from="wave:0" to="gauss:0"/>
//! </taskgraph>
//! ```
//!
//! Connections reference tasks by instance name (`name:port`), matching the
//! paper's unique labelling of group connections.

use crate::xml::{parse, XmlError, XmlNode};
use std::fmt;
use triana_core::graph::GraphError;
use triana_core::unit::Params;
use triana_core::{DistributionPolicy, TaskGraph, TaskId};

/// Task-graph (de)serialization failure.
#[derive(Clone, Debug, PartialEq)]
pub enum FormatError {
    Xml(XmlError),
    Graph(GraphError),
    Missing { element: String, attr: String },
    BadEndpoint(String),
    UnknownTaskName(String),
    BadPolicy(String),
    NotATaskGraph(String),
    BadNumber { attr: String, value: String },
}

impl fmt::Display for FormatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use FormatError::*;
        match self {
            Xml(e) => write!(f, "{e}"),
            Graph(e) => write!(f, "{e}"),
            Missing { element, attr } => {
                write!(f, "<{element}> is missing attribute `{attr}`")
            }
            BadEndpoint(s) => write!(f, "bad endpoint `{s}` (want `task:port`)"),
            UnknownTaskName(s) => write!(f, "connection references unknown task `{s}`"),
            BadPolicy(s) => write!(f, "unknown distribution policy `{s}`"),
            NotATaskGraph(s) => write!(f, "root element is `{s}`, expected `taskgraph`"),
            BadNumber { attr, value } => write!(f, "attribute `{attr}`: `{value}` not a number"),
        }
    }
}

impl std::error::Error for FormatError {}

impl From<XmlError> for FormatError {
    fn from(e: XmlError) -> Self {
        FormatError::Xml(e)
    }
}

impl From<GraphError> for FormatError {
    fn from(e: GraphError) -> Self {
        FormatError::Graph(e)
    }
}

fn policy_name(p: DistributionPolicy) -> &'static str {
    match p {
        DistributionPolicy::Parallel => "parallel",
        DistributionPolicy::PeerToPeer => "peer-to-peer",
    }
}

/// Serialize a task graph to the XML dialect.
pub fn to_xml(graph: &TaskGraph) -> String {
    let mut root = XmlNode::new("taskgraph").with_attr("name", &graph.name);
    for t in &graph.tasks {
        let mut task = XmlNode::new("task")
            .with_attr("name", &t.name)
            .with_attr("type", &t.unit_type)
            .with_attr("in", &t.n_in.to_string())
            .with_attr("out", &t.n_out.to_string());
        for (k, v) in &t.params {
            task.children.push(
                XmlNode::new("param")
                    .with_attr("name", k)
                    .with_attr("value", v),
            );
        }
        root.children.push(task);
    }
    for g in &graph.groups {
        let mut group = XmlNode::new("group")
            .with_attr("name", &g.name)
            .with_attr("policy", policy_name(g.policy));
        for &m in &g.members {
            let name = &graph.tasks[m.0 as usize].name;
            group
                .children
                .push(XmlNode::new("member").with_attr("task", name));
        }
        root.children.push(group);
    }
    for c in &graph.cables {
        let from = format!("{}:{}", graph.tasks[c.from.0 .0 as usize].name, c.from.1);
        let to = format!("{}:{}", graph.tasks[c.to.0 .0 as usize].name, c.to.1);
        root.children.push(
            XmlNode::new("connection")
                .with_attr("from", &from)
                .with_attr("to", &to),
        );
    }
    format!("<?xml version=\"1.0\"?>\n{}", root.to_string_pretty())
}

fn require<'a>(node: &'a XmlNode, attr: &str) -> Result<&'a str, FormatError> {
    node.attr(attr).ok_or_else(|| FormatError::Missing {
        element: node.name.clone(),
        attr: attr.to_string(),
    })
}

fn number(node: &XmlNode, attr: &str) -> Result<usize, FormatError> {
    let v = require(node, attr)?;
    v.parse().map_err(|_| FormatError::BadNumber {
        attr: attr.to_string(),
        value: v.to_string(),
    })
}

fn endpoint(s: &str, graph: &TaskGraph) -> Result<(TaskId, usize), FormatError> {
    let (name, port) = s
        .rsplit_once(':')
        .ok_or_else(|| FormatError::BadEndpoint(s.to_string()))?;
    let port: usize = port
        .parse()
        .map_err(|_| FormatError::BadEndpoint(s.to_string()))?;
    let task = graph
        .task_by_name(name)
        .ok_or_else(|| FormatError::UnknownTaskName(name.to_string()))?;
    Ok((task.id, port))
}

/// Parse the XML dialect back into a task graph.
pub fn from_xml(text: &str) -> Result<TaskGraph, FormatError> {
    let root = parse(text)?;
    if root.name != "taskgraph" {
        return Err(FormatError::NotATaskGraph(root.name));
    }
    let mut graph = TaskGraph::new(root.attr("name").unwrap_or(""));
    for t in root.children_named("task") {
        let name = require(t, "name")?;
        let unit_type = require(t, "type")?;
        let n_in = number(t, "in")?;
        let n_out = number(t, "out")?;
        let mut params = Params::new();
        for p in t.children_named("param") {
            params.insert(
                require(p, "name")?.to_string(),
                require(p, "value")?.to_string(),
            );
        }
        graph.add_task_raw(unit_type, name, params, n_in, n_out)?;
    }
    for g in root.children_named("group") {
        let name = require(g, "name")?;
        let policy = match require(g, "policy")? {
            "parallel" => DistributionPolicy::Parallel,
            "peer-to-peer" => DistributionPolicy::PeerToPeer,
            other => return Err(FormatError::BadPolicy(other.to_string())),
        };
        let mut members = Vec::new();
        for m in g.children_named("member") {
            let tname = require(m, "task")?;
            let task = graph
                .task_by_name(tname)
                .ok_or_else(|| FormatError::UnknownTaskName(tname.to_string()))?;
            members.push(task.id);
        }
        graph.add_group(name, members, policy)?;
    }
    for c in root.children_named("connection") {
        let from = endpoint(require(c, "from")?, &graph)?;
        let to = endpoint(require(c, "to")?, &graph)?;
        graph.connect(from.0, from.1, to.0, to.1)?;
    }
    Ok(graph)
}

/// Instrumented variant of [`from_xml`]: identical semantics, but records
/// `xml.parses`, `xml.parse_errors`, `xml.bytes_parsed`, and per-graph
/// `xml.tasks_parsed` / `xml.cables_parsed` into `observer` (a no-op when
/// the handle is disabled).
pub fn from_xml_obs(text: &str, observer: &obs::Obs) -> Result<TaskGraph, FormatError> {
    let result = from_xml(text);
    if observer.is_enabled() {
        observer.incr("xml.parses");
        observer.add("xml.bytes_parsed", text.len() as u64);
        match &result {
            Ok(graph) => {
                observer.add("xml.tasks_parsed", graph.tasks.len() as u64);
                observer.add("xml.cables_parsed", graph.cables.len() as u64);
            }
            Err(_) => observer.incr("xml.parse_errors"),
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The Figure 1 / Code Segment 1 workflow: Wave -> [Gaussian -> FFT]
    /// (grouped) -> Grapher.
    fn code_segment_1() -> TaskGraph {
        let mut g = TaskGraph::new("GroupTest");
        let wave = g
            .add_task_raw(
                "Wave",
                "wave",
                Params::from([("freq".to_string(), "440".to_string())]),
                0,
                1,
            )
            .unwrap();
        let gauss = g
            .add_task_raw("Gaussian", "gauss", Params::new(), 1, 1)
            .unwrap();
        let fft = g.add_task_raw("FFT", "fft", Params::new(), 1, 1).unwrap();
        let grapher = g
            .add_task_raw("Grapher", "grapher", Params::new(), 1, 0)
            .unwrap();
        g.add_group("GroupTask", vec![gauss, fft], DistributionPolicy::Parallel)
            .unwrap();
        g.connect(wave, 0, gauss, 0).unwrap();
        g.connect(gauss, 0, fft, 0).unwrap();
        g.connect(fft, 0, grapher, 0).unwrap();
        g
    }

    #[test]
    fn round_trip_preserves_everything() {
        let g = code_segment_1();
        let xml = to_xml(&g);
        let back = from_xml(&xml).unwrap();
        assert_eq!(back, g);
    }

    #[test]
    fn from_xml_obs_counts_parses_and_errors() {
        let observer = obs::Obs::enabled();
        let g = code_segment_1();
        let xml = to_xml(&g);
        let back = from_xml_obs(&xml, &observer).unwrap();
        assert_eq!(back, g);
        assert!(from_xml_obs("<notataskgraph/>", &observer).is_err());
        let reg = observer.registry().unwrap();
        assert_eq!(reg.counter_value("xml.parses"), 2);
        assert_eq!(reg.counter_value("xml.parse_errors"), 1);
        assert_eq!(reg.counter_value("xml.tasks_parsed"), g.tasks.len() as u64);
        assert_eq!(
            reg.counter_value("xml.cables_parsed"),
            g.cables.len() as u64
        );
        assert!(reg.counter_value("xml.bytes_parsed") > xml.len() as u64);
    }

    #[test]
    fn xml_contains_expected_structure() {
        let xml = to_xml(&code_segment_1());
        assert!(xml.contains("<taskgraph name=\"GroupTest\">"));
        assert!(xml.contains("type=\"Gaussian\""));
        assert!(xml.contains("policy=\"parallel\""));
        assert!(xml.contains("from=\"wave:0\""));
        assert!(xml.contains("<param name=\"freq\" value=\"440\"/>"));
    }

    #[test]
    fn graph_text_is_small_relative_to_data() {
        // §3.3: "the graph itself is a text file that does not consume many
        // resources" — the XML for a 4-task workflow is under 1 KiB.
        let xml = to_xml(&code_segment_1());
        assert!(xml.len() < 1024, "taskgraph XML is {} bytes", xml.len());
    }

    #[test]
    fn unknown_policy_rejected() {
        let xml = to_xml(&code_segment_1()).replace("parallel", "magic");
        assert!(matches!(from_xml(&xml), Err(FormatError::BadPolicy(_))));
    }

    #[test]
    fn dangling_connection_rejected() {
        let xml = to_xml(&code_segment_1()).replace("from=\"wave:0\"", "from=\"nope:0\"");
        assert!(matches!(
            from_xml(&xml),
            Err(FormatError::UnknownTaskName(_))
        ));
    }

    #[test]
    fn bad_endpoint_syntax_rejected() {
        let xml = to_xml(&code_segment_1()).replace("from=\"wave:0\"", "from=\"wave\"");
        assert!(matches!(from_xml(&xml), Err(FormatError::BadEndpoint(_))));
    }

    #[test]
    fn missing_attr_reported_with_element() {
        let xml = "<taskgraph name=\"x\"><task name=\"a\" in=\"0\" out=\"1\"/></taskgraph>";
        match from_xml(xml) {
            Err(FormatError::Missing { element, attr }) => {
                assert_eq!(element, "task");
                assert_eq!(attr, "type");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn wrong_root_rejected() {
        assert!(matches!(
            from_xml("<flow/>"),
            Err(FormatError::NotATaskGraph(_))
        ));
    }

    #[test]
    fn parsed_graph_passes_validation() {
        let xml = to_xml(&code_segment_1());
        let g = from_xml(&xml).unwrap();
        g.validate().unwrap();
    }

    #[test]
    fn peer_to_peer_policy_round_trips() {
        let mut g = TaskGraph::new("p2p");
        let a = g.add_task_raw("A", "a", Params::new(), 0, 1).unwrap();
        let b = g.add_task_raw("B", "b", Params::new(), 1, 0).unwrap();
        g.connect(a, 0, b, 0).unwrap();
        g.add_group("grp", vec![a, b], DistributionPolicy::PeerToPeer)
            .unwrap();
        let back = from_xml(&to_xml(&g)).unwrap();
        assert_eq!(back.groups[0].policy, DistributionPolicy::PeerToPeer);
    }
}
