//! BPEL4WS-flavoured task graphs — the third format §3.1 names.
//!
//! The mapping follows BPEL's vocabulary: the workflow is a `<process>`
//! containing one `<flow>`; each task is an `<invoke>` activity; dataflow
//! cables are `<link>`s declared in the flow's `<links>` section and
//! referenced from each activity's `<sources>`/`<targets>`. Groups map to
//! `<scope>` elements carrying the distribution policy.

use crate::format::FormatError;
use crate::xml::{parse, XmlNode};
use triana_core::unit::Params;
use triana_core::{DistributionPolicy, TaskGraph};

fn link_name(graph: &TaskGraph, c: &triana_core::Cable) -> String {
    format!(
        "{}.{}-{}.{}",
        graph.tasks[c.from.0 .0 as usize].name,
        c.from.1,
        graph.tasks[c.to.0 .0 as usize].name,
        c.to.1
    )
}

/// Serialize a task graph as a BPEL process.
pub fn to_bpel(graph: &TaskGraph) -> String {
    let mut process = XmlNode::new("process").with_attr("name", &graph.name);
    let mut flow = XmlNode::new("flow");
    let mut links = XmlNode::new("links");
    for c in &graph.cables {
        links
            .children
            .push(XmlNode::new("link").with_attr("name", &link_name(graph, c)));
    }
    flow.children.push(links);
    for t in &graph.tasks {
        let mut invoke = XmlNode::new("invoke")
            .with_attr("name", &t.name)
            .with_attr("partnerLink", &t.unit_type)
            .with_attr("operation", "process")
            .with_attr("in", &t.n_in.to_string())
            .with_attr("out", &t.n_out.to_string());
        let mut targets = XmlNode::new("targets");
        let mut sources = XmlNode::new("sources");
        for c in &graph.cables {
            if c.to.0 == t.id {
                targets.children.push(
                    XmlNode::new("target")
                        .with_attr("linkName", &link_name(graph, c))
                        .with_attr("port", &c.to.1.to_string()),
                );
            }
            if c.from.0 == t.id {
                sources.children.push(
                    XmlNode::new("source")
                        .with_attr("linkName", &link_name(graph, c))
                        .with_attr("port", &c.from.1.to_string()),
                );
            }
        }
        if !targets.children.is_empty() {
            invoke.children.push(targets);
        }
        if !sources.children.is_empty() {
            invoke.children.push(sources);
        }
        for (k, v) in &t.params {
            invoke.children.push(
                XmlNode::new("assign")
                    .with_attr("to", k)
                    .with_attr("value", v),
            );
        }
        flow.children.push(invoke);
    }
    for g in &graph.groups {
        let mut scope = XmlNode::new("scope").with_attr("name", &g.name).with_attr(
            "distribution",
            match g.policy {
                DistributionPolicy::Parallel => "parallel",
                DistributionPolicy::PeerToPeer => "peer-to-peer",
            },
        );
        for &m in &g.members {
            scope
                .children
                .push(XmlNode::new("invokeRef").with_attr("name", &graph.tasks[m.0 as usize].name));
        }
        flow.children.push(scope);
    }
    process.children.push(flow);
    format!("<?xml version=\"1.0\"?>\n{}", process.to_string_pretty())
}

fn require<'a>(node: &'a XmlNode, attr: &str) -> Result<&'a str, FormatError> {
    node.attr(attr).ok_or_else(|| FormatError::Missing {
        element: node.name.clone(),
        attr: attr.to_string(),
    })
}

fn number(node: &XmlNode, attr: &str) -> Result<usize, FormatError> {
    require(node, attr)?
        .parse()
        .map_err(|_| FormatError::BadNumber {
            attr: attr.to_string(),
            value: node.attr(attr).unwrap_or("").to_string(),
        })
}

/// Parse a BPEL process back into a task graph.
pub fn from_bpel(text: &str) -> Result<TaskGraph, FormatError> {
    let root = parse(text)?;
    if root.name != "process" {
        return Err(FormatError::NotATaskGraph(root.name));
    }
    let flow = root.child("flow").ok_or_else(|| FormatError::Missing {
        element: "process".into(),
        attr: "flow".into(),
    })?;
    let mut graph = TaskGraph::new(root.attr("name").unwrap_or(""));
    for invoke in flow.children_named("invoke") {
        let name = require(invoke, "name")?;
        let unit_type = require(invoke, "partnerLink")?;
        let n_in = number(invoke, "in")?;
        let n_out = number(invoke, "out")?;
        let mut params = Params::new();
        for a in invoke.children_named("assign") {
            params.insert(
                require(a, "to")?.to_string(),
                require(a, "value")?.to_string(),
            );
        }
        graph.add_task_raw(unit_type, name, params, n_in, n_out)?;
    }
    for scope in flow.children_named("scope") {
        let name = require(scope, "name")?;
        let policy = match require(scope, "distribution")? {
            "parallel" => DistributionPolicy::Parallel,
            "peer-to-peer" => DistributionPolicy::PeerToPeer,
            other => return Err(FormatError::BadPolicy(other.to_string())),
        };
        let mut members = Vec::new();
        for m in scope.children_named("invokeRef") {
            let tname = require(m, "name")?;
            let task = graph
                .task_by_name(tname)
                .ok_or_else(|| FormatError::UnknownTaskName(tname.to_string()))?;
            members.push(task.id);
        }
        graph.add_group(name, members, policy)?;
    }
    // Wire links: each invoke's sources/targets reference link names; a
    // cable exists where one activity sources a link another targets.
    struct End {
        task: String,
        port: usize,
    }
    let mut sources: std::collections::HashMap<String, End> = std::collections::HashMap::new();
    let mut targets: std::collections::HashMap<String, End> = std::collections::HashMap::new();
    for invoke in flow.children_named("invoke") {
        let tname = require(invoke, "name")?.to_string();
        if let Some(srcs) = invoke.child("sources") {
            for s in srcs.children_named("source") {
                sources.insert(
                    require(s, "linkName")?.to_string(),
                    End {
                        task: tname.clone(),
                        port: number(s, "port")?,
                    },
                );
            }
        }
        if let Some(tgts) = invoke.child("targets") {
            for t in tgts.children_named("target") {
                targets.insert(
                    require(t, "linkName")?.to_string(),
                    End {
                        task: tname.clone(),
                        port: number(t, "port")?,
                    },
                );
            }
        }
    }
    let links_node = flow.child("links");
    let mut link_names: Vec<String> = links_node
        .map(|l| {
            l.children_named("link")
                .filter_map(|n| n.attr("name").map(str::to_string))
                .collect()
        })
        .unwrap_or_default();
    link_names.sort();
    for name in link_names {
        let s = sources
            .get(&name)
            .ok_or_else(|| FormatError::BadEndpoint(name.clone()))?;
        let t = targets
            .get(&name)
            .ok_or_else(|| FormatError::BadEndpoint(name.clone()))?;
        let from = graph
            .task_by_name(&s.task)
            .ok_or_else(|| FormatError::UnknownTaskName(s.task.clone()))?
            .id;
        let to = graph
            .task_by_name(&t.task)
            .ok_or_else(|| FormatError::UnknownTaskName(t.task.clone()))?
            .id;
        graph.connect(from, s.port, to, t.port)?;
    }
    Ok(graph)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format;

    fn sample() -> TaskGraph {
        let mut g = TaskGraph::new("GroupTest");
        let w = g
            .add_task_raw(
                "Wave",
                "wave",
                Params::from([("freq".to_string(), "440".to_string())]),
                0,
                1,
            )
            .unwrap();
        let ga = g
            .add_task_raw("Gaussian", "gauss", Params::new(), 1, 1)
            .unwrap();
        let ff = g.add_task_raw("FFT", "fft", Params::new(), 1, 1).unwrap();
        g.connect(w, 0, ga, 0).unwrap();
        g.connect(ga, 0, ff, 0).unwrap();
        g.add_group("GroupTask", vec![ga, ff], DistributionPolicy::Parallel)
            .unwrap();
        g
    }

    #[test]
    fn bpel_round_trips() {
        let g = sample();
        let bpel = to_bpel(&g);
        assert!(bpel.contains("<process name=\"GroupTest\">"));
        assert!(bpel.contains("partnerLink=\"Gaussian\""));
        assert!(bpel.contains("<link name=\"wave.0-gauss.0\"/>"));
        let back = from_bpel(&bpel).unwrap();
        // Cables may be reordered (links are sorted); compare structurally.
        assert_eq!(back.name, g.name);
        assert_eq!(back.tasks, g.tasks);
        assert_eq!(back.groups, g.groups);
        let mut a = back.cables.clone();
        let mut b = g.cables.clone();
        a.sort_by_key(|c| (c.from, c.to));
        b.sort_by_key(|c| (c.from, c.to));
        assert_eq!(a, b);
    }

    #[test]
    fn all_three_dialects_agree() {
        let g = sample();
        let via_native = format::from_xml(&format::to_xml(&g)).unwrap();
        let via_wsfl = crate::wsfl::from_wsfl(&crate::wsfl::to_wsfl(&g)).unwrap();
        let via_bpel = from_bpel(&to_bpel(&g)).unwrap();
        assert_eq!(via_native.tasks, via_bpel.tasks);
        assert_eq!(via_wsfl.tasks, via_bpel.tasks);
        assert_eq!(via_native.groups, via_bpel.groups);
    }

    #[test]
    fn wrong_root_rejected() {
        assert!(matches!(
            from_bpel("<flowModel/>"),
            Err(FormatError::NotATaskGraph(_))
        ));
    }

    #[test]
    fn dangling_link_rejected() {
        let g = sample();
        // Remove the <sources> side of one link by renaming it in <links>.
        let bpel = to_bpel(&g).replace(
            "<link name=\"wave.0-gauss.0\"/>",
            "<link name=\"ghost.0-gauss.0\"/>",
        );
        assert!(matches!(from_bpel(&bpel), Err(FormatError::BadEndpoint(_))));
    }

    #[test]
    fn executable_after_bpel_round_trip() {
        // Parse a BPEL version of Figure 1 and run it through the engine.
        let mut g = TaskGraph::new("fig1");
        let w = g.add_task_raw("Wave", "wave", Params::new(), 0, 1).unwrap();
        let p = g
            .add_task_raw("PowerSpectrum", "ps", Params::new(), 1, 1)
            .unwrap();
        g.connect(w, 0, p, 0).unwrap();
        let back = from_bpel(&to_bpel(&g)).unwrap();
        back.validate().unwrap();
    }
}
