//! Property test: any constructible task graph — tasks with params,
//! forward-only cables, and non-overlapping groups under either
//! distribution policy — survives a trip through the XML dialect intact.

use proptest::prelude::*;
use taskgraph_xml::{from_xml, to_xml};
use triana_core::unit::Params;
use triana_core::{DistributionPolicy, TaskGraph, TaskId};

/// Short strings over an alphabet that includes the XML-special
/// characters, so the round trip also exercises escaping.
fn arb_text() -> impl Strategy<Value = String> {
    proptest::collection::vec(
        prop_oneof![
            Just('a'),
            Just('Z'),
            Just('7'),
            Just('_'),
            Just('-'),
            Just(' '),
            Just('<'),
            Just('&'),
            Just('"'),
        ],
        0..10,
    )
    .prop_map(|cs| cs.into_iter().collect())
}

/// Per-task raw material: arity, params, group choice (0 = ungrouped),
/// and one (use?, source, port) connection lottery ticket per input slot.
type TaskSpec = (
    usize,                 // n_in
    usize,                 // n_out
    Vec<(String, String)>, // params
    u8,                    // group assignment: 0 none, 1, 2
    Vec<(u8, u16, u16)>,   // per-input: (connect?, src task, src port)
);

fn arb_task() -> impl Strategy<Value = TaskSpec> {
    (
        0usize..3,
        0usize..4,
        proptest::collection::vec((arb_text(), arb_text()), 0..3),
        0u8..3,
        proptest::collection::vec((0u8..2, 0u16..1_000, 0u16..1_000), 3..4),
    )
}

fn arb_policy() -> impl Strategy<Value = DistributionPolicy> {
    prop_oneof![
        Just(DistributionPolicy::Parallel),
        Just(DistributionPolicy::PeerToPeer),
    ]
}

proptest! {
    #[test]
    fn graph_round_trips_through_xml(
        specs in proptest::collection::vec(arb_task(), 1..8),
        graph_name in arb_text(),
        policies in proptest::collection::vec(arb_policy(), 2..3),
    ) {
        let mut g = TaskGraph::new(&graph_name);
        let mut ids: Vec<TaskId> = Vec::new();
        for (i, (n_in, n_out, params, _, _)) in specs.iter().enumerate() {
            let p: Params = params.iter().cloned().collect();
            let id = g
                .add_task_raw(&format!("Unit{}", i % 3), &format!("t{i}"), p, *n_in, *n_out)
                .unwrap();
            ids.push(id);
        }
        // Forward-only cables keep the graph acyclic; each input gets at
        // most one driver by construction.
        for (i, (n_in, _, _, _, lottery)) in specs.iter().enumerate() {
            for (port, &(want, src, sport)) in lottery.iter().enumerate().take(*n_in) {
                if want == 0 || i == 0 {
                    continue;
                }
                let j = (src as usize) % i;
                let src_outs = specs[j].1;
                if src_outs == 0 {
                    continue;
                }
                g.connect(ids[j], (sport as usize) % src_outs, ids[i], port)
                    .unwrap();
            }
        }
        // Up to two non-overlapping groups with independent policies.
        let mut members: [Vec<TaskId>; 2] = [Vec::new(), Vec::new()];
        for (i, (_, _, _, grp, _)) in specs.iter().enumerate() {
            match grp {
                1 => members[0].push(ids[i]),
                2 => members[1].push(ids[i]),
                _ => {}
            }
        }
        for (gi, m) in members.into_iter().enumerate() {
            if !m.is_empty() {
                g.add_group(&format!("g{gi}"), m, policies[gi]).unwrap();
            }
        }

        let xml = to_xml(&g);
        let back = from_xml(&xml).unwrap();
        prop_assert_eq!(back, g);
    }
}
