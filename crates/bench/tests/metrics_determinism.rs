//! End-to-end determinism of the CI smoke artifact: two `repro --quick`
//! invocations in separate processes must produce byte-identical metrics
//! snapshots, and the snapshot must be valid JSON with the counters CI
//! diffs against.

use std::process::Command;

fn run_quick(out: &std::path::Path) -> String {
    let status = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(["--quick", "--metrics-out", out.to_str().expect("utf8 path")])
        .output()
        .expect("repro runs");
    assert!(
        status.status.success(),
        "repro --quick failed: {}",
        String::from_utf8_lossy(&status.stderr)
    );
    std::fs::read_to_string(out).expect("metrics file written")
}

#[test]
fn quick_metrics_snapshot_is_byte_identical_across_processes() {
    let dir = std::env::temp_dir().join("repro_metrics_determinism");
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let a = run_quick(&dir.join("a.json"));
    let b = run_quick(&dir.join("b.json"));
    assert_eq!(a, b, "same-seed smoke runs must be byte-identical");

    let doc = obs::json::parse(&a).expect("valid JSON");
    assert_eq!(
        doc.get("schema").and_then(|v| v.as_str()),
        Some("triana-obs/1")
    );
    let counters = doc
        .get("counters")
        .and_then(|v| v.as_object())
        .expect("counters");
    for key in [
        "engine.runs",
        "farm.dispatches",
        "farm.completions",
        "p2p.messages_sent",
        "tvm.violations.budget",
        "net.transfers",
        "xml.parses",
    ] {
        let v = counters
            .get(key)
            .and_then(|v| v.as_u64())
            .unwrap_or_else(|| panic!("counter {key} missing"));
        assert!(v > 0, "counter {key} is zero");
    }
    let events = doc
        .get("events")
        .and_then(|v| v.as_array())
        .expect("events");
    assert!(!events.is_empty(), "events must be recorded");
    // Event timestamps are virtual (netsim) time, monotone per subsystem run.
    for ev in events {
        assert!(
            ev.get("t").and_then(|v| v.as_u64()).is_some(),
            "virtual timestamp"
        );
        assert!(ev.get("kind").and_then(|v| v.as_str()).is_some());
    }
}
