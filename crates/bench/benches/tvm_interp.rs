//! Ablation: interpreted TVM units vs native Rust (DESIGN.md decision 1 —
//! code-as-data costs an interpretation factor; this measures it).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use tvm::asm::assemble;
use tvm::{execute, ExecContext, Module, PreparedModule, SandboxPolicy};

const DOUBLER: &str = r#"
.module Doubler 1 1 1
.func main 2
    inlen 0
    store 0
    push 0
    store 1
loop:
    load 1
    load 0
    lt
    jz end
    load 1
    inget 0
    push 2.0
    mul
    outpush 0
    load 1
    push 1
    add
    store 1
    jmp loop
end:
    halt
"#;

fn bench_interp_vs_native(c: &mut Criterion) {
    let module = assemble(DOUBLER).unwrap();
    let policy = SandboxPolicy::standard();
    let input: Vec<f64> = (0..10_000).map(|i| i as f64 * 0.5).collect();
    let mut g = c.benchmark_group("tvm_vs_native_double_10k");
    g.throughput(Throughput::Elements(input.len() as u64));
    g.bench_function("tvm_interpreted", |b| {
        b.iter(|| execute(&module, &[&input], &policy).unwrap())
    });
    // Steady state: verified once at prepare time, then executed through a
    // reusable context (no per-call verify, no per-call allocation).
    g.bench_function("tvm_prepared", |b| {
        let prepared = PreparedModule::prepare(&module).unwrap();
        let mut ctx = ExecContext::new();
        b.iter(|| prepared.run(&[&input], &policy, &mut ctx).unwrap())
    });
    g.bench_function("native_rust", |b| {
        b.iter(|| input.iter().map(|x| x * 2.0).collect::<Vec<f64>>())
    });
    g.finish();
}

fn bench_module_lifecycle(c: &mut Criterion) {
    let module = assemble(DOUBLER).unwrap();
    let blob = module.to_blob();
    let mut g = c.benchmark_group("module_lifecycle");
    g.bench_function("assemble", |b| b.iter(|| assemble(DOUBLER).unwrap()));
    g.bench_function("blob_roundtrip", |b| {
        b.iter(|| Module::from_blob(&blob).unwrap())
    });
    g.bench_function("verify", |b| {
        b.iter(|| tvm::verify::verify(&module).unwrap())
    });
    g.bench_function("prepare", |b| {
        b.iter(|| PreparedModule::prepare(&module).unwrap())
    });
    g.finish();
}

criterion_group!(benches, bench_interp_vs_native, bench_module_lifecycle);
criterion_main!(benches);
