//! Case 1 kernel: SPH column-density rendering (E3's per-frame work).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use toolbox::galaxy::{render_column_density, synthesize_snapshots, View};

fn bench_render(c: &mut Criterion) {
    let mut g = c.benchmark_group("sph_render");
    g.sample_size(20);
    for &(particles, pixels) in &[(1_000usize, 64u32), (5_000, 128), (20_000, 256)] {
        let snap = synthesize_snapshots(1, particles / 2, 42).pop().unwrap();
        let view = View {
            pixels,
            ..View::default()
        };
        g.throughput(Throughput::Elements(snap.len() as u64));
        g.bench_with_input(
            BenchmarkId::new("render", format!("{particles}p_{pixels}px")),
            &snap,
            |b, s| b.iter(|| render_column_density(s, &view)),
        );
    }
    g.finish();
}

fn bench_snapshot_generation(c: &mut Criterion) {
    c.bench_function("synthesize_16_frames_2000p", |b| {
        b.iter(|| synthesize_snapshots(16, 1_000, 7))
    });
}

criterion_group!(benches, bench_render, bench_snapshot_generation);
criterion_main!(benches);
