//! FFT kernels: the numerical substrate of Figure 2 and Case 2.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use netsim::Pcg32;
use toolbox::fft::{correlate, fft, power_spectrum};

fn noise(n: usize, seed: u64) -> Vec<f64> {
    let mut rng = Pcg32::new(seed, 0);
    (0..n).map(|_| rng.normal()).collect()
}

fn bench_fft(c: &mut Criterion) {
    let mut g = c.benchmark_group("fft");
    for &n in &[1_024usize, 4_096, 16_384] {
        let re = noise(n, 1);
        let im = vec![0.0; n];
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::new("pow2", n), &n, |b, _| {
            b.iter(|| fft(&re, &im))
        });
    }
    // Non-power-of-two (Bluestein path).
    for &n in &[1_000usize, 12_000] {
        let re = noise(n, 2);
        let im = vec![0.0; n];
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::new("bluestein", n), &n, |b, _| {
            b.iter(|| fft(&re, &im))
        });
    }
    g.finish();
}

fn bench_spectrum_and_correlate(c: &mut Criterion) {
    let mut g = c.benchmark_group("spectrum");
    let n = 8_192;
    let sig = noise(n, 3);
    let tpl = noise(n, 4);
    g.throughput(Throughput::Elements(n as u64));
    g.bench_function("power_spectrum_8192", |b| b.iter(|| power_spectrum(&sig)));
    g.bench_function("correlate_8192", |b| b.iter(|| correlate(&tpl, &sig)));
    g.finish();
}

criterion_group!(benches, bench_fft, bench_spectrum_and_correlate);
criterion_main!(benches);
