//! Case 2 kernel: matched-filter search over a template bank (E4's real
//! compute path; the paper runs 5 000–10 000 templates per 900 s chunk).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use netsim::Pcg32;
use toolbox::inspiral::{inject_chirp, search, TemplateBank};

fn bench_search(c: &mut Criterion) {
    let mut g = c.benchmark_group("matched_filter");
    g.sample_size(10);
    let rate = 256.0;
    let chunk_len = 16_384;
    for &n_templates in &[4usize, 16, 64] {
        let bank = TemplateBank::generate(n_templates, 1.0, 4.0, 16.0, rate);
        let mut rng = Pcg32::new(9, 0);
        let chunk = inject_chirp(
            chunk_len,
            &bank.templates[n_templates / 2],
            12.0,
            3_000,
            &mut rng,
        );
        g.throughput(Throughput::Elements((n_templates * chunk_len) as u64));
        g.bench_with_input(
            BenchmarkId::new("templates", n_templates),
            &n_templates,
            |b, _| b.iter(|| search(&chunk, &bank)),
        );
    }
    g.finish();
}

fn bench_template_generation(c: &mut Criterion) {
    c.bench_function("template_bank_64", |b| {
        b.iter(|| TemplateBank::generate(64, 1.0, 4.0, 16.0, 256.0))
    });
}

criterion_group!(benches, bench_search, bench_template_generation);
criterion_main!(benches);
