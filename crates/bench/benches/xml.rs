//! Task-graph XML serialization (E2's "limited overhead" claim: the graph
//! must be cheap to produce, parse, and ship).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use taskgraph_xml::{from_xml, to_xml};
use triana_core::unit::Params;
use triana_core::{DistributionPolicy, TaskGraph};

fn workflow(n: usize) -> TaskGraph {
    let mut g = TaskGraph::new(&format!("fan{n}"));
    let src = g
        .add_task_raw("Wave", "source", Params::new(), 0, 1)
        .unwrap();
    let mut members = Vec::new();
    for i in 0..n {
        let t = g
            .add_task_raw(
                "Kernel",
                &format!("worker{i}"),
                Params::from([("gain".to_string(), "1.5".to_string())]),
                1,
                1,
            )
            .unwrap();
        g.connect(src, 0, t, 0).unwrap();
        members.push(t);
    }
    g.add_group("farm", members, DistributionPolicy::Parallel)
        .unwrap();
    g
}

fn bench_xml(c: &mut Criterion) {
    let mut grp = c.benchmark_group("taskgraph_xml");
    for &n in &[8usize, 64, 512] {
        let g = workflow(n);
        let xml = to_xml(&g);
        grp.bench_with_input(BenchmarkId::new("serialize", n), &g, |b, g| {
            b.iter(|| to_xml(g))
        });
        grp.bench_with_input(BenchmarkId::new("parse", n), &xml, |b, xml| {
            b.iter(|| from_xml(xml).unwrap())
        });
    }
    grp.finish();
}

criterion_group!(benches, bench_xml);
criterion_main!(benches);
