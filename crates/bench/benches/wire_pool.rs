//! Pooled vs allocating wire codec cost. The pooled path (thread-local
//! buffer pool, `encode_into`) is what the socket transmit path and the
//! smoke harness use; the allocating path (`encode` returning a fresh
//! `Vec`) is the baseline it replaced. Measuring both side by side keeps
//! the pool honest: if the pooled path ever gets slower than just
//! allocating, the complexity is no longer paying for itself.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use netsim::Pcg32;
use p2p::{LookupId, Message, PeerId, QueryId, QueryKind};

/// A fixed, seeded message corpus spanning the hot message shapes: small
/// control traffic (queries), mid-size routed replies, and publishes.
fn corpus() -> Vec<Message> {
    let mut rng = Pcg32::new(0x9E4F, 0x77);
    let mut msgs = Vec::new();
    for round in 0..32u64 {
        msgs.push(Message::Query {
            id: QueryId(round),
            origin: PeerId(rng.below(1_000) as u32),
            prev_hop: PeerId(rng.below(1_000) as u32),
            ttl: 6,
            kind: QueryKind::ByService("triana".into()),
        });
        msgs.push(Message::FindNodeReply {
            lid: LookupId(round),
            from: PeerId(rng.below(1_000) as u32),
            closer: (0..16).map(|i| (rng.next_u64(), PeerId(i))).collect(),
        });
    }
    msgs
}

fn bench_wire_pool(c: &mut Criterion) {
    let msgs = corpus();
    let mut g = c.benchmark_group("wire_codec");
    g.throughput(Throughput::Elements(msgs.len() as u64));

    g.bench_with_input(
        BenchmarkId::new("encode", "allocating"),
        &msgs,
        |b, msgs| {
            b.iter(|| {
                let mut total = 0usize;
                for msg in msgs {
                    total += msg.encode().len();
                }
                total
            })
        },
    );
    g.bench_with_input(BenchmarkId::new("encode", "pooled"), &msgs, |b, msgs| {
        b.iter(|| {
            let mut total = 0usize;
            for msg in msgs {
                total += p2p::wire::with_buf(|buf| {
                    msg.encode_into(buf);
                    buf.len()
                });
            }
            total
        })
    });

    // Decode reads from a borrowed slice either way; the pooled variant
    // measures the full round-trip as the smoke harness drives it.
    let encoded: Vec<Vec<u8>> = msgs.iter().map(Message::encode).collect();
    g.bench_with_input(
        BenchmarkId::new("decode", "allocating"),
        &encoded,
        |b, encoded| {
            b.iter(|| {
                let mut ok = 0usize;
                for bytes in encoded {
                    ok += Message::decode(bytes).is_ok() as usize;
                }
                ok
            })
        },
    );
    g.bench_with_input(
        BenchmarkId::new("round_trip", "pooled"),
        &msgs,
        |b, msgs| {
            b.iter(|| {
                let mut ok = 0usize;
                for msg in msgs {
                    ok += p2p::wire::with_buf(|buf| {
                        msg.encode_into(buf);
                        Message::decode(buf).is_ok() as usize
                    });
                }
                ok
            })
        },
    );
    g.finish();
}

criterion_group!(benches, bench_wire_pool);
criterion_main!(benches);
