//! The discrete-event queue is on the hot path of every simulated scenario
//! (discovery, farming, pipelines): this measures raw push/pop cost so a
//! regression in the ordering structure shows up independently of the
//! overlay logic above it.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use netsim::{EventQueue, Pcg32, SimTime};

/// Pre-generated pseudo-random timestamps (the queue's cost depends on
/// insertion order, so keep it fixed and seeded).
fn times(n: usize) -> Vec<SimTime> {
    let mut rng = Pcg32::new(0xE7E7, 0x51);
    (0..n).map(|_| SimTime(rng.below(1_000_000))).collect()
}

fn bench_push_pop(c: &mut Criterion) {
    let mut g = c.benchmark_group("netsim_event_queue");
    for &n in &[1_024usize, 16_384] {
        let ts = times(n);
        g.throughput(Throughput::Elements(n as u64));
        // Fill then fully drain: the bulk pattern of a scenario wind-down.
        g.bench_with_input(BenchmarkId::new("push_then_pop", n), &ts, |b, ts| {
            b.iter(|| {
                let mut q: EventQueue<u64> = EventQueue::new();
                for (i, &t) in ts.iter().enumerate() {
                    q.push(t, i as u64);
                }
                let mut acc = 0u64;
                while let Some((_, ev)) = q.pop() {
                    acc = acc.wrapping_add(ev);
                }
                acc
            })
        });
        // Steady state: a resident backlog with one push per pop, the shape
        // of a long-running farm or overlay simulation.
        g.bench_with_input(BenchmarkId::new("steady_state", n), &ts, |b, ts| {
            b.iter(|| {
                let mut q: EventQueue<u64> = EventQueue::new();
                for (i, &t) in ts.iter().take(256).enumerate() {
                    q.push(t, i as u64);
                }
                let mut acc = 0u64;
                for (i, &t) in ts.iter().enumerate() {
                    let (at, ev) = q.pop().expect("backlog never empties");
                    acc = acc.wrapping_add(ev);
                    q.push(SimTime(at.as_micros() + 1 + t.as_micros()), i as u64);
                }
                acc
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_push_pop);
criterion_main!(benches);
