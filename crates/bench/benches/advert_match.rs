//! Discovery query matching: every query a rendezvous node or flooding
//! peer handles scans its advert cache through `Advertisement::matches`.
//! This measures that per-advert predicate over a realistic mixed cache.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use netsim::{Pcg32, SimTime};
use p2p::advert::{AdvertBody, BlobAdvert, ModuleAdvert, PeerAdvert};
use p2p::{Advertisement, PeerId, QueryKind};

/// A mixed advert cache: peers offering services, module records, blob
/// providers — the population a busy rendezvous node accumulates.
fn advert_cache(n: usize) -> Vec<Advertisement> {
    let mut rng = Pcg32::new(0xAD17, 0x0B);
    let expires = SimTime::from_secs(24 * 3600);
    (0..n)
        .map(|i| {
            let body = match i % 3 {
                0 => AdvertBody::Peer(PeerAdvert {
                    peer: PeerId(i as u32),
                    cpu_ghz: 0.5 + rng.below(30) as f64 * 0.1,
                    free_ram_mib: 128 + rng.below(8) as u32 * 128,
                    services: vec![if i % 6 == 0 { "triana" } else { "data-access" }.into()],
                }),
                1 => AdvertBody::Module(ModuleAdvert {
                    name: format!("Mod{}", i % 17).into(),
                    version: 1 + (i % 4) as u32,
                    hash: rng.next_u64(),
                    size_bytes: 4_096,
                    owner: PeerId(i as u32),
                }),
                _ => AdvertBody::Blob(BlobAdvert {
                    blob: i as u64,
                    size_bytes: 65_536,
                    chunks: 4,
                    provider: PeerId(i as u32),
                }),
            };
            Advertisement { body, expires }
        })
        .collect()
}

fn bench_advert_match(c: &mut Criterion) {
    let now = SimTime::from_secs(3600);
    let queries = [
        ("by_service", QueryKind::ByService("triana".into())),
        (
            "by_capability",
            QueryKind::ByCapability {
                min_cpu_ghz: 2.0,
                min_ram_mib: 512,
            },
        ),
        (
            "by_module",
            QueryKind::ByModule {
                name: "Mod3".into(),
                min_version: 2,
            },
        ),
    ];
    let mut g = c.benchmark_group("p2p_advert_match");
    for &n in &[1_024usize, 8_192] {
        let cache = advert_cache(n);
        g.throughput(Throughput::Elements(n as u64));
        for (label, kind) in &queries {
            g.bench_with_input(BenchmarkId::new(*label, n), &cache, |b, cache| {
                b.iter(|| cache.iter().filter(|ad| ad.matches(kind, now)).count())
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench_advert_match);
criterion_main!(benches);
