//! Engine overhead: the Figure 1 network through both executors.

use criterion::{criterion_group, criterion_main, Criterion};
use toolbox::standard_registry;
use triana_core::unit::Params;
use triana_core::{run_graph, EngineConfig, TaskGraph, UnitRegistry};

fn figure1() -> (TaskGraph, UnitRegistry) {
    let reg = standard_registry();
    let mut g = TaskGraph::new("Figure1");
    let wave = g
        .add_task(
            &reg,
            "Wave",
            "wave",
            Params::from([("samples".to_string(), "1024".to_string())]),
        )
        .unwrap();
    let noise = g
        .add_task(&reg, "GaussianNoise", "noise", Params::new())
        .unwrap();
    let ps = g
        .add_task(&reg, "PowerSpectrum", "pspec", Params::new())
        .unwrap();
    let acc = g
        .add_task(&reg, "AccumStat", "accum", Params::new())
        .unwrap();
    let gr = g
        .add_task(&reg, "Grapher", "grapher", Params::new())
        .unwrap();
    g.connect(wave, 0, noise, 0).unwrap();
    g.connect(noise, 0, ps, 0).unwrap();
    g.connect(ps, 0, acc, 0).unwrap();
    g.connect(acc, 0, gr, 0).unwrap();
    (g, reg)
}

fn bench_engine(c: &mut Criterion) {
    let (g, reg) = figure1();
    let mut grp = c.benchmark_group("engine_figure1_20iters");
    grp.sample_size(20);
    grp.bench_function("sequential", |b| {
        b.iter(|| {
            run_graph(
                &g,
                &reg,
                &EngineConfig {
                    iterations: 20,
                    threaded: false,
                },
            )
            .unwrap()
        })
    });
    grp.bench_function("threaded", |b| {
        b.iter(|| {
            run_graph(
                &g,
                &reg,
                &EngineConfig {
                    iterations: 20,
                    threaded: true,
                },
            )
            .unwrap()
        })
    });
    grp.finish();
}

fn bench_validation(c: &mut Criterion) {
    let (g, reg) = figure1();
    c.bench_function("validate_and_typecheck", |b| {
        b.iter(|| {
            g.validate().unwrap();
            g.typecheck(&reg).unwrap();
        })
    });
}

criterion_group!(benches, bench_engine, bench_validation);
criterion_main!(benches);
