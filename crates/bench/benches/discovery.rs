//! E5's kernel as a host-side cost: simulating one discovery query
//! (event processing, not simulated latency) under both modes.

use consumer_grid_bench::e05_discovery_scalability::run_once;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use p2p::DiscoveryMode;

fn bench_discovery(c: &mut Criterion) {
    let mut g = c.benchmark_group("discovery_query_sim");
    g.sample_size(20);
    for &n in &[100usize, 400] {
        g.bench_with_input(BenchmarkId::new("flooding", n), &n, |b, &n| {
            b.iter(|| run_once(n, DiscoveryMode::Flooding, 10, 1))
        });
        g.bench_with_input(BenchmarkId::new("rendezvous", n), &n, |b, &n| {
            b.iter(|| run_once(n, DiscoveryMode::Rendezvous, 10, 1))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_discovery);
criterion_main!(benches);
