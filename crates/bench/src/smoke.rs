//! Observability smoke scenario: one small, fully seeded run that touches
//! every instrumented subsystem — the local engine, the farm (with worker
//! churn and on-demand modules), P2P discovery, the TVM sandbox (including
//! a budget violation), and the XML dialect — all feeding a single shared
//! [`obs::Obs`] registry.
//!
//! The scenario is deterministic end to end: identical seeds produce a
//! byte-identical `snapshot_json()`. CI runs it via `repro --quick
//! --metrics-out <file>` and archives the snapshot, so a regression that
//! silently changes dispatch counts, discovery traffic, or sandbox
//! metering shows up as a diff in the artifact.

use netsim::avail::AvailabilityTrace;
use netsim::{HostSpec, Pcg32, SimTime};
use obs::Obs;
use p2p::advert::{AdvertBody, PeerAdvert};
use p2p::{Advertisement, DiscoveryMode, QueryKind};
use toolbox::standard_registry;
use transport::harness::{demo_module, run_sim, FarmSpec};
use transport::node::JobSpec as TransportJobSpec;
use transport::sim::SimNet;
use transport::{Endpoint, Transport, TransportEvent};
use triana_core::grid::farm::{run_farm, FarmConfig, FarmScheduler, JobSpec};
use triana_core::grid::{GridWorld, WorkerSetup};
use triana_core::unit::Params;
use triana_core::{run_graph_obs, EngineConfig, TaskGraph};
use trust::{GridTrustConfig, StragglerConfig};
use tvm::asm::assemble;
use tvm::SandboxPolicy;

const SEED: u64 = 0x5E11;

/// The Figure 1 signal chain used by the engine and XML stages.
fn figure1() -> TaskGraph {
    let reg = standard_registry();
    let mut g = TaskGraph::new("Smoke");
    let wave = g.add_task(&reg, "Wave", "wave", Params::new()).unwrap();
    let noise = g
        .add_task(&reg, "GaussianNoise", "noise", Params::new())
        .unwrap();
    let ps = g
        .add_task(&reg, "PowerSpectrum", "pspec", Params::new())
        .unwrap();
    let acc = g
        .add_task(&reg, "AccumStat", "accum", Params::new())
        .unwrap();
    g.connect(wave, 0, noise, 0).unwrap();
    g.connect(noise, 0, ps, 0).unwrap();
    g.connect(ps, 0, acc, 0).unwrap();
    g
}

fn engine_stage(observer: &Obs) {
    let reg = standard_registry();
    // XML round-trip first so the parse feeds the same registry.
    let g = figure1();
    let xml = taskgraph_xml::to_xml(&g);
    let parsed = taskgraph_xml::from_xml_obs(&xml, observer).expect("round-trip");
    // Sequential so the queue-depth histogram is populated (it is
    // interleaving-dependent and therefore skipped in threaded mode).
    run_graph_obs(
        &parsed,
        &reg,
        &EngineConfig {
            iterations: 3,
            threaded: false,
        },
        observer,
    )
    .expect("engine run");
}

fn farm_stage(observer: &Obs) {
    let mut world = GridWorld::new(SEED, DiscoveryMode::Flooding);
    world.net.set_obs(observer.clone());
    let (ctrl, _) = world.add_peer(HostSpec::lan_workstation());
    let mut farm = FarmScheduler::new(
        &world,
        ctrl,
        FarmConfig {
            trust: Some(GridTrustConfig {
                straggler: Some(StragglerConfig::default()),
                ..GridTrustConfig::default()
            }),
            ..FarmConfig::default()
        },
    );
    farm.set_obs(observer.clone());
    let horizon = SimTime::from_secs(1_000_000);
    for i in 0..4u64 {
        let mut spec = HostSpec::lan_workstation();
        // Worker 3 is a braggart straggler: twice the advertised clock,
        // a tenth of it delivered — it attracts the big job below and
        // forces a speculative re-dispatch.
        if i == 3 {
            spec.cpu_ghz *= 2.0;
        }
        let (peer, _) = world.add_peer(spec.clone());
        // Worker 2 goes down mid-run, forcing a migration/retry.
        let trace = if i == 2 {
            AvailabilityTrace::from_intervals(vec![(SimTime::ZERO, SimTime::from_secs(4))], horizon)
        } else {
            AvailabilityTrace::always(horizon)
        };
        let wid = farm.add_worker(
            &mut world,
            WorkerSetup {
                peer,
                spec,
                trace,
                cache_bytes: 64 << 10,
            },
        );
        if i == 3 {
            farm.set_worker_efficiency(wid, 0.1);
        }
    }
    let modules = crate::e08_code_on_demand::module_set(3);
    for (k, b) in &modules {
        farm.library.publish(k.clone(), b.clone());
    }
    // The big job lands on the braggart (fastest advert, everyone idle)
    // and straggles until the speculative duplicate beats it.
    farm.submit(
        &mut world,
        JobSpec {
            work_gigacycles: 40.0,
            input_bytes: 10_000,
            output_bytes: 2_000,
            module: None,
        },
    );
    let mut rng = Pcg32::new(SEED, 0xFA);
    for _ in 0..12 {
        let which = rng.below(modules.len() as u64) as usize;
        farm.submit(
            &mut world,
            JobSpec {
                work_gigacycles: 2.0,
                input_bytes: 10_000,
                output_bytes: 2_000,
                module: Some(modules[which].0.clone()),
            },
        );
    }
    run_farm(&mut world, &mut farm);
    assert!(farm.all_done(), "smoke farm must drain");
}

fn discovery_stage(observer: &Obs) {
    let mut sim: netsim::Sim<p2p::P2pEvent> = netsim::Sim::new(SEED);
    let mut net = netsim::Network::new();
    net.set_obs(observer.clone());
    let mut overlay = p2p::P2p::new(DiscoveryMode::Rendezvous);
    overlay.set_obs(observer.clone());
    let mut rng = Pcg32::new(SEED, 0xD1);
    let peers: Vec<_> = (0..24)
        .map(|_| {
            let h = net.add_host(HostSpec::sample_consumer(&mut rng));
            overlay.add_peer(h)
        })
        .collect();
    overlay.wire_random(4, &mut rng);
    overlay.assign_rendezvous(5, &mut rng);
    let expires = SimTime::from_secs(24 * 3600);
    for &peer in peers.iter().take(3) {
        let spec = net.spec(overlay.host_of(peer)).clone();
        let ad = Advertisement {
            body: AdvertBody::Peer(PeerAdvert {
                peer,
                cpu_ghz: spec.cpu_ghz,
                free_ram_mib: spec.ram_mib,
                services: vec!["triana".into()],
            }),
            expires,
        };
        overlay.publish(&mut sim, &mut net, peer, ad);
    }
    while let Some(ev) = sim.step() {
        overlay.handle(&mut sim, &mut net, ev);
    }
    overlay.query(
        &mut sim,
        &mut net,
        peers[10],
        QueryKind::ByService("triana".into()),
        4,
    );
    while let Some(ev) = sim.step() {
        overlay.handle(&mut sim, &mut net, ev);
    }
}

fn tvm_stage(observer: &Obs) {
    let doubler = assemble(
        ".module Doubler 1 0 1\n.func main 0\n push 21\n push 2\n mul\n outpush 0\n halt\n",
    )
    .expect("assembles");
    // Steady-state fast path: admit the blob to a module cache (which
    // verifies and prepares exactly once), then execute the prepared form
    // through a reusable context. The metering is identical to the legacy
    // per-call-verify path — same `ExecStats`, same error taxonomy — so
    // the pre-existing `tvm.*` counters keep their historical values.
    let mut cache = triana_core::modules::ModuleCache::new(64 << 10);
    cache.set_obs(observer.clone());
    let key = triana_core::ModuleKey::new("Doubler", 1);
    cache.insert(key.clone(), doubler.to_blob());
    let prepared = cache.get_prepared(&key).expect("prepared at admission");
    let mut ctx = tvm::ExecContext::new();
    let (out, _) = prepared
        .execute_obs(&[], &SandboxPolicy::standard(), &mut ctx, observer)
        .expect("doubler runs");
    assert_eq!(out[0], vec![42.0]);
    // A re-lookup is a prepared-cache hit; an absent key is a miss.
    assert!(cache.get_prepared(&key).is_some());
    assert!(cache
        .get_prepared(&triana_core::ModuleKey::new("Absent", 1))
        .is_none());
    // A hostile spin loop trips the instruction budget — the prepared path
    // reports the same violation the legacy interpreter did.
    let spin = assemble(".module Spin 1 0 0\n.func main 0\nloop:\n jmp loop\n").expect("assembles");
    let tight = SandboxPolicy {
        max_instructions: 500,
        ..SandboxPolicy::standard()
    };
    let spin_prepared = tvm::PreparedModule::prepare(&spin).expect("verifies");
    let err = spin_prepared
        .execute_obs(&[], &tight, &mut ctx, observer)
        .expect_err("budget must trip");
    assert_eq!(err, tvm::TvmError::BudgetExceeded);

    // Tier-2 segment: a countdown loop admits as tier 2 under the cache's
    // Auto policy (`tvm.tier2_regions` moves at admission), a batched
    // dispatch drives the batch counters, and a budget two short of the
    // exact run cost forces one register-loop fallback — the precondition
    // fails inside the final iteration, so `tvm.tier2_fallback_exits`
    // lands in the snapshot with a deterministic nonzero value.
    let looper = assemble(
        ".module SmokeLoop 1 0 1\n.func main 1\n push 5\n store 0\nloop:\n load 0\n outpush 0\n \
         load 0\n push 1\n sub\n store 0\n load 0\n jnz loop\n halt\n",
    )
    .expect("assembles");
    let lkey = triana_core::ModuleKey::new("SmokeLoop", 1);
    cache.insert(lkey.clone(), looper.to_blob());
    let tier = cache.get_prepared(&lkey).expect("admitted");
    assert_eq!(tier.tier_name(), "tier2");
    assert_eq!(tier.regions_translated(), 1);
    let (out, stats) = tier
        .execute_obs(&[], &SandboxPolicy::standard(), &mut ctx, observer)
        .expect("loop runs");
    assert_eq!(out[0], vec![5.0, 4.0, 3.0, 2.0, 1.0]);
    let batch = tier.execute_batch_obs(
        &[&[], &[], &[]],
        &SandboxPolicy::standard(),
        &mut ctx,
        observer,
    );
    assert!(batch.iter().all(|r| r.is_ok()));
    let short = SandboxPolicy {
        max_instructions: stats.instructions - 2,
        ..SandboxPolicy::standard()
    };
    let err = tier
        .execute_obs(&[], &short, &mut ctx, observer)
        .expect_err("two instructions short must trip the budget");
    assert_eq!(err, tvm::TvmError::BudgetExceeded);
}

fn transport_stage(observer: &Obs) {
    // Link-fault segment: a frame sent while the peer is offline is lost,
    // retransmitted on the backoff timer, and delivered once the peer
    // returns — moving `transport.retransmits` deterministically.
    let net = SimNet::new(SEED ^ 0x7A);
    net.set_obs(observer.clone());
    let mut a = net.add_endpoint(Endpoint(1), HostSpec::reference_pc());
    let mut b = net.add_endpoint(Endpoint(2), HostSpec::reference_pc());
    net.set_online(Endpoint(2), false);
    a.send(Endpoint(2), vec![42]).expect("peer registered");
    net.set_online(Endpoint(2), true);
    while net.step() {}
    let mut evs = Vec::new();
    b.poll(&mut evs);
    assert!(
        evs.contains(&TransportEvent::Delivered {
            from: Endpoint(1),
            payload: vec![42],
        }),
        "retransmitted frame must arrive once the peer is back"
    );
    assert!(net.counters(Endpoint(1)).retransmits > 0);
    // Fold the frame-payload arena counters into the snapshot: the retry
    // recycled the first frame's slot, so `netsim.payload_reuses` moves.
    net.publish_arena_stats();

    // Durable-restart segment: the same farm runs cold then warm over one
    // set of durable store directories, so `transport.recovered_chunks`
    // lands in the snapshot with a deterministic nonzero value. The
    // directory paths are process-unique scratch space and never enter
    // the snapshot; they are removed before and after so repeated
    // invocations see an identical cold start.
    let dirs: Vec<std::path::PathBuf> = (0..2)
        .map(|i| {
            std::env::temp_dir().join(format!("triana-smoke-transport-{}-{i}", std::process::id()))
        })
        .collect();
    for d in &dirs {
        let _ = std::fs::remove_dir_all(d);
    }
    let (module, blob) = demo_module("smoke_scale", 1, 300);
    let spec = FarmSpec {
        chunk_bytes: 256,
        cache_capacity: 1 << 20,
        n_workers: 2,
        modules: vec![(module.clone(), blob)],
        jobs: (0..4)
            .map(|i| TransportJobSpec {
                module: module.clone(),
                input: vec![i as f64 + 1.0],
            })
            .collect(),
        durable_dirs: Some(dirs.clone()),
    };
    let cold = run_sim(&spec, SEED, observer.clone());
    assert_eq!(cold.results.len(), 4, "transport smoke farm must drain");
    assert_eq!(cold.recovered_chunks, 0, "cold start recovers nothing");
    let warm = run_sim(&spec, SEED, observer.clone());
    assert_eq!(warm.results, cold.results);
    assert!(
        warm.recovered_chunks > 0,
        "warm restart must reuse the durable cache"
    );
    for d in &dirs {
        let _ = std::fs::remove_dir_all(d);
    }
}

fn wire_stage(observer: &Obs) {
    // Pooled wire-codec segment: encode a deterministic message corpus
    // through the thread-local scratch pool and decode it back. The pool
    // is fully reset first so repeated runs on one thread count identical
    // cold-start misses; the rest of the loop is all hits, giving the
    // snapshot stable nonzero values for both counters.
    p2p::wire::buf_pool_reset();
    let expires = SimTime::from_secs(3600);
    let mut rng = Pcg32::new(SEED, 0x3B);
    for round in 0..32u64 {
        let msgs = [
            p2p::Message::Query {
                id: p2p::QueryId(round),
                origin: p2p::PeerId(1),
                prev_hop: p2p::PeerId(2),
                ttl: 4,
                kind: QueryKind::ByService("triana".into()),
            },
            p2p::Message::Publish {
                advert: Advertisement {
                    body: AdvertBody::Peer(PeerAdvert {
                        peer: p2p::PeerId(rng.below(64) as u32),
                        cpu_ghz: 2.5,
                        free_ram_mib: 512,
                        services: vec!["triana".into(), "data-access".into()],
                    }),
                    expires,
                },
            },
            p2p::Message::FindNodeReply {
                lid: p2p::LookupId(round),
                from: p2p::PeerId(3),
                closer: (0..8).map(|i| (rng.next_u64(), p2p::PeerId(i))).collect(),
            },
        ];
        for msg in &msgs {
            let decoded = p2p::wire::with_buf(|buf| {
                msg.encode_into(buf);
                p2p::Message::decode(buf).expect("round-trip")
            });
            assert_eq!(&decoded, msg);
        }
    }
    let stats = p2p::wire::buf_pool_stats();
    assert!(stats.hits > stats.misses, "steady state must be pool hits");
    observer.add("wire.buf_pool_hits", stats.hits);
    observer.add("wire.buf_pool_misses", stats.misses);
}

/// Run the full smoke scenario into `observer` (which must be enabled for
/// the snapshot to exist, but a disabled handle still exercises every
/// subsystem).
pub fn run(observer: &Obs) {
    engine_stage(observer);
    farm_stage(observer);
    discovery_stage(observer);
    tvm_stage(observer);
    transport_stage(observer);
    wire_stage(observer);
}

/// Human-readable report over the counters the scenario is expected to move.
pub fn report() -> String {
    let observer = Obs::enabled();
    run(&observer);
    report_with(&observer)
}

/// Render the report from an observer that [`run`] already populated.
pub fn report_with(observer: &Obs) -> String {
    let reg = observer.registry().expect("enabled");
    let mut out = String::from("## Observability smoke (seeded, deterministic)\n\n");
    for key in [
        "engine.runs",
        "engine.tokens_emitted",
        "farm.dispatches",
        "farm.completions",
        "farm.retries",
        "farm.module_cache_hits",
        "farm.module_cache_misses",
        "trust.straggler_checks",
        "trust.speculative_dispatches",
        "trust.speculative_wins",
        "trust.abandons",
        "p2p.messages_sent",
        "p2p.query_hits",
        "tvm.executions",
        "tvm.prepares",
        "tvm.prepared_cache_hits",
        "tvm.prepared_cache_misses",
        "tvm.tier2_regions",
        "tvm.tier2_batch_runs",
        "tvm.tier2_batch_inputs",
        "tvm.tier2_fallback_exits",
        "tvm.violations.budget",
        "transport.frames_sent",
        "transport.frames_recv",
        "transport.retransmits",
        "transport.acks",
        "transport.recovered_chunks",
        "netsim.payload_allocs",
        "netsim.payload_reuses",
        "wire.buf_pool_hits",
        "wire.buf_pool_misses",
        "net.transfers",
        "xml.parses",
    ] {
        out.push_str(&format!("{key:<28} {}\n", reg.counter_value(key)));
    }
    out.push_str(&format!(
        "events recorded              {}\n",
        reg.event_count()
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_moves_every_subsystem_counter() {
        let observer = Obs::enabled();
        run(&observer);
        let reg = observer.registry().unwrap();
        for key in [
            "engine.runs",
            "engine.tokens_emitted",
            "farm.dispatches",
            "farm.completions",
            "farm.module_cache_misses",
            "trust.straggler_checks",
            "trust.speculative_dispatches",
            "trust.speculative_wins",
            "trust.abandons",
            "p2p.messages_sent",
            "p2p.advert_cache_inserts",
            "tvm.executions",
            "tvm.prepares",
            "tvm.prepared_cache_hits",
            "tvm.prepared_cache_misses",
            "tvm.tier2_regions",
            "tvm.tier2_batch_runs",
            "tvm.tier2_batch_inputs",
            "tvm.tier2_fallback_exits",
            "tvm.violations.budget",
            "transport.frames_sent",
            "transport.frames_recv",
            "transport.retransmits",
            "transport.acks",
            "transport.recovered_chunks",
            "netsim.payload_allocs",
            "netsim.payload_reuses",
            "wire.buf_pool_hits",
            "wire.buf_pool_misses",
            "net.transfers",
            "xml.parses",
        ] {
            assert!(reg.counter_value(key) > 0, "counter {key} never moved");
        }
        assert!(reg.event_count() > 0, "events must be recorded");
        // The prepare-cost histogram is deterministic (modeled virtual
        // time, not wall clock) and must land in the snapshot.
        assert!(
            observer
                .snapshot_json()
                .unwrap()
                .contains("\"tvm.prepare_us\""),
            "prepare histogram missing from deterministic snapshot"
        );
    }

    #[test]
    fn smoke_snapshot_is_deterministic() {
        let a = Obs::enabled();
        run(&a);
        let b = Obs::enabled();
        run(&b);
        assert_eq!(a.snapshot_json().unwrap(), b.snapshot_json().unwrap());
    }
}
