//! E13 — peer profiling and adaptive scheduling over the consumer grid.
//!
//! The paper's controller picks workers from their advertised "machine
//! type, speed, memory" (§3.7) and trusts whatever comes back. This
//! experiment measures what the `triana-trust` layer buys when adverts
//! lie and volunteers churn (§3.6.2):
//!
//! * **(a) policy comparison** — a streaming workload over a heterogeneous
//!   pool containing "braggarts" (fast adverts, slow delivery, frequent
//!   churn). The memoryless `first-idle` policy chases the adverts; the
//!   profiled policies learn delivered speed and availability and route
//!   around the braggarts, cutting wasted compute and completion times.
//! * **(b) straggler mitigation** — a worker that delivers a tenth of its
//!   advert turns one job into the workload's critical path. Speculative
//!   re-dispatch duplicates the straggling job onto an idle peer, first
//!   completion wins, and the loser's compute is metered as waste.
//! * **(c) adaptive replication** — SETI-style voting (E12) pays the
//!   replication factor on every unit forever. With trust-adaptive
//!   replication, workers with a proven clean streak graduate to
//!   single-replica (audit-free) units while suspects keep facing full
//!   votes and blacklisting — same zero wrong-accepts, far fewer replicas.

use crate::table;
use netsim::avail::{AvailabilityModel, AvailabilityTrace};
use netsim::{Duration, HostSpec, SimTime};
use p2p::DiscoveryMode;
use triana_core::grid::farm::{run_farm, FarmConfig, FarmScheduler, JobSpec};
use triana_core::grid::redundancy::{AdaptiveConfig, Behaviour, RedundancyConfig, VotingFarm};
use triana_core::grid::{GridWorld, WorkerId, WorkerSetup};
use trust::{GridTrustConfig, PolicyHandle, StragglerConfig};

/// Outcome of one scheduling policy over the churny heterogeneous pool.
#[derive(Clone, Copy, Debug)]
pub struct PolicyPoint {
    pub policy: &'static str,
    pub makespan_s: f64,
    pub mean_latency_s: f64,
    pub max_latency_s: f64,
    /// Compute lost to churn-interrupted runs.
    pub wasted_s: f64,
    /// Re-dispatches after interruptions.
    pub migrations: u64,
    /// Fraction of jobs whose accepted result came from a braggart.
    pub braggart_share: f64,
}

const BRAGGARTS: u32 = 4;

/// Fixed seeds for the policy comparison. Makespan is dominated by the
/// placement of the final arrivals, so a single seed can tie; the
/// comparison aggregates a few deterministic runs instead.
pub const POLICY_SEEDS: [u64; 3] = [0xE13, 7, 99];

/// Mean of [`run_policy`] over [`POLICY_SEEDS`] (migrations summed).
pub fn run_policy_avg(policy: PolicyHandle) -> PolicyPoint {
    let pts: Vec<PolicyPoint> = POLICY_SEEDS
        .iter()
        .map(|&s| run_policy(policy.clone(), s))
        .collect();
    let n = pts.len() as f64;
    PolicyPoint {
        policy: policy.name(),
        makespan_s: pts.iter().map(|p| p.makespan_s).sum::<f64>() / n,
        mean_latency_s: pts.iter().map(|p| p.mean_latency_s).sum::<f64>() / n,
        max_latency_s: pts.iter().map(|p| p.max_latency_s).sum::<f64>() / n,
        wasted_s: pts.iter().map(|p| p.wasted_s).sum::<f64>() / n,
        migrations: pts.iter().map(|p| p.migrations).sum(),
        braggart_share: pts.iter().map(|p| p.braggart_share).sum::<f64>() / n,
    }
}

/// Streaming workload (one 150 Gc job every 60 s) over 12 workers:
/// 4 braggarts (3 GHz advertised, half delivered, churny), 4 steady 2 GHz,
/// 4 slow-but-steady 1.2 GHz.
pub fn run_policy(policy: PolicyHandle, seed: u64) -> PolicyPoint {
    let name = policy.name();
    let horizon = SimTime::from_secs(200_000);
    let mut world = GridWorld::new(seed, DiscoveryMode::Flooding);
    let (ctrl, _) = world.add_peer(HostSpec::lan_workstation());
    let mut farm = FarmScheduler::new(
        &world,
        ctrl,
        FarmConfig {
            trust: Some(GridTrustConfig {
                policy,
                ..GridTrustConfig::default()
            }),
            ..FarmConfig::default()
        },
    );
    let mut rng = world.sim.stream(0xE13);
    for i in 0..12u32 {
        let mut spec = HostSpec::lan_workstation();
        let (ghz, eff, trace) = if i < BRAGGARTS {
            // Fast advert, half the delivery, and frequent walk-aways.
            let model = AvailabilityModel::Exponential {
                mean_up: Duration::from_secs(600),
                mean_down: Duration::from_secs(300),
            };
            (3.0, 0.5, model.trace(horizon, &mut rng))
        } else if i < 8 {
            (2.0, 1.0, AvailabilityTrace::always(horizon))
        } else {
            (1.2, 1.0, AvailabilityTrace::always(horizon))
        };
        spec.cpu_ghz = ghz;
        let (peer, _) = world.add_peer(spec.clone());
        let wid = farm.add_worker(
            &mut world,
            WorkerSetup {
                peer,
                spec,
                trace,
                cache_bytes: 1 << 20,
            },
        );
        farm.set_worker_efficiency(wid, eff);
    }
    farm.chunk_spec = Some(JobSpec {
        // 75 s on a steady 2 GHz peer, 100 s on a braggart's delivered
        // 1.5 GHz, 125 s on a slow 1.2 GHz peer — the braggarts' adverts
        // are the best, their delivery is not.
        work_gigacycles: 150.0,
        input_bytes: 100_000,
        output_bytes: 10_000,
        module: None,
    });
    farm.schedule_chunks(&mut world.sim, Duration::from_secs(60), 60);
    run_farm(&mut world, &mut farm);
    let s = farm.stats();
    assert_eq!(s.jobs_done, s.jobs_total, "stream must drain");
    let braggart_jobs = (0..s.jobs_total)
        .filter(|&j| {
            farm.job_completed_by(triana_core::grid::JobId(j))
                .is_some_and(|w| w.0 < BRAGGARTS)
        })
        .count();
    PolicyPoint {
        policy: name,
        makespan_s: s.makespan.as_secs_f64(),
        mean_latency_s: s.total_latency.as_secs_f64() / s.jobs_done as f64,
        max_latency_s: s.max_latency.as_secs_f64(),
        wasted_s: s.wasted.as_secs_f64(),
        migrations: s.attempts - s.jobs_done,
        braggart_share: braggart_jobs as f64 / s.jobs_total as f64,
    }
}

/// Outcome of the straggler-mitigation ablation.
#[derive(Clone, Copy, Debug)]
pub struct StragglerPoint {
    pub speculation: bool,
    pub makespan_s: f64,
    pub max_latency_s: f64,
    pub spec_dispatches: u64,
    pub spec_wins: u64,
    pub wasted_s: f64,
}

/// 8 × 100 Gc jobs over 4 workers, one of which delivers a tenth of its
/// 3 GHz advert — without speculation that worker's first job IS the
/// makespan.
pub fn run_straggler(speculate: bool, seed: u64) -> StragglerPoint {
    let horizon = SimTime::from_secs(1_000_000);
    let mut world = GridWorld::new(seed, DiscoveryMode::Flooding);
    let (ctrl, _) = world.add_peer(HostSpec::lan_workstation());
    let mut farm = FarmScheduler::new(
        &world,
        ctrl,
        FarmConfig {
            trust: Some(GridTrustConfig {
                straggler: speculate.then(StragglerConfig::default),
                ..GridTrustConfig::default()
            }),
            ..FarmConfig::default()
        },
    );
    for i in 0..4u32 {
        let mut spec = HostSpec::lan_workstation();
        spec.cpu_ghz = if i == 0 { 3.0 } else { 2.0 };
        let (peer, _) = world.add_peer(spec.clone());
        let wid = farm.add_worker(
            &mut world,
            WorkerSetup {
                peer,
                spec,
                trace: AvailabilityTrace::always(horizon),
                cache_bytes: 1 << 20,
            },
        );
        if i == 0 {
            farm.set_worker_efficiency(wid, 0.1); // 333 s where 33 s was advertised
        }
    }
    for _ in 0..8 {
        farm.submit(
            &mut world,
            JobSpec {
                work_gigacycles: 100.0,
                input_bytes: 100_000,
                output_bytes: 10_000,
                module: None,
            },
        );
    }
    run_farm(&mut world, &mut farm);
    let s = farm.stats();
    assert_eq!(s.jobs_done, 8);
    StragglerPoint {
        speculation: speculate,
        makespan_s: s.makespan.as_secs_f64(),
        max_latency_s: s.max_latency.as_secs_f64(),
        spec_dispatches: s.spec_dispatches,
        spec_wins: s.spec_wins,
        wasted_s: s.wasted.as_secs_f64(),
    }
}

/// Outcome of one replication mode against the cheating population.
#[derive(Clone, Copy, Debug)]
pub struct ReplicationPoint {
    pub mode: &'static str,
    pub units: usize,
    /// Farm jobs spent (the replication cost).
    pub total_replicas: usize,
    pub wrong_accepted: usize,
    pub accepted_on_trust: usize,
    /// Cheaters excluded by the blacklist floor at the end.
    pub blacklisted: usize,
}

const REPLICATION_UNITS: usize = 50;
// One cheater: two cheaters paired on the same unit each return a
// *different* wrong digest, leaving no quorum (Unresolved) — nobody is
// blamed, which shields both from the blacklist floor (E12's 2-replica
// row shows the same detect-but-cannot-decide effect).
const CHEATERS: u32 = 1;

/// 50 logical units in waves of 5 over 6 honest + 1 always-cheating
/// worker, either with fixed SETI-style triple redundancy or with
/// trust-adaptive replication. The pool is tight enough that replicas
/// keep landing on the cheater until the blacklist floor removes it.
pub fn run_replication(adaptive: bool, seed: u64) -> ReplicationPoint {
    let mut behaviours = vec![Behaviour::Cheater { cheat_prob: 1.0 }; CHEATERS as usize];
    behaviours.extend(std::iter::repeat_n(Behaviour::Honest, 6));
    let horizon = SimTime::from_secs(10_000_000);
    let mut world = GridWorld::new(seed, DiscoveryMode::Flooding);
    let (ctrl, _) = world.add_peer(HostSpec::lan_workstation());
    let mut farm = FarmScheduler::new(
        &world,
        ctrl,
        FarmConfig {
            trust: Some(GridTrustConfig::adaptive()),
            ..FarmConfig::default()
        },
    );
    for _ in 0..behaviours.len() {
        let spec = HostSpec::lan_workstation();
        let (peer, _) = world.add_peer(spec.clone());
        farm.add_worker(
            &mut world,
            WorkerSetup {
                peer,
                spec,
                trace: AvailabilityTrace::always(horizon),
                cache_bytes: 1 << 20,
            },
        );
    }
    let mut voting = VotingFarm::new(RedundancyConfig::triple(), behaviours, seed);
    voting.set_adaptive(AdaptiveConfig::default());
    let spec = JobSpec {
        work_gigacycles: 10.0,
        input_bytes: 10_000,
        output_bytes: 1_000,
        module: None,
    };
    for wave in 0..(REPLICATION_UNITS / 5) {
        let units: Vec<usize> = (0..5)
            .map(|_| {
                if adaptive {
                    voting.submit_unit_adaptive(&mut farm, &mut world, spec.clone())
                } else {
                    voting.submit_unit(&mut farm, &mut world, spec.clone())
                }
            })
            .collect();
        run_farm(&mut world, &mut farm);
        if adaptive {
            for &u in &units {
                voting.resolve_unit(&mut farm, &mut world, u);
            }
            run_farm(&mut world, &mut farm);
        }
        for &u in &units {
            voting.apply_unit(&mut farm, u);
        }
        let _ = wave;
    }
    let wrong_accepted = (0..voting.units.len())
        .filter(|&u| voting.accepted_digest_is_wrong(&farm, u))
        .count();
    let blacklisted = (0..CHEATERS)
        .filter(|&w| farm.worker_blacklisted(WorkerId(w)))
        .count();
    ReplicationPoint {
        mode: if adaptive { "adaptive" } else { "fixed x3" },
        units: voting.units.len(),
        total_replicas: voting.total_replicas(),
        wrong_accepted,
        accepted_on_trust: voting.accepted_on_trust(),
        blacklisted,
    }
}

pub fn report() -> String {
    let policies = [
        PolicyHandle::first_idle(),
        PolicyHandle::fastest_profiled(),
        PolicyHandle::reliability_weighted(),
    ];
    let policy_rows: Vec<Vec<String>> = policies
        .into_iter()
        .map(|p| {
            let r = run_policy_avg(p);
            vec![
                r.policy.to_string(),
                table::f(r.makespan_s, 0),
                table::f(r.mean_latency_s, 1),
                table::f(r.max_latency_s, 1),
                table::f(r.wasted_s, 1),
                r.migrations.to_string(),
                table::f(r.braggart_share, 2),
            ]
        })
        .collect();
    let straggler_rows: Vec<Vec<String>> = [false, true]
        .into_iter()
        .map(|sp| {
            let r = run_straggler(sp, 0xE13);
            vec![
                if sp { "speculative" } else { "none" }.to_string(),
                table::f(r.makespan_s, 1),
                table::f(r.max_latency_s, 1),
                r.spec_dispatches.to_string(),
                r.spec_wins.to_string(),
                table::f(r.wasted_s, 1),
            ]
        })
        .collect();
    let replication_rows: Vec<Vec<String>> = [false, true]
        .into_iter()
        .map(|ad| {
            let r = run_replication(ad, 0xE13);
            vec![
                r.mode.to_string(),
                r.units.to_string(),
                r.total_replicas.to_string(),
                r.wrong_accepted.to_string(),
                r.accepted_on_trust.to_string(),
                r.blacklisted.to_string(),
            ]
        })
        .collect();
    format!(
        "E13 Peer profiling & adaptive scheduling\n\
         \n\
         (a) Scheduling policy over 12 heterogeneous workers (4 churny\n\
         braggarts advertising 3 GHz, delivering 1.5), 60 streamed jobs,\n\
         mean of 3 seeded runs:\n\n{}\n\
         (b) Straggler mitigation (1 worker delivering 10% of its advert,\n\
         8 jobs on 4 workers):\n\n{}\n\
         (c) Replication cost vs an always-cheating worker in a pool of 7\n\
         (50 units, waves of 5):\n\n{}",
        table::render(
            &[
                "policy",
                "makespan s",
                "mean lat s",
                "max lat s",
                "wasted s",
                "migrations",
                "braggart share"
            ],
            &policy_rows
        ),
        table::render(
            &[
                "speculation",
                "makespan s",
                "max lat s",
                "dispatched",
                "wins",
                "wasted s"
            ],
            &straggler_rows
        ),
        table::render(
            &[
                "mode",
                "units",
                "replicas",
                "wrong ok'd",
                "on trust",
                "blacklisted"
            ],
            &replication_rows
        )
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reliability_weighted_beats_first_idle_under_churn() {
        let fi = run_policy_avg(PolicyHandle::first_idle());
        let rw = run_policy_avg(PolicyHandle::reliability_weighted());
        // The memoryless policy keeps chasing the 3 GHz adverts.
        assert!(fi.braggart_share > rw.braggart_share, "{fi:?}\n{rw:?}");
        // Learning delivered speed and availability cuts churn waste and
        // completion times.
        assert!(rw.wasted_s < fi.wasted_s, "{fi:?}\n{rw:?}");
        assert!(rw.makespan_s < fi.makespan_s, "{fi:?}\n{rw:?}");
        assert!(rw.mean_latency_s < fi.mean_latency_s, "{fi:?}\n{rw:?}");
    }

    #[test]
    fn fastest_profiled_also_learns_past_the_adverts() {
        let fi = run_policy_avg(PolicyHandle::first_idle());
        let fp = run_policy_avg(PolicyHandle::fastest_profiled());
        assert!(fp.braggart_share < fi.braggart_share, "{fi:?}\n{fp:?}");
        assert!(fp.mean_latency_s < fi.mean_latency_s, "{fi:?}\n{fp:?}");
    }

    #[test]
    fn speculation_bounds_straggler_latency() {
        let plain = run_straggler(false, 0xE13);
        let spec = run_straggler(true, 0xE13);
        // Without speculation the slug's job dominates everything.
        assert!(plain.max_latency_s > 300.0, "{plain:?}");
        assert_eq!(plain.spec_dispatches, 0);
        // With it, the duplicate wins and the tail collapses.
        assert!(spec.spec_dispatches >= 1, "{spec:?}");
        assert!(spec.spec_wins >= 1, "{spec:?}");
        assert!(
            spec.max_latency_s < plain.max_latency_s / 1.5,
            "{plain:?}\n{spec:?}"
        );
        assert!(spec.makespan_s < plain.makespan_s, "{plain:?}\n{spec:?}");
        // The cancelled primary's compute is metered, not hidden.
        assert!(spec.wasted_s > 0.0, "{spec:?}");
    }

    #[test]
    fn adaptive_replication_cuts_cost_at_equal_accuracy() {
        let fixed = run_replication(false, 0xE13);
        let adaptive = run_replication(true, 0xE13);
        // Equal accuracy: the cheaters never get a wrong result accepted.
        assert_eq!(fixed.wrong_accepted, 0, "{fixed:?}");
        assert_eq!(adaptive.wrong_accepted, 0, "{adaptive:?}");
        // Far fewer replicas once honest workers are proven.
        assert!(
            adaptive.total_replicas < fixed.total_replicas,
            "{fixed:?}\n{adaptive:?}"
        );
        assert!(adaptive.accepted_on_trust > 0, "{adaptive:?}");
        // Both modes end with the cheater under the blacklist floor.
        assert_eq!(fixed.blacklisted, CHEATERS as usize, "{fixed:?}");
        assert_eq!(adaptive.blacklisted, CHEATERS as usize, "{adaptive:?}");
    }
}
