//! E5 — §3.7 / ref \[7\]: discovery scalability, flooding vs rendezvous.
//!
//! Paper: "A number of P2P application utilise a 'flooding' mechanism to
//! forward messages to maximise reachability. This severely restricts the
//! scalability of such approaches … Currently, we utilise the discovery
//! processes within JXTA … relying on Triana peers to be discovered based
//! on very simple attributes".
//!
//! Reproduction: identical random overlays of growing size; 5% of peers
//! offer the sought service; one capability query from a random peer under
//! (a) TTL-limited flooding and (b) rendezvous super-peers (√n of them).
//! Shape to match: flooding's per-query message count grows ~linearly with
//! network size (every peer is visited), rendezvous stays near-constant
//! per query; both find providers.

use crate::table;
use netsim::{HostSpec, Pcg32, SimTime};
use netsim::{Network, Sim};
use p2p::advert::{AdvertBody, PeerAdvert};
use p2p::P2pEvent;
use p2p::{Advertisement, DiscoveryMode, P2p, PeerId, QueryKind};

/// One measured point.
#[derive(Clone, Copy, Debug)]
pub struct DiscoveryPoint {
    pub peers: usize,
    pub mode: DiscoveryMode,
    pub messages: u64,
    pub peers_visited: u64,
    pub providers_found: usize,
    pub providers_total: usize,
    pub first_hit_ms: f64,
}

/// Run one discovery experiment on a fresh world.
pub fn run_once(n: usize, mode: DiscoveryMode, ttl: u8, seed: u64) -> DiscoveryPoint {
    let mut sim: Sim<P2pEvent> = Sim::new(seed);
    let mut net = Network::new();
    let mut p2p = P2p::new(mode);
    let mut rng = Pcg32::new(seed, 5);
    for _ in 0..n {
        let spec = HostSpec::sample_consumer(&mut rng);
        let h = net.add_host(spec);
        p2p.add_peer(h);
    }
    p2p.wire_random(4, &mut rng);
    if mode == DiscoveryMode::Rendezvous {
        let count = (n as f64).sqrt().ceil() as usize;
        p2p.assign_rendezvous(count.max(1), &mut rng);
    }
    // 5% of peers (at least one) offer the service.
    let providers_total = (n / 20).max(1);
    let expires = SimTime::from_secs(24 * 3600);
    let mut provider_ids: Vec<u32> = (0..n as u32).collect();
    rng.shuffle(&mut provider_ids);
    for &pid in provider_ids.iter().take(providers_total) {
        let peer = PeerId(pid);
        let spec = net.spec(p2p.host_of(peer)).clone();
        let ad = Advertisement {
            body: AdvertBody::Peer(PeerAdvert {
                peer,
                cpu_ghz: spec.cpu_ghz,
                free_ram_mib: spec.ram_mib,
                services: vec!["triana".into()],
            }),
            expires,
        };
        p2p.publish(&mut sim, &mut net, peer, ad);
    }
    // Drain publish traffic before measuring the query.
    while let Some(ev) = sim.step() {
        p2p.handle(&mut sim, &mut net, ev);
    }
    net.reset_stats();
    let origin = PeerId(provider_ids[providers_total % n]); // non-provider-ish random origin
    let q = p2p.query(
        &mut sim,
        &mut net,
        origin,
        QueryKind::ByService("triana".into()),
        ttl,
    );
    while let Some(ev) = sim.step() {
        p2p.handle(&mut sim, &mut net, ev);
    }
    let status = &p2p.queries[&q];
    DiscoveryPoint {
        peers: n,
        mode,
        messages: status.messages,
        peers_visited: status.peers_visited,
        providers_found: status.providers().len(),
        providers_total,
        first_hit_ms: status
            .first_hit_latency()
            .map_or(f64::NAN, |d| d.as_secs_f64() * 1e3),
    }
}

/// Both modes across network sizes.
pub fn series(sizes: &[usize], ttl: u8) -> Vec<DiscoveryPoint> {
    let mut out = Vec::new();
    for &n in sizes {
        for mode in [DiscoveryMode::Flooding, DiscoveryMode::Rendezvous] {
            out.push(run_once(n, mode, ttl, 60 + n as u64));
        }
    }
    out
}

pub fn report() -> String {
    let pts = series(&[50, 100, 200, 400, 800], 10);
    let rows: Vec<Vec<String>> = pts
        .iter()
        .map(|p| {
            vec![
                p.peers.to_string(),
                format!("{:?}", p.mode),
                p.messages.to_string(),
                p.peers_visited.to_string(),
                format!("{}/{}", p.providers_found, p.providers_total),
                table::f(p.first_hit_ms, 1),
            ]
        })
        .collect();
    format!(
        "E5  Discovery scalability: flooding vs rendezvous (ttl=10, degree 4, 5% providers)\n\n{}",
        table::render(
            &[
                "peers",
                "mode",
                "msgs/query",
                "visited",
                "found",
                "1st hit ms"
            ],
            &rows
        )
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flooding_messages_grow_linearly_with_network() {
        let small = run_once(100, DiscoveryMode::Flooding, 12, 1);
        let large = run_once(400, DiscoveryMode::Flooding, 12, 2);
        assert!(
            large.messages as f64 > small.messages as f64 * 2.5,
            "flooding should scale with n: {} -> {}",
            small.messages,
            large.messages
        );
        // Flooding visits essentially everyone (the "maximise reachability"
        // behaviour).
        assert!(large.peers_visited as f64 > 0.95 * 400.0);
    }

    #[test]
    fn rendezvous_messages_grow_much_slower() {
        let small = run_once(100, DiscoveryMode::Rendezvous, 12, 3);
        let large = run_once(400, DiscoveryMode::Rendezvous, 12, 4);
        // Rendezvous grows ~sqrt(n) (the super-peer tier), not ~n.
        assert!(
            (large.messages as f64) < (small.messages as f64) * 3.0,
            "{} -> {}",
            small.messages,
            large.messages
        );
        let flood = run_once(400, DiscoveryMode::Flooding, 12, 4);
        assert!(
            flood.messages > large.messages * 5,
            "flooding {} vs rendezvous {}",
            flood.messages,
            large.messages
        );
    }

    #[test]
    fn both_modes_find_providers() {
        for mode in [DiscoveryMode::Flooding, DiscoveryMode::Rendezvous] {
            let p = run_once(200, mode, 12, 9);
            assert!(
                p.providers_found >= p.providers_total / 2,
                "{mode:?}: found {}/{}",
                p.providers_found,
                p.providers_total
            );
        }
    }

    #[test]
    fn low_ttl_truncates_flooding_reach() {
        let deep = run_once(400, DiscoveryMode::Flooding, 12, 11);
        let shallow = run_once(400, DiscoveryMode::Flooding, 2, 11);
        assert!(shallow.peers_visited < deep.peers_visited / 2);
        assert!(shallow.messages < deep.messages);
    }
}
