//! E4 — Case 2 (§3.6.2): the inspiral search on the Consumer Grid.
//!
//! Paper arithmetic: 900 s chunks of 7.2 MB; 5 000–10 000 templates; "this
//! process takes about 5 hours on a 2 GHz PC. Therefore, 20 PC's would need
//! to be employed full-time to keep up with the data. Within a Consumer
//! Grid scenario the number of PCs would need to be increased due to
//! various types of downtime".
//!
//! Reproduction:
//! * (a) the paper's static arithmetic from the calibrated cost model;
//! * (b) a full grid simulation: chunks stream in every 900 s, volunteers
//!   are 2 GHz DSL PCs with tunable availability, jobs checkpoint every
//!   15 minutes and migrate on churn; we sweep the worker pool until the
//!   search keeps up with real time.
//!
//! Shape to match: ~20 dedicated PCs at 5 000 templates; the requirement
//! grows as availability drops; latency may "lag behind by several hours"
//! but stays bounded.

use crate::table;
use netsim::avail::AvailabilityModel;
use netsim::{Duration, HostSpec, LinkClass, SimTime};
use p2p::DiscoveryMode;
use toolbox::inspiral::cost;
use triana_core::checkpoint::CheckpointPolicy;
use triana_core::grid::farm::{run_farm, FarmConfig, FarmScheduler, JobSpec};
use triana_core::grid::{GridWorld, WorkerSetup};

/// (a) Static arithmetic.
#[derive(Clone, Copy, Debug)]
pub struct StaticPoint {
    pub templates: usize,
    pub hours_per_chunk_2ghz: f64,
    pub pcs_needed: f64,
}

pub fn static_series(template_counts: &[usize]) -> Vec<StaticPoint> {
    template_counts
        .iter()
        .map(|&templates| StaticPoint {
            templates,
            hours_per_chunk_2ghz: cost::chunk_work_gigacycles(templates) / 2.0 / 3600.0,
            pcs_needed: cost::pcs_for_real_time(templates, 2.0),
        })
        .collect()
}

/// Outcome of one streaming simulation.
#[derive(Clone, Copy, Debug)]
pub struct SimOutcome {
    pub workers: usize,
    pub availability: f64,
    pub all_done: bool,
    /// Backlog when the stream ends: makespan minus last arrival (seconds).
    pub final_backlog_s: f64,
    pub max_latency_s: f64,
    /// Latency growth from an early chunk (N/4) to the last chunk — the
    /// discriminator between a bounded lag and falling steadily behind.
    pub lag_growth_s: f64,
    pub wasted_hours: f64,
}

/// Simulate `chunks` arrivals with `workers` volunteers of the given
/// availability fraction (alternating-renewal churn on an 8 h cycle;
/// `1.0` = dedicated). 5 000-template chunks, 15-minute checkpoints.
pub fn simulate(workers: usize, availability: f64, chunks: u64, seed: u64) -> SimOutcome {
    let chunk_period = Duration::from_secs(900);
    let horizon = SimTime::from_secs(900 * chunks + 16 * 3600) + Duration::from_secs(86_400);
    let mut world = GridWorld::new(seed, DiscoveryMode::Flooding);
    // The controller is the detector site: LAN-connected.
    let (ctrl, _) = world.add_peer(HostSpec::lan_workstation());
    let mut farm = FarmScheduler::new(
        &world,
        ctrl,
        FarmConfig {
            checkpoint: Some(CheckpointPolicy::every(Duration::from_secs(900), 2 << 20)),
            swarm: None,
            trust: None,
        },
    );
    let mut rng = world.sim.stream(0xE4);
    for i in 0..workers {
        let mut spec = HostSpec::reference_pc(); // 2 GHz
        spec.link = LinkClass::Dsl.spec();
        let (peer, _) = world.add_peer(spec.clone());
        let model = if availability >= 1.0 {
            AvailabilityModel::AlwaysOn
        } else {
            let cycle = 8.0 * 3600.0;
            AvailabilityModel::Exponential {
                mean_up: Duration::from_secs_f64(cycle * availability),
                mean_down: Duration::from_secs_f64(cycle * (1.0 - availability)),
            }
        };
        let mut r = rng.split(i as u64 + 1);
        farm.add_worker(
            &mut world,
            WorkerSetup {
                peer,
                spec,
                trace: model.trace(horizon, &mut r),
                cache_bytes: 16 << 20,
            },
        );
    }
    farm.chunk_spec = Some(JobSpec {
        work_gigacycles: cost::chunk_work_gigacycles(5_000),
        input_bytes: cost::CHUNK_BYTES,
        output_bytes: 10_000, // candidate-event list
        module: None,
    });
    farm.schedule_chunks(&mut world.sim, chunk_period, chunks);
    world.sim.set_horizon(horizon);
    run_farm(&mut world, &mut farm);
    let stats = farm.stats();
    let last_arrival = 900.0 * chunks as f64;
    // Chunk jobs are created in arrival order, so JobId order == seq order.
    let lat = |i: u64| {
        farm.job_latency(triana_core::grid::JobId(i))
            .map(|d| d.as_secs_f64())
    };
    let lag_growth_s = match (lat(chunks / 4), lat(chunks - 1)) {
        (Some(early), Some(last)) => last - early,
        _ => f64::INFINITY,
    };
    SimOutcome {
        workers,
        availability,
        all_done: stats.jobs_done == chunks,
        final_backlog_s: stats.makespan.as_secs_f64() - last_arrival,
        max_latency_s: stats.max_latency.as_secs_f64(),
        lag_growth_s,
        wasted_hours: stats.wasted.as_secs_f64() / 3600.0,
    }
}

/// Does this configuration keep up with real time? All chunks complete and
/// the lag does not grow materially between early and late chunks (the
/// paper allows lagging "by several hours" as long as it is bounded; a
/// steadily growing lag means the pool is under-provisioned).
pub fn keeps_up(o: &SimOutcome) -> bool {
    o.all_done && o.lag_growth_s < 2.0 * 3600.0
}

/// Smallest worker pool that keeps up, for each availability level.
pub fn min_workers_series(levels: &[f64], chunks: u64) -> Vec<SimOutcome> {
    levels
        .iter()
        .map(|&f| {
            let ideal = cost::pcs_for_real_time(5_000, 2.0) / f;
            let mut k = ideal.ceil() as usize;
            loop {
                let o = simulate(k, f, chunks, 1_000 + (f * 100.0) as u64);
                if keeps_up(&o) {
                    return o;
                }
                k += 2.max(k / 20);
                assert!(k < 400, "runaway search at availability {f}");
            }
        })
        .collect()
}

pub fn report() -> String {
    let stat = static_series(&[5_000, 7_500, 10_000]);
    let s_rows: Vec<Vec<String>> = stat
        .iter()
        .map(|p| {
            vec![
                p.templates.to_string(),
                table::f(p.hours_per_chunk_2ghz, 2),
                table::f(p.pcs_needed, 1),
            ]
        })
        .collect();
    let sims = min_workers_series(&[1.0, 0.8, 0.6, 0.4], 30);
    let d_rows: Vec<Vec<String>> = sims
        .iter()
        .map(|o| {
            vec![
                table::f(o.availability, 2),
                o.workers.to_string(),
                table::f(o.max_latency_s / 3600.0, 2),
                table::f(o.wasted_hours, 1),
            ]
        })
        .collect();
    format!(
        "E4  Case 2: inspiral search in real time\n\n\
         (a) paper arithmetic (2 GHz PCs; paper: 5 h/chunk, 20 PCs at 5 000 templates)\n{}\n\
         (b) streaming grid simulation (30 chunks, 15-min checkpoints, churn sweep)\n{}",
        table::render(&["templates", "h/chunk", "PCs"], &s_rows),
        table::render(&["avail", "min PCs", "max lag h", "wasted h"], &d_rows)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_static_numbers_reproduced() {
        let s = static_series(&[5_000, 10_000]);
        assert!((s[0].hours_per_chunk_2ghz - 5.0).abs() < 1e-9);
        assert!((s[0].pcs_needed - 20.0).abs() < 1e-9);
        assert!((s[1].pcs_needed - 40.0).abs() < 1e-9);
    }

    #[test]
    fn dedicated_pool_of_about_twenty_keeps_up() {
        // 21 dedicated 2 GHz PCs (20 + transfer slack) must keep up.
        let o = simulate(21, 1.0, 20, 7);
        assert!(keeps_up(&o), "{o:?}");
        // 12 PCs cannot: the backlog grows without bound.
        let o = simulate(12, 1.0, 20, 7);
        assert!(!keeps_up(&o), "{o:?}");
    }

    #[test]
    fn churn_inflates_the_required_pool() {
        let series = min_workers_series(&[1.0, 0.6], 16);
        assert!(
            series[0].workers >= 20,
            "dedicated minimum ≈ paper's 20, got {}",
            series[0].workers
        );
        assert!(
            series[1].workers > series[0].workers,
            "downtime must inflate the pool: {} vs {}",
            series[1].workers,
            series[0].workers
        );
    }

    #[test]
    fn latency_lags_by_hours_but_is_bounded() {
        let o = simulate(22, 1.0, 20, 9);
        assert!(keeps_up(&o));
        // A chunk takes ~5 h of compute, so latency is hours…
        assert!(o.max_latency_s > 3.0 * 3600.0, "{o:?}");
        // …but bounded (the paper's "it can lag behind by several hours").
        assert!(o.max_latency_s < 12.0 * 3600.0, "{o:?}");
    }
}
