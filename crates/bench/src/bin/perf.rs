//! `perf` — the TVM/netsim/farm perf regression harness.
//!
//! Usage:
//! ```text
//! perf                         # full timing loops, print summary
//! perf --quick                 # short timing loops (CI)
//! perf --out FILE              # write the full snapshot (BENCH_PERF.json)
//! perf --counters-out FILE     # write the deterministic counters only
//! perf --gate BASELINE         # fail if counters drift >25% from BASELINE
//! ```
//!
//! The counters file is byte-identical across runs of the same build (CI
//! proves it by diffing two fresh runs); the gate compares only those
//! deterministic counters, never wall-clock.

use consumer_grid_bench::perf;

fn take_value(args: &mut Vec<String>, flag: &str) -> Option<String> {
    let i = args.iter().position(|a| a == flag)?;
    if i + 1 >= args.len() {
        eprintln!("{flag} requires a file argument");
        std::process::exit(2);
    }
    let v = args.remove(i + 1);
    args.remove(i);
    Some(v)
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let out = take_value(&mut args, "--out");
    let counters_out = take_value(&mut args, "--counters-out");
    let gate_baseline = take_value(&mut args, "--gate");
    let quick = if let Some(i) = args.iter().position(|a| a == "--quick" || a == "-q") {
        args.remove(i);
        true
    } else {
        false
    };
    if !args.is_empty() {
        eprintln!("unknown arguments: {args:?}");
        std::process::exit(2);
    }

    let report = perf::run(quick);
    println!("{}", report.summary());

    if let Some(path) = out {
        if let Err(e) = std::fs::write(&path, report.to_json()) {
            eprintln!("cannot write snapshot to {path}: {e}");
            std::process::exit(1);
        }
        eprintln!("snapshot written to {path}");
    }
    if let Some(path) = counters_out {
        if let Err(e) = std::fs::write(&path, report.counters_json()) {
            eprintln!("cannot write counters to {path}: {e}");
            std::process::exit(1);
        }
        eprintln!("counters written to {path}");
    }
    if let Some(path) = gate_baseline {
        let baseline = match std::fs::read_to_string(&path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("cannot read baseline {path}: {e}");
                std::process::exit(1);
            }
        };
        match perf::gate(&report.counters_json(), &baseline, perf::GATE_TOLERANCE) {
            Ok(()) => eprintln!("gate: deterministic counters within tolerance of {path}"),
            Err(failures) => {
                eprintln!("gate: {} regression(s) vs {path}:", failures.len());
                for f in &failures {
                    eprintln!("  {f}");
                }
                std::process::exit(1);
            }
        }
        // Wall-clock sanity on top of the counter gate: the calendar
        // queue must never lose to the legacy binary heap it replaced.
        // This is the one volatile number the gate enforces, and only as
        // a one-sided bound — measured speedups sit well above it, so a
        // failure means a real regression, not scheduler noise.
        let speedup = report.heap_queue_ns_per_event / report.queue_ns_per_event;
        if speedup < 1.0 {
            eprintln!(
                "gate: calendar queue slower than binary heap \
                 (speedup {speedup:.2}, must be >= 1.0)"
            );
            std::process::exit(1);
        }
        eprintln!("gate: calendar_vs_heap_speedup {speedup:.2} >= 1.0");
    }
}
