//! `chaos` — deterministic fault-injection sweeps over the grid.
//!
//! Usage:
//! ```text
//! chaos sweep [--seeds N] [--long] [--orch] [--routed]  # run N seeded plans (default 200)
//! chaos replay --seed S --scenario NAME --plan "PLAN" [--mutate drop-output] [--orch] [--routed]
//! ```
//!
//! `sweep` runs every seed's generated fault plan against its scenario
//! **twice** and insists the two run digests match (the determinism gate)
//! before checking invariants. On the first failure it shrinks the plan to
//! a minimal reproducer, writes `chaos.reproducer.txt`, prints the replay
//! command, and exits 1. `replay` re-executes one exact configuration and
//! prints its full deterministic report: running the printed command twice
//! must produce byte-identical output.

use chaos::{replay_command, run_chaos, shrink_plan, ChaosConfig, FaultPlan, RunOutcome, Scenario};

const DEFAULT_SEEDS: u64 = 200;
const LONG_SEEDS: u64 = 2_000;
const REPRODUCER_FILE: &str = "chaos.reproducer.txt";

fn usage() -> ! {
    eprintln!(
        "usage:\n  chaos sweep [--seeds N] [--long] [--orch] [--routed]\n  chaos replay --seed S \
         --scenario NAME --plan \"PLAN\" [--mutate drop-output] [--orch] [--routed]"
    );
    std::process::exit(2)
}

fn write_reproducer(cfg: &ChaosConfig, out: &RunOutcome, original: Option<&ChaosConfig>) {
    let mut text = String::new();
    if let Some(orig) = original {
        text.push_str(&format!("original plan: {}\n", orig.plan));
    }
    text.push_str(&format!("minimal plan:  {}\n", cfg.plan));
    text.push_str(&format!("replay:        {}\n\n", replay_command(cfg)));
    text.push_str(&out.report);
    if let Err(e) = std::fs::write(REPRODUCER_FILE, &text) {
        eprintln!("cannot write {REPRODUCER_FILE}: {e}");
    } else {
        println!("reproducer written to {REPRODUCER_FILE}");
    }
}

fn sweep(seeds: u64, orch: bool, routed: bool) -> i32 {
    let mut tally = [0u64; 3];
    for seed in 0..seeds {
        let cfg = if orch {
            ChaosConfig::from_seed_orch(seed)
        } else if routed {
            ChaosConfig::from_seed_routed(seed)
        } else {
            ChaosConfig::from_seed(seed)
        };
        let a = run_chaos(&cfg);
        let b = run_chaos(&cfg);
        if a.digest != b.digest || a.report != b.report {
            println!(
                "seed {seed} ({}): NON-DETERMINISTIC — digests {:016x} vs {:016x}",
                cfg.scenario.name(),
                a.digest,
                b.digest
            );
            // A nondeterministic run cannot be shrunk reliably; ship the
            // full configuration as the reproducer.
            write_reproducer(&cfg, &a, None);
            println!("replay: {}", replay_command(&cfg));
            return 1;
        }
        if !a.ok() {
            println!(
                "seed {seed} ({}): {} violation(s)",
                cfg.scenario.name(),
                a.violations.len()
            );
            for v in &a.violations {
                println!("  {v}");
            }
            let shrunk = shrink_plan(&cfg.plan, |p| {
                let candidate = ChaosConfig {
                    plan: p.clone(),
                    ..cfg.clone()
                };
                !run_chaos(&candidate).ok()
            });
            let min_cfg = ChaosConfig {
                plan: shrunk,
                ..cfg.clone()
            };
            let min_out = run_chaos(&min_cfg);
            println!(
                "shrunk {} event(s) -> {} event(s)",
                cfg.plan.len(),
                min_cfg.plan.len()
            );
            write_reproducer(&min_cfg, &min_out, Some(&cfg));
            println!("replay: {}", replay_command(&min_cfg));
            return 1;
        }
        let i = match cfg.scenario {
            Scenario::Farm => 0,
            Scenario::Pipeline => 1,
            Scenario::Voting => 2,
        };
        tally[i] += 1;
    }
    println!(
        "chaos sweep{}: {seeds} seeds green, deterministic (farm={} pipeline={} voting={})",
        match (orch, routed) {
            (true, _) => " [orch]",
            (false, true) => " [routed]",
            (false, false) => "",
        },
        tally[0],
        tally[1],
        tally[2]
    );
    0
}

fn replay(args: &[String]) -> i32 {
    let mut seed: Option<u64> = None;
    let mut scenario: Option<Scenario> = None;
    let mut plan: Option<FaultPlan> = None;
    let mut mutate = false;
    let mut orch = false;
    let mut routed = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--seed" => {
                i += 1;
                seed = args.get(i).and_then(|s| s.parse().ok());
                if seed.is_none() {
                    usage();
                }
            }
            "--scenario" => {
                i += 1;
                scenario = args.get(i).and_then(|s| Scenario::parse(s));
                if scenario.is_none() {
                    usage();
                }
            }
            "--plan" => {
                i += 1;
                match args.get(i).map(|s| s.parse::<FaultPlan>()) {
                    Some(Ok(p)) => plan = Some(p),
                    Some(Err(e)) => {
                        eprintln!("{e}");
                        return 2;
                    }
                    None => usage(),
                }
            }
            "--mutate" => {
                i += 1;
                match args.get(i).map(String::as_str) {
                    Some("drop-output") => mutate = true,
                    _ => usage(),
                }
            }
            "--orch" => orch = true,
            "--routed" => routed = true,
            _ => usage(),
        }
        i += 1;
    }
    let (Some(seed), Some(scenario), Some(plan)) = (seed, scenario, plan) else {
        usage()
    };
    let cfg = ChaosConfig {
        seed,
        scenario,
        plan,
        mutate_drop_output: mutate,
        orch,
        routed,
    };
    let out = run_chaos(&cfg);
    print!("{}", out.report);
    println!("digest={:016x}", out.digest);
    if out.ok() {
        println!("result: OK");
        0
    } else {
        println!("result: FAIL ({} violation(s))", out.violations.len());
        1
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match args.first().map(String::as_str) {
        Some("sweep") => {
            let rest = &args[1..];
            let mut seeds = DEFAULT_SEEDS;
            let mut orch = false;
            let mut routed = false;
            let mut i = 0;
            while i < rest.len() {
                match rest[i].as_str() {
                    "--long" => seeds = seeds.max(LONG_SEEDS),
                    "--orch" => orch = true,
                    "--routed" => routed = true,
                    "--seeds" => {
                        i += 1;
                        match rest.get(i).and_then(|s| s.parse().ok()) {
                            Some(n) => seeds = n,
                            None => usage(),
                        }
                    }
                    _ => usage(),
                }
                i += 1;
            }
            sweep(seeds, orch, routed)
        }
        Some("replay") => replay(&args[1..]),
        _ => usage(),
    };
    std::process::exit(code)
}
