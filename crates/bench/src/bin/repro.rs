//! `repro` — regenerate every figure/claim reproduction from DESIGN.md.
//!
//! Usage:
//! ```text
//! repro                      # run everything
//! repro e1 e5                # run selected experiments
//! repro --list               # list experiment ids
//! repro --quick              # seeded observability smoke only (CI)
//! repro e15 --quick          # CI-sized variant of an experiment (e15 only)
//! repro e15 --million        # million-peer lookup phase (10^5 with --quick)
//! repro --metrics-out FILE   # also dump the metrics JSON snapshot
//! ```

use consumer_grid_bench as bench;

const IDS: [(&str, &str); 15] = [
    ("e1", "Figure 2: SNR vs AccumStat iterations"),
    ("e2", "Task-graph XML transmission overhead"),
    ("e3", "Case 1: galaxy frame-rendering speedup"),
    ("e4", "Case 2: inspiral real-time PC requirement"),
    ("e5", "Discovery scalability: flooding vs rendezvous"),
    ("e6", "Distribution policies: parallel vs peer-to-peer"),
    ("e7", "SETI-scale volunteer aggregate"),
    ("e8", "On-demand code download & caching"),
    ("e9", "Globus vs Triana enrolment cost"),
    ("e10", "Checkpointing/migration ablation"),
    ("e11", "Case 3: service discovery & bind"),
    ("e12", "Redundant execution vs cheating volunteers"),
    ("e13", "Peer profiling & adaptive scheduling"),
    ("e14", "Decentralised orchestration & controller failover"),
    (
        "e15",
        "Structured overlay at 10^5 peers: routed vs flooding",
    ),
];

fn run(id: &str, quick: bool) -> Option<String> {
    if quick {
        // Only experiments with a CI-sized variant are valid here.
        return match id {
            "e15" => Some(bench::e15_overlay_scale::report_quick()),
            _ => None,
        };
    }
    let report = match id {
        "e1" => bench::e01_figure2_snr::report(),
        "e2" => bench::e02_taskgraph_overhead::report(),
        "e3" => bench::e03_galaxy_speedup::report(),
        "e4" => bench::e04_inspiral_realtime::report(),
        "e5" => bench::e05_discovery_scalability::report(),
        "e6" => bench::e06_policy_comparison::report(),
        "e7" => bench::e07_seti_aggregate::report(),
        "e8" => bench::e08_code_on_demand::report(),
        "e9" => bench::e09_admin_cost::report(),
        "e10" => bench::e10_checkpointing::report(),
        "e11" => bench::e11_service_pipeline::report(),
        "e12" => bench::e12_redundancy::report(),
        "e13" => bench::e13_adaptive_scheduling::report(),
        "e14" => bench::e14_decentralised_orch::report(),
        "e15" => bench::e15_overlay_scale::report(),
        _ => return None,
    };
    Some(report)
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--list" || a == "-l") {
        for (id, desc) in IDS {
            println!("{id:>4}  {desc}");
        }
        return;
    }
    let mut metrics_out: Option<String> = None;
    if let Some(i) = args.iter().position(|a| a == "--metrics-out") {
        if i + 1 >= args.len() {
            eprintln!("--metrics-out requires a file argument");
            std::process::exit(2);
        }
        metrics_out = Some(args.remove(i + 1));
        args.remove(i);
    }
    let quick = if let Some(i) = args.iter().position(|a| a == "--quick" || a == "-q") {
        args.remove(i);
        true
    } else {
        false
    };
    let million = if let Some(i) = args.iter().position(|a| a == "--million") {
        args.remove(i);
        true
    } else {
        false
    };
    if million {
        let only_e15 = args.len() == 1 && args[0].eq_ignore_ascii_case("e15");
        if !(args.is_empty() || only_e15) {
            eprintln!("--million applies to e15 only (usage: repro e15 --million [--quick])");
            std::process::exit(2);
        }
        if metrics_out.is_some() {
            eprintln!("--metrics-out requires --quick without --million");
            std::process::exit(2);
        }
        println!("{}", bench::e15_overlay_scale::report_million(quick));
        return;
    }
    if quick && args.is_empty() {
        let observer = obs::Obs::enabled();
        bench::smoke::run(&observer);
        println!("{}", bench::smoke::report_with(&observer));
        if let Some(out) = metrics_out {
            let json = observer.snapshot_json().expect("observer is enabled");
            if let Err(e) = std::fs::write(&out, json) {
                eprintln!("cannot write metrics to {out}: {e}");
                std::process::exit(1);
            }
            eprintln!("metrics written to {out}");
        }
        return;
    }
    if metrics_out.is_some() {
        eprintln!("--metrics-out requires --quick");
        std::process::exit(2);
    }
    let selected: Vec<&str> = if args.is_empty() {
        IDS.iter().map(|(id, _)| *id).collect()
    } else {
        args.iter().map(String::as_str).collect()
    };
    let mut failed = false;
    for id in selected {
        match run(&id.to_lowercase(), quick) {
            Some(report) => {
                println!("{report}");
                println!("{}", "=".repeat(72));
            }
            None if quick => {
                eprintln!("experiment `{id}` has no --quick variant");
                failed = true;
            }
            None => {
                eprintln!("unknown experiment `{id}` (try --list)");
                failed = true;
            }
        }
    }
    if failed {
        std::process::exit(2);
    }
}
