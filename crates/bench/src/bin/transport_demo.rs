//! Loopback multi-task transport demo: one orchestrator and two workers,
//! each on its own OS thread with its own UDP socket on 127.0.0.1, run a
//! small farm end-to-end over the socket backend — module blobs fetched
//! chunk-by-chunk, executed in the TVM, results returned. The farm is
//! then restarted over the same durable store directories to show a
//! restarted peer reusing its on-disk chunk cache instead of refetching
//! (`transport.recovered_chunks > 0`).
//!
//! Exits nonzero (panics) if any job is lost, the restart recovers
//! nothing, or the two runs disagree.

use obs::Obs;
use transport::harness::{demo_module, run_sockets, FarmSpec};
use transport::node::JobSpec;

const N_WORKERS: usize = 2;
const N_JOBS: u64 = 6;
const BUDGET: std::time::Duration = std::time::Duration::from_secs(60);

fn counters(observer: &Obs) -> String {
    let reg = observer.registry().expect("enabled");
    [
        "transport.frames_sent",
        "transport.frames_recv",
        "transport.retransmits",
        "transport.acks",
        "transport.chunks_served",
        "transport.recovered_chunks",
    ]
    .iter()
    .map(|k| format!("  {k:<28} {}", reg.counter_value(k)))
    .collect::<Vec<_>>()
    .join("\n")
}

fn main() {
    let dirs: Vec<std::path::PathBuf> = (0..N_WORKERS)
        .map(|i| {
            std::env::temp_dir().join(format!("triana-transport-demo-{}-{i}", std::process::id()))
        })
        .collect();
    for d in &dirs {
        let _ = std::fs::remove_dir_all(d);
    }

    let (scale, scale_blob) = demo_module("scale", 1, 400);
    let (gain, gain_blob) = demo_module("gain", 2, 600);
    let jobs: Vec<JobSpec> = (0..N_JOBS)
        .map(|i| JobSpec {
            module: if i % 2 == 0 {
                scale.clone()
            } else {
                gain.clone()
            },
            input: vec![i as f64],
        })
        .collect();
    let spec = FarmSpec {
        chunk_bytes: 512,
        cache_capacity: 1 << 20,
        n_workers: N_WORKERS,
        modules: vec![(scale, scale_blob), (gain, gain_blob)],
        jobs,
        durable_dirs: Some(dirs.clone()),
    };

    println!(
        "transport demo: {N_WORKERS} workers + 1 orchestrator over UDP loopback, {N_JOBS} jobs"
    );
    let cold_obs = Obs::enabled();
    let cold = run_sockets(&spec, cold_obs.clone(), BUDGET);
    assert_eq!(cold.results.len() as u64, N_JOBS, "cold run lost jobs");
    assert_eq!(cold.recovered_chunks, 0, "cold start must recover nothing");
    println!("cold run: all {N_JOBS} jobs completed");
    for (job, (worker, outputs)) in &cold.results {
        println!("  job {job} on worker {worker}: {:?}", outputs[0]);
    }
    println!("{}", counters(&cold_obs));

    println!("restarting the farm over the same durable store directories...");
    let warm_obs = Obs::enabled();
    let warm = run_sockets(&spec, warm_obs.clone(), BUDGET);
    assert_eq!(warm.results, cold.results, "restart changed job results");
    assert!(
        warm.recovered_chunks > 0,
        "restarted peers must reuse the durable chunk cache"
    );
    println!(
        "warm run: all {N_JOBS} jobs completed, {} chunks recovered from disk",
        warm.recovered_chunks
    );
    println!("{}", counters(&warm_obs));

    for d in &dirs {
        let _ = std::fs::remove_dir_all(d);
    }
    println!("transport demo OK");
}
