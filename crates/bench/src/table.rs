//! Plain-text table formatting for experiment reports.

/// Render rows as an aligned text table with a header rule.
pub fn render(headers: &[&str], rows: &[Vec<String>]) -> String {
    let n = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), n, "row width mismatch");
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::new();
        for (i, cell) in cells.iter().enumerate() {
            if i > 0 {
                line.push_str("  ");
            }
            line.push_str(&format!("{:>w$}", cell, w = widths[i]));
        }
        line.push('\n');
        line
    };
    let header_cells: Vec<String> = headers.iter().map(|s| s.to_string()).collect();
    out.push_str(&fmt_row(&header_cells, &widths));
    let total: usize = widths.iter().sum::<usize>() + 2 * (n - 1);
    out.push_str(&"-".repeat(total));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
    }
    out
}

/// Shorthand for formatting a float cell.
pub fn f(x: f64, decimals: usize) -> String {
    format!("{x:.decimals$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aligns_columns() {
        let t = render(
            &["n", "value"],
            &[
                vec!["1".into(), "10.5".into()],
                vec!["100".into(), "3.25".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("value"));
        assert!(lines[1].chars().all(|c| c == '-'));
        // Right-aligned numbers share the last column edge.
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    fn float_helper() {
        assert_eq!(f(1.23456, 2), "1.23");
        assert_eq!(f(2.0, 0), "2");
    }
}
