//! E10 — §3.6.2: "A check-pointing mechanism may also be employed to
//! migrate computation if necessary."
//!
//! Reproduction: the Case 2 chunk farm under churn, sweeping the
//! checkpoint interval (none → frequent). Shape to match: without
//! checkpointing, every interruption restarts the 5-hour chunk and waste
//! is large; checkpointing bounds waste by roughly one interval per
//! interruption and shortens the makespan.

use crate::table;
use netsim::avail::AvailabilityModel;
use netsim::{Duration, HostSpec, LinkClass, SimTime};
use p2p::DiscoveryMode;
use toolbox::inspiral::cost;
use triana_core::checkpoint::CheckpointPolicy;
use triana_core::grid::farm::{run_farm, FarmConfig, FarmScheduler, JobSpec};
use triana_core::grid::{GridWorld, WorkerSetup};

#[derive(Clone, Copy, Debug)]
pub struct CheckpointPoint {
    /// Checkpoint interval in seconds (0 = none).
    pub interval_s: u64,
    pub makespan_h: f64,
    pub wasted_h: f64,
    pub attempts: u64,
    pub jobs_done: u64,
    pub jobs_total: u64,
}

/// Run `chunks` 5 000-template chunks on `workers` churny volunteers with
/// the given checkpoint interval (`None` = restart from scratch).
pub fn run_with(
    interval: Option<Duration>,
    workers: usize,
    chunks: u64,
    seed: u64,
) -> CheckpointPoint {
    let horizon = SimTime::from_secs(14 * 86_400);
    let mut world = GridWorld::new(seed, DiscoveryMode::Flooding);
    let (ctrl, _) = world.add_peer(HostSpec::lan_workstation());
    let mut farm = FarmScheduler::new(
        &world,
        ctrl,
        FarmConfig {
            checkpoint: interval.map(|i| CheckpointPolicy::every(i, 2 << 20)),
            swarm: None,
            trust: None,
        },
    );
    let mut rng = world.sim.stream(0xE10);
    // Volunteers: mean 3 h up, 1 h down — a chunk (5 h at 2 GHz) almost
    // never finishes in one sitting, the regime where checkpointing is the
    // difference between progress and livelock.
    let model = AvailabilityModel::Exponential {
        mean_up: Duration::from_secs(3 * 3600),
        mean_down: Duration::from_secs(3600),
    };
    for i in 0..workers {
        let mut spec = HostSpec::reference_pc();
        spec.link = LinkClass::Dsl.spec();
        let (peer, _) = world.add_peer(spec.clone());
        let mut r = rng.split(i as u64 + 1);
        farm.add_worker(
            &mut world,
            WorkerSetup {
                peer,
                spec,
                trace: model.trace(horizon, &mut r),
                cache_bytes: 16 << 20,
            },
        );
    }
    for _ in 0..chunks {
        farm.submit(
            &mut world,
            JobSpec {
                work_gigacycles: cost::chunk_work_gigacycles(5_000),
                input_bytes: cost::CHUNK_BYTES,
                output_bytes: 10_000,
                module: None,
            },
        );
    }
    world.sim.set_horizon(horizon);
    run_farm(&mut world, &mut farm);
    let s = farm.stats();
    CheckpointPoint {
        interval_s: interval.map_or(0, |i| i.as_micros() / 1_000_000),
        makespan_h: s.makespan.as_secs_f64() / 3600.0,
        wasted_h: s.wasted.as_secs_f64() / 3600.0,
        attempts: s.attempts,
        jobs_done: s.jobs_done,
        jobs_total: s.jobs_total,
    }
}

pub fn series(workers: usize, chunks: u64) -> Vec<CheckpointPoint> {
    let mut out = vec![run_with(None, workers, chunks, 0xE10)];
    for secs in [3600u64, 900, 300] {
        out.push(run_with(
            Some(Duration::from_secs(secs)),
            workers,
            chunks,
            0xE10,
        ));
    }
    out
}

pub fn report() -> String {
    let pts = series(8, 8);
    let rows: Vec<Vec<String>> = pts
        .iter()
        .map(|p| {
            vec![
                if p.interval_s == 0 {
                    "none".to_string()
                } else {
                    p.interval_s.to_string()
                },
                format!("{}/{}", p.jobs_done, p.jobs_total),
                table::f(p.makespan_h, 1),
                table::f(p.wasted_h, 1),
                p.attempts.to_string(),
            ]
        })
        .collect();
    format!(
        "E10 Checkpoint/migration ablation (8 chunks on 8 churny 2 GHz peers,\n\
         mean 3 h up / 1 h down; a chunk needs 5 h of CPU)\n\n{}",
        table::render(
            &["ckpt s", "done", "makespan h", "wasted h", "attempts"],
            &rows
        )
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn without_checkpointing_chunks_rarely_finish() {
        let none = run_with(None, 6, 6, 3);
        let with = run_with(Some(Duration::from_secs(900)), 6, 6, 3);
        assert!(
            with.jobs_done > none.jobs_done || with.makespan_h < none.makespan_h,
            "checkpointing must help: {none:?} vs {with:?}"
        );
        assert_eq!(with.jobs_done, with.jobs_total, "15-min checkpoints finish");
    }

    #[test]
    fn finer_checkpoints_waste_less() {
        let coarse = run_with(Some(Duration::from_secs(3600)), 6, 6, 5);
        let fine = run_with(Some(Duration::from_secs(300)), 6, 6, 5);
        assert!(
            fine.wasted_h <= coarse.wasted_h,
            "fine {} h vs coarse {} h",
            fine.wasted_h,
            coarse.wasted_h
        );
    }

    #[test]
    fn interruptions_cause_migrations() {
        let p = run_with(Some(Duration::from_secs(900)), 6, 6, 7);
        assert!(
            p.attempts > p.jobs_total,
            "churn should force reassignments: {} attempts for {} jobs",
            p.attempts,
            p.jobs_total
        );
    }
}
