//! E7 — §3.7: the volunteer-computing aggregate the paper motivates with.
//!
//! Paper: "SETI@home … With 3154517 users taking part there has been a
//! total CPU time of 668852.233 years (as of 19th July 2001) and this
//! figure is growing on a daily basis." (The abstract quotes 650 000+
//! CPU-years.)
//!
//! Reproduction: the enrolment model of `resources::enroll` — consumer host
//! mix × screensaver-idle availability — swept over population sizes.
//! Shape to match: CPU-years scale linearly with users; at SETI's
//! population and ~2.2 years of operation the model lands in the right
//! order of magnitude (hundreds of thousands of CPU-years).

use crate::table;
use netsim::avail::AvailabilityModel;
use resources::enroll::{AggregateCpu, Population};

/// SETI's published data point.
pub const SETI_USERS: u64 = 3_154_517;
pub const SETI_CPU_YEARS: f64 = 668_852.233;
/// SETI@home launched May 1999; the quote is from July 2001.
pub const SETI_WALL_YEARS: f64 = 2.2;

#[derive(Clone, Copy, Debug)]
pub struct AggregatePoint {
    pub users: u64,
    pub agg: AggregateCpu,
}

pub fn series(user_counts: &[u64], wall_years: f64) -> Vec<AggregatePoint> {
    user_counts
        .iter()
        .map(|&users| AggregatePoint {
            users,
            agg: Population::new(users, AvailabilityModel::typical_volunteer())
                .aggregate(wall_years, 400, 0xE7),
        })
        .collect()
}

pub fn report() -> String {
    let pts = series(&[10_000, 100_000, 1_000_000, SETI_USERS], SETI_WALL_YEARS);
    let rows: Vec<Vec<String>> = pts
        .iter()
        .map(|p| {
            vec![
                p.users.to_string(),
                table::f(p.agg.cpu_years, 0),
                table::f(p.agg.reference_pc_years, 0),
                table::f(p.agg.mean_uptime * 100.0, 1),
            ]
        })
        .collect();
    format!(
        "E7  Volunteer aggregate over {SETI_WALL_YEARS} wall-years \
         (paper/SETI: {SETI_USERS} users -> {SETI_CPU_YEARS:.0} CPU-years)\n\n{}",
        table::render(&["users", "cpu-years", "2GHz-PC-years", "uptime %"], &rows)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seti_point_is_right_order_of_magnitude() {
        let p = &series(&[SETI_USERS], SETI_WALL_YEARS)[0];
        let ratio = p.agg.cpu_years / SETI_CPU_YEARS;
        assert!(
            (0.3..10.0).contains(&ratio),
            "model gives {} CPU-years vs SETI's {}",
            p.agg.cpu_years,
            SETI_CPU_YEARS
        );
    }

    #[test]
    fn scaling_is_linear_in_users() {
        let pts = series(&[100_000, 200_000, 400_000], 1.0);
        let r1 = pts[1].agg.cpu_years / pts[0].agg.cpu_years;
        let r2 = pts[2].agg.cpu_years / pts[1].agg.cpu_years;
        assert!((r1 - 2.0).abs() < 1e-9, "{r1}");
        assert!((r2 - 2.0).abs() < 1e-9, "{r2}");
    }

    #[test]
    fn uptime_is_the_screensaver_fraction() {
        let p = &series(&[1_000], 1.0)[0];
        assert!(
            (0.2..0.55).contains(&p.agg.mean_uptime),
            "overnight-donation uptime should be ~1/3, got {}",
            p.agg.mean_uptime
        );
    }
}
