//! `consumer-grid-bench` — the experiment reproduction harness.
//!
//! One module per experiment in DESIGN.md's index (E1–E15). Each module
//! exposes a structured `rows()`-style function (used by tests to check the
//! *shape* of the result against the paper's claims) and a `report()`
//! string (printed by the `repro` binary). EXPERIMENTS.md records
//! paper-vs-measured for every entry.

pub mod alloc;
pub mod e01_figure2_snr;
pub mod e02_taskgraph_overhead;
pub mod e03_galaxy_speedup;
pub mod e04_inspiral_realtime;
pub mod e05_discovery_scalability;
pub mod e06_policy_comparison;
pub mod e07_seti_aggregate;
pub mod e08_code_on_demand;
pub mod e09_admin_cost;
pub mod e10_checkpointing;
pub mod e11_service_pipeline;
pub mod e12_redundancy;
pub mod e13_adaptive_scheduling;
pub mod e14_decentralised_orch;
pub mod e15_overlay_scale;
pub mod perf;
pub mod smoke;
pub mod table;
