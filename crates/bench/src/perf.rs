//! The perf regression harness behind the `perf` binary.
//!
//! One run produces a report with two disjoint sections:
//!
//! - **deterministic** — counted work: instructions retired per kernel run,
//!   events a seeded discovery round dispatches, farm completions, cache
//!   admission counts, output digests. Byte-identical across runs and
//!   hosts; CI diffs two fresh runs to prove it, and gates the values
//!   against the committed `BENCH_PERF.json` baseline.
//! - **volatile** — wall-clock: ns per run, speedups, throughput. Recorded
//!   for the committed snapshot but never gated (CI runners are noisy).
//!
//! The interp kernels are shaped like the paper's workloads: an E3-style
//! SPH smoothing kernel (galaxy render) and an E4-style matched-filter
//! accumulation (inspiral search). Both use only bit-exact IEEE ops
//! (add/sub/mul/max), so their output digests are portable.

use netsim::avail::AvailabilityTrace;
use netsim::{BinaryHeapQueue, EventQueue, HostSpec, Pcg32, SimTime};
use obs::json::{self, Value};
use p2p::advert::{AdvertBody, PeerAdvert};
use p2p::{Advertisement, DiscoveryMode, QueryKind};
use std::time::Instant;
use triana_core::grid::farm::{run_farm, FarmConfig, FarmScheduler, JobSpec};
use triana_core::grid::redundancy::executed_digest;
use triana_core::grid::{GridWorld, WorkerSetup};
use tvm::asm::assemble;
use tvm::{execute, ExecContext, ExecTier, PreparedModule, SandboxPolicy, Tier2Module};

/// Allowed relative drift of a deterministic counter before the gate fails.
pub const GATE_TOLERANCE: f64 = 0.25;

const SEED: u64 = 0x9E4F;
const KERNEL_INPUT_LEN: usize = 4_096;
const QUEUE_EVENTS: u64 = 100_000;

/// E3-style kernel: per-particle SPH smoothing weight `w = max(0, 1-r²)³`.
const E03_SPH_KERNEL: &str = ".module SphKernel 1 1 1\n.func main 2\n inlen 0\n store 0\n \
                              push 0\n store 1\nloop:\n load 1\n load 0\n lt\n jz end\n \
                              load 1\n inget 0\n dup\n mul\n push 1\n swap\n sub\n push 0\n \
                              max\n dup\n dup\n mul\n mul\n outpush 0\n load 1\n push 1\n \
                              add\n store 1\n jmp loop\nend:\n halt\n";

/// E4-style kernel: matched-filter correlation `acc += x[i] * t[i]`.
const E04_MATCHED_FILTER: &str = ".module MatchedFilter 1 2 1\n.func main 3\n inlen 0\n \
                                  store 0\n push 0\n store 1\n push 0\n store 2\nloop:\n \
                                  load 1\n load 0\n lt\n jz end\n load 1\n inget 0\n load 1\n \
                                  inget 1\n mul\n load 2\n add\n store 2\n load 1\n push 1\n \
                                  add\n store 1\n jmp loop\nend:\n load 2\n outpush 0\n halt\n";

/// Inputs per batched dispatch when timing the tier-2 batch path.
const BATCH_K: usize = 16;

/// Counted + timed results for one interp kernel.
pub struct KernelPerf {
    pub name: &'static str,
    // Deterministic.
    pub input_len: usize,
    pub instructions_per_run: u64,
    pub source_instructions: usize,
    pub prepared_instructions: usize,
    pub modeled_prepare_us: u64,
    pub tier2_regions: usize,
    pub output_digest: u64,
    // Volatile.
    pub timing_runs: u64,
    pub legacy_ns_per_run: f64,
    pub prepared_ns_per_run: f64,
    pub tier2_ns_per_run: f64,
    pub tier2_batch_ns_per_run: f64,
    pub prepare_wall_ns: f64,
}

impl KernelPerf {
    /// Steady-state speedup of the prepared path over per-call verify.
    pub fn speedup(&self) -> f64 {
        self.legacy_ns_per_run / self.prepared_ns_per_run
    }

    /// Steady-state speedup of register-translated loops over the
    /// prepared (stack-form) path.
    pub fn tier2_speedup(&self) -> f64 {
        self.prepared_ns_per_run / self.tier2_ns_per_run
    }

    fn minstr_per_s(&self, ns_per_run: f64) -> f64 {
        self.instructions_per_run as f64 / ns_per_run * 1e3
    }
}

/// Counted + timed results for the farm end-to-end scenario.
pub struct FarmPerf {
    // Deterministic.
    pub jobs_completed: u64,
    pub makespan_us: u64,
    pub cache_misses: u64,
    pub cache_hits: u64,
    pub cache_prepares: u64,
    pub resident_instructions_per_exec: u64,
    // Volatile.
    pub build_and_run_ns: f64,
    pub resident_ns_per_exec: f64,
}

/// Steady-state allocation events on the hot paths, measured with the
/// counting global allocator in [`crate::alloc`]. Deterministic: every
/// loop is seeded and fixed-length, and each is zero-allocation by
/// design — a regression shows up as a nonzero count, which the gate
/// rejects against a zero baseline (any drift from zero is infinite).
pub struct AllocCounts {
    /// Calendar-queue pop/push churn after bucket capacities warm up.
    pub queue_pop_dispatch: u64,
    /// E3 SPH kernel through the tier-2 exec loop with a reused context.
    pub e03_prepared_exec: u64,
    /// E4 matched filter through the same loop.
    pub e04_prepared_exec: u64,
    /// `Message::encode_into` through a warm thread-local scratch pool.
    pub wire_pooled_encode: u64,
}

/// One full harness run.
pub struct PerfReport {
    pub mode: &'static str,
    pub kernels: Vec<KernelPerf>,
    pub discovery_events: u64,
    pub queue_events: u64,
    /// Pop-schedule digest of the queue churn — identical between the
    /// calendar queue and the legacy heap, byte-stable across runs.
    pub queue_digest: u64,
    pub alloc: AllocCounts,
    pub farm: FarmPerf,
    // Volatile.
    pub queue_ns_per_event: f64,
    pub heap_queue_ns_per_event: f64,
    pub discovery_round_ns: f64,
}

/// Mean wall time per call, after a short warmup.
fn time_ns<R>(reps: u64, mut f: impl FnMut() -> R) -> f64 {
    for _ in 0..reps / 10 + 1 {
        std::hint::black_box(f());
    }
    // Best-of-chunks mean: a single long mean folds scheduler preemption
    // spikes into every metric; the fastest chunk measures what the code
    // can actually do. All tiers go through this, so ratios stay fair.
    // Chunks are kept short (few reps each) so at least one lands inside
    // a quiet scheduler window even on a loaded single-core box.
    let chunks = 32;
    let per = (reps / chunks).clamp(1, 4);
    let mut best = f64::INFINITY;
    for _ in 0..chunks {
        let t0 = Instant::now();
        for _ in 0..per {
            std::hint::black_box(f());
        }
        let ns = t0.elapsed().as_nanos() as f64 / per as f64;
        if ns < best {
            best = ns;
        }
    }
    best
}

fn kernel_perf(name: &'static str, src: &str, inputs: &[&[f64]], reps: u64) -> KernelPerf {
    let module = assemble(src).expect("kernel assembles");
    let policy = SandboxPolicy::standard();
    let (legacy_out, legacy_stats) = execute(&module, inputs, &policy).expect("legacy runs");
    let prepared = PreparedModule::prepare(&module).expect("kernel verifies");
    let mut ctx = ExecContext::new();
    let (prep_out, prep_stats) = prepared
        .execute(inputs, &policy, &mut ctx)
        .expect("prepared runs");
    assert_eq!(legacy_out, prep_out, "{name}: prepared output diverged");
    assert_eq!(
        legacy_stats, prep_stats,
        "{name}: prepared metering diverged"
    );
    let tier2 = Tier2Module::prepare(&module).expect("kernel verifies");
    let (t2_out, t2_stats) = tier2
        .execute(inputs, &policy, &mut ctx)
        .expect("tier2 runs");
    assert_eq!(legacy_out, t2_out, "{name}: tier2 output diverged");
    assert_eq!(legacy_stats, t2_stats, "{name}: tier2 metering diverged");
    let legacy_ns_per_run = time_ns(reps, || execute(&module, inputs, &policy).unwrap());
    let prepared_ns_per_run = time_ns(reps, || prepared.run(inputs, &policy, &mut ctx).unwrap());
    let tier2_ns_per_run = time_ns(reps, || tier2.run(inputs, &policy, &mut ctx).unwrap());
    let jobs: Vec<&[&[f64]]> = vec![inputs; BATCH_K];
    let tier2_batch_ns_per_run = time_ns(reps / BATCH_K as u64 + 1, || {
        ExecTier::execute_batch(&tier2, &jobs, &policy, &mut ctx)
    }) / BATCH_K as f64;
    let prepare_wall_ns = time_ns(reps.min(200), || Tier2Module::prepare(&module).unwrap());
    KernelPerf {
        name,
        input_len: inputs[0].len(),
        instructions_per_run: legacy_stats.instructions,
        source_instructions: prepared.source_instructions(),
        prepared_instructions: prepared.prepared_instructions(),
        modeled_prepare_us: prepared.modeled_prepare_us(),
        tier2_regions: tier2.regions_translated(),
        output_digest: executed_digest(&legacy_out),
        timing_runs: reps,
        legacy_ns_per_run,
        prepared_ns_per_run,
        tier2_ns_per_run,
        tier2_batch_ns_per_run,
        prepare_wall_ns,
    }
}

/// One seeded rendezvous discovery round; returns events dispatched.
fn discovery_round(seed: u64) -> u64 {
    let mut sim: netsim::Sim<p2p::P2pEvent> = netsim::Sim::new(seed);
    let mut net = netsim::Network::new();
    let mut overlay = p2p::P2p::new(DiscoveryMode::Rendezvous);
    let mut rng = Pcg32::new(seed, 0xD1);
    let peers: Vec<_> = (0..24)
        .map(|_| {
            let h = net.add_host(HostSpec::sample_consumer(&mut rng));
            overlay.add_peer(h)
        })
        .collect();
    overlay.wire_random(4, &mut rng);
    overlay.assign_rendezvous(5, &mut rng);
    let expires = SimTime::from_secs(24 * 3600);
    for &peer in peers.iter().take(3) {
        let spec = net.spec(overlay.host_of(peer)).clone();
        let ad = Advertisement {
            body: AdvertBody::Peer(PeerAdvert {
                peer,
                cpu_ghz: spec.cpu_ghz,
                free_ram_mib: spec.ram_mib,
                services: vec!["triana".into()],
            }),
            expires,
        };
        overlay.publish(&mut sim, &mut net, peer, ad);
    }
    while let Some(ev) = sim.step() {
        overlay.handle(&mut sim, &mut net, ev);
    }
    overlay.query(
        &mut sim,
        &mut net,
        peers[10],
        QueryKind::ByService("triana".into()),
        4,
    );
    while let Some(ev) = sim.step() {
        overlay.handle(&mut sim, &mut net, ev);
    }
    sim.processed()
}

/// Raw event-queue churn: fill a 256-deep backlog, then one push per pop.
fn queue_churn(events: u64) -> u64 {
    let mut rng = Pcg32::new(0xE7E7, 0x51);
    let mut q: EventQueue<u64> = EventQueue::new();
    for i in 0..256u64 {
        q.push(SimTime(rng.below(1_000)), i);
    }
    let mut acc = 0u64;
    for i in 0..events {
        let (at, ev) = q.pop().expect("backlog never empties");
        acc = acc.wrapping_add(ev.wrapping_mul(at.as_micros() | 1));
        q.push(SimTime(at.as_micros() + 1 + rng.below(1_000)), i);
    }
    acc
}

/// The same churn through the legacy binary-heap queue — the baseline the
/// calendar queue replaced. Kept so every snapshot carries the old heap
/// number next to the new one, and as a cross-check: both queues must pop
/// the identical schedule (same digest).
fn heap_churn(events: u64) -> u64 {
    let mut rng = Pcg32::new(0xE7E7, 0x51);
    let mut q: BinaryHeapQueue<u64> = BinaryHeapQueue::new();
    for i in 0..256u64 {
        q.push(SimTime(rng.below(1_000)), i);
    }
    let mut acc = 0u64;
    for i in 0..events {
        let (at, ev) = q.pop().expect("backlog never empties");
        acc = acc.wrapping_add(ev.wrapping_mul(at.as_micros() | 1));
        q.push(SimTime(at.as_micros() + 1 + rng.below(1_000)), i);
    }
    acc
}

/// Measure steady-state allocation events on each hot path. Every loop
/// runs a warmup pass first so one-time capacity growth (queue buckets,
/// exec-context buffers, the scratch pool) is excluded; what remains is
/// the per-event allocation pressure, which must be zero.
fn alloc_counts(radii: &[f64], signal: &[f64], template: &[f64]) -> AllocCounts {
    // Netsim pop/dispatch loop: same churn shape as `queue_churn`.
    let queue_pop_dispatch = {
        let mut rng = Pcg32::new(0xE7E7, 0x51);
        let mut q: EventQueue<u64> = EventQueue::new();
        for i in 0..256u64 {
            q.push(SimTime(rng.below(1_000)), i);
        }
        let churn = |q: &mut EventQueue<u64>, rng: &mut Pcg32, n: u64| -> u64 {
            let mut acc = 0u64;
            for i in 0..n {
                let (at, ev) = q.pop().expect("backlog never empties");
                acc = acc.wrapping_add(ev.wrapping_mul(at.as_micros() | 1));
                q.push(SimTime(at.as_micros() + 1 + rng.below(1_000)), i);
            }
            acc
        };
        std::hint::black_box(churn(&mut q, &mut rng, 50_000));
        let (n, acc) = crate::alloc::count_allocations(|| churn(&mut q, &mut rng, 50_000));
        std::hint::black_box(acc);
        n
    };
    // Prepared-kernel exec loop: reused context, stats-only entry point.
    let kernel_steady = |src: &str, inputs: &[&[f64]]| -> u64 {
        let module = assemble(src).expect("kernel assembles");
        let policy = SandboxPolicy::standard();
        let tier2 = Tier2Module::prepare(&module).expect("kernel verifies");
        let mut ctx = ExecContext::new();
        tier2.run(inputs, &policy, &mut ctx).expect("warmup runs");
        let (n, _) = crate::alloc::count_allocations(|| {
            for _ in 0..8 {
                tier2.run(inputs, &policy, &mut ctx).expect("runs");
            }
        });
        n
    };
    let e03_prepared_exec = kernel_steady(E03_SPH_KERNEL, &[radii]);
    let e04_prepared_exec = kernel_steady(E04_MATCHED_FILTER, &[signal, template]);
    // Pooled wire encode: a representative reply message through the
    // thread-local scratch pool.
    let wire_pooled_encode = {
        let msg = p2p::Message::FindNodeReply {
            lid: p2p::LookupId(7),
            from: p2p::PeerId(3),
            closer: (0..16u32)
                .map(|i| {
                    (
                        u64::from(i).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                        p2p::PeerId(i),
                    )
                })
                .collect(),
        };
        p2p::wire::with_buf(|buf| {
            msg.encode_into(buf);
            std::hint::black_box(buf.len())
        });
        let (n, _) = crate::alloc::count_allocations(|| {
            for _ in 0..64 {
                p2p::wire::with_buf(|buf| {
                    msg.encode_into(buf);
                    std::hint::black_box(buf.len())
                });
            }
        });
        n
    };
    AllocCounts {
        queue_pop_dispatch,
        e03_prepared_exec,
        e04_prepared_exec,
        wire_pooled_encode,
    }
}

fn farm_perf(reps: u64) -> FarmPerf {
    let t0 = Instant::now();
    let mut world = GridWorld::new(SEED, DiscoveryMode::Flooding);
    let (ctrl, _) = world.add_peer(HostSpec::lan_workstation());
    let mut farm = FarmScheduler::new(&world, ctrl, FarmConfig::default());
    let horizon = SimTime::from_secs(1_000_000);
    let wids: Vec<_> = (0..3)
        .map(|_| {
            let spec = HostSpec::lan_workstation();
            let (peer, _) = world.add_peer(spec.clone());
            farm.add_worker(
                &mut world,
                WorkerSetup {
                    peer,
                    spec,
                    trace: AvailabilityTrace::always(horizon),
                    cache_bytes: 64 << 10,
                },
            )
        })
        .collect();
    let modules = crate::e08_code_on_demand::module_set(3);
    for (k, b) in &modules {
        farm.library.publish(k.clone(), b.clone());
    }
    for i in 0..9 {
        farm.submit(
            &mut world,
            JobSpec {
                work_gigacycles: 2.0,
                input_bytes: 10_000,
                output_bytes: 2_000,
                module: Some(modules[i % 3].0.clone()),
            },
        );
    }
    run_farm(&mut world, &mut farm);
    assert!(farm.all_done(), "perf farm must drain");
    let build_and_run_ns = t0.elapsed().as_nanos() as f64;
    // Capture cache counters *before* the resident loop below moves the
    // prepared-hit counter: the deterministic section must not depend on
    // how many timing repetitions this mode performs.
    let (mut hits, mut misses, mut prepares) = (0u64, 0u64, 0u64);
    for &wid in &wids {
        let cs = farm.worker_cache_stats(wid);
        hits += cs.hits;
        misses += cs.misses;
        prepares += cs.prepares;
    }
    // Steady state on the farm: the admitted module executes through the
    // worker's prepared form and per-worker context, no re-verification.
    let policy = SandboxPolicy::standard();
    let key = &modules[0].0;
    let (wid, instructions) = wids
        .iter()
        .find_map(|&w| {
            let (_, stats) = farm.execute_resident(w, key, &[], &policy)?.ok()?;
            Some((w, stats.instructions))
        })
        .expect("module resident on some worker");
    let resident_ns_per_exec = time_ns(reps, || {
        farm.execute_resident(wid, key, &[], &policy)
            .expect("resident")
            .expect("runs")
    });
    FarmPerf {
        jobs_completed: 9,
        makespan_us: world.now().as_micros(),
        cache_misses: misses,
        cache_hits: hits,
        cache_prepares: prepares,
        resident_instructions_per_exec: instructions,
        build_and_run_ns,
        resident_ns_per_exec,
    }
}

/// Run the harness. `quick` only shortens the *timing* loops; every
/// deterministic counter is identical in both modes.
pub fn run(quick: bool) -> PerfReport {
    let reps = if quick { 100 } else { 1_000 };
    run_with(if quick { "quick" } else { "full" }, reps)
}

fn run_with(mode: &'static str, reps: u64) -> PerfReport {
    let mut rng = Pcg32::new(SEED, 0x03);
    let radii: Vec<f64> = (0..KERNEL_INPUT_LEN)
        .map(|_| rng.range_f64(0.0, 2.0))
        .collect();
    let signal: Vec<f64> = (0..KERNEL_INPUT_LEN).map(|_| rng.normal()).collect();
    let template: Vec<f64> = (0..KERNEL_INPUT_LEN).map(|_| rng.normal()).collect();
    let kernels = vec![
        kernel_perf("e03_sph_kernel", E03_SPH_KERNEL, &[&radii], reps),
        kernel_perf(
            "e04_matched_filter",
            E04_MATCHED_FILTER,
            &[&signal, &template],
            reps,
        ),
    ];
    let discovery_events = discovery_round(SEED);
    let discovery_round_ns = time_ns(reps.min(50), || discovery_round(SEED));
    let queue_digest = queue_churn(QUEUE_EVENTS);
    assert_eq!(
        queue_digest,
        heap_churn(QUEUE_EVENTS),
        "calendar queue and legacy heap popped different schedules"
    );
    let queue_ns_per_event =
        time_ns(reps.clamp(1, 20), || queue_churn(QUEUE_EVENTS)) / QUEUE_EVENTS as f64;
    let heap_queue_ns_per_event =
        time_ns(reps.clamp(1, 20), || heap_churn(QUEUE_EVENTS)) / QUEUE_EVENTS as f64;
    let alloc = alloc_counts(&radii, &signal, &template);
    let farm = farm_perf(reps);
    PerfReport {
        mode,
        kernels,
        discovery_events,
        queue_events: QUEUE_EVENTS,
        queue_digest,
        alloc,
        farm,
        queue_ns_per_event,
        heap_queue_ns_per_event,
        discovery_round_ns,
    }
}

impl PerfReport {
    /// The deterministic section: counted work only, byte-stable across
    /// runs and hosts. This exact string appears in both JSON emissions,
    /// so CI can `cmp` two counters files.
    fn deterministic_json(&self) -> String {
        let mut s = String::from("{\"interp\":{");
        for (i, k) in self.kernels.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "\"{}\":{{\"input_len\":{},\"instructions_per_run\":{},\
                 \"source_instructions\":{},\"prepared_instructions\":{},\
                 \"modeled_prepare_us\":{},\"tier2_regions\":{},\
                 \"output_digest\":\"{:#018x}\"}}",
                k.name,
                k.input_len,
                k.instructions_per_run,
                k.source_instructions,
                k.prepared_instructions,
                k.modeled_prepare_us,
                k.tier2_regions,
                k.output_digest,
            ));
        }
        s.push_str(&format!(
            "}},\"netsim\":{{\"discovery_events_processed\":{},\"queue_events\":{},\
             \"queue_digest\":\"{:#018x}\"}}",
            self.discovery_events, self.queue_events, self.queue_digest
        ));
        let a = &self.alloc;
        s.push_str(&format!(
            ",\"alloc\":{{\"queue_pop_dispatch\":{},\"e03_prepared_exec\":{},\
             \"e04_prepared_exec\":{},\"wire_pooled_encode\":{}}}",
            a.queue_pop_dispatch, a.e03_prepared_exec, a.e04_prepared_exec, a.wire_pooled_encode,
        ));
        let f = &self.farm;
        s.push_str(&format!(
            ",\"farm\":{{\"jobs_completed\":{},\"makespan_us\":{},\"cache_misses\":{},\
             \"cache_hits\":{},\"cache_prepares\":{},\"resident_instructions_per_exec\":{}}}}}",
            f.jobs_completed,
            f.makespan_us,
            f.cache_misses,
            f.cache_hits,
            f.cache_prepares,
            f.resident_instructions_per_exec,
        ));
        s
    }

    fn volatile_json(&self) -> String {
        let mut s = String::from("{\"interp\":{");
        for (i, k) in self.kernels.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "\"{}\":{{\"timing_runs\":{},\"legacy_ns_per_run\":{:.1},\
                 \"prepared_ns_per_run\":{:.1},\"speedup\":{:.2},\
                 \"legacy_minstr_per_s\":{:.1},\"prepared_minstr_per_s\":{:.1},\
                 \"tier2\":{{\"tier2_ns_per_run\":{:.1},\"tier2_speedup\":{:.2},\
                 \"prepared_minstr_per_s\":{:.1},\"batch_k\":{},\
                 \"batch_ns_per_run\":{:.1}}},\
                 \"prepare_wall_ns\":{:.1}}}",
                k.name,
                k.timing_runs,
                k.legacy_ns_per_run,
                k.prepared_ns_per_run,
                k.speedup(),
                k.minstr_per_s(k.legacy_ns_per_run),
                k.minstr_per_s(k.prepared_ns_per_run),
                k.tier2_ns_per_run,
                k.tier2_speedup(),
                k.minstr_per_s(k.tier2_ns_per_run),
                BATCH_K,
                k.tier2_batch_ns_per_run,
                k.prepare_wall_ns,
            ));
        }
        s.push_str(&format!(
            "}},\"netsim\":{{\"queue_ns_per_event\":{:.2},\"queue_events_per_s\":{:.0},\
             \"heap_queue_ns_per_event\":{:.2},\"calendar_vs_heap_speedup\":{:.2},\
             \"discovery_round_ns\":{:.0}}}",
            self.queue_ns_per_event,
            1e9 / self.queue_ns_per_event,
            self.heap_queue_ns_per_event,
            self.heap_queue_ns_per_event / self.queue_ns_per_event,
            self.discovery_round_ns,
        ));
        let f = &self.farm;
        s.push_str(&format!(
            ",\"farm\":{{\"build_and_run_ns\":{:.0},\"resident_ns_per_exec\":{:.1},\
             \"resident_execs_per_s\":{:.0}}}}}",
            f.build_and_run_ns,
            f.resident_ns_per_exec,
            1e9 / f.resident_ns_per_exec,
        ));
        s
    }

    /// Deterministic counters only — the file CI compares byte-for-byte
    /// across two fresh runs.
    pub fn counters_json(&self) -> String {
        format!(
            "{{\"schema\":\"bench-perf-v1\",\"mode\":\"{}\",\"deterministic\":{}}}\n",
            self.mode,
            self.deterministic_json()
        )
    }

    /// The full snapshot (`BENCH_PERF.json`): deterministic counters plus
    /// the wall-clock measurements of this particular run.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"schema\":\"bench-perf-v1\",\"mode\":\"{}\",\"deterministic\":{},\
             \"volatile\":{}}}\n",
            self.mode,
            self.deterministic_json(),
            self.volatile_json()
        )
    }

    /// Human-readable summary for the terminal.
    pub fn summary(&self) -> String {
        let mut out = String::from("## Perf harness\n\n");
        out.push_str(
            "kernel                 legacy ns/run  prepared ns/run  tier2 ns/run  \
             t2 speedup  t2 Minstr/s\n",
        );
        for k in &self.kernels {
            out.push_str(&format!(
                "{:<22} {:>13.0} {:>16.0} {:>13.0} {:>10.2}x {:>12.1}\n",
                k.name,
                k.legacy_ns_per_run,
                k.prepared_ns_per_run,
                k.tier2_ns_per_run,
                k.tier2_speedup(),
                k.minstr_per_s(k.tier2_ns_per_run),
            ));
        }
        out.push_str(&format!(
            "\nnetsim queue: {:.0} events/s calendar vs {:.0} events/s heap ({:.2}x)   \
             discovery round: {} events in {:.0} us\n",
            1e9 / self.queue_ns_per_event,
            1e9 / self.heap_queue_ns_per_event,
            self.heap_queue_ns_per_event / self.queue_ns_per_event,
            self.discovery_events,
            self.discovery_round_ns / 1e3,
        ));
        let a = &self.alloc;
        out.push_str(&format!(
            "steady-state allocs: queue {} / e03 exec {} / e04 exec {} / pooled encode {}\n",
            a.queue_pop_dispatch, a.e03_prepared_exec, a.e04_prepared_exec, a.wire_pooled_encode,
        ));
        out.push_str(&format!(
            "farm e2e: {} jobs, makespan {} us (virtual), {:.1} ms wall; \
             resident fast path {:.0} execs/s\n",
            self.farm.jobs_completed,
            self.farm.makespan_us,
            self.farm.build_and_run_ns / 1e6,
            1e9 / self.farm.resident_ns_per_exec,
        ));
        out
    }
}

/// Compare the `deterministic` section of `current` against `baseline`.
/// Numeric leaves may drift by at most `tolerance` (relative); strings
/// (output digests) must match exactly. Keys present in the baseline but
/// missing from the current run fail; new keys in the current run pass
/// (adding counters is not a regression).
pub fn gate(current: &str, baseline: &str, tolerance: f64) -> Result<(), Vec<String>> {
    let parse = |label: &str, text: &str| -> Result<Value, Vec<String>> {
        json::parse(text).map_err(|e| vec![format!("{label}: {e}")])
    };
    let cur = parse("current", current)?;
    let base = parse("baseline", baseline)?;
    let mut failures = Vec::new();
    match (base.get("deterministic"), cur.get("deterministic")) {
        (Some(b), Some(c)) => compare(&mut failures, "deterministic", b, c, tolerance),
        _ => failures.push("missing \"deterministic\" section".into()),
    }
    if failures.is_empty() {
        Ok(())
    } else {
        Err(failures)
    }
}

fn compare(failures: &mut Vec<String>, path: &str, base: &Value, cur: &Value, tolerance: f64) {
    match (base, cur) {
        (Value::Object(b), Value::Object(c)) => {
            for (key, bv) in b {
                let p = format!("{path}.{key}");
                match c.get(key) {
                    Some(cv) => compare(failures, &p, bv, cv, tolerance),
                    None => failures.push(format!("{p}: missing from current run")),
                }
            }
        }
        (Value::Number(b), Value::Number(c)) => {
            let drift = if *b == 0.0 {
                if *c == 0.0 {
                    0.0
                } else {
                    f64::INFINITY
                }
            } else {
                (c - b).abs() / b.abs()
            };
            if drift > tolerance {
                failures.push(format!(
                    "{path}: {c} drifted {:.0}% from baseline {b} (tolerance {:.0}%)",
                    drift * 100.0,
                    tolerance * 100.0
                ));
            }
        }
        (Value::String(b), Value::String(c)) => {
            if b != c {
                failures.push(format!("{path}: \"{c}\" != baseline \"{b}\""));
            }
        }
        _ => failures.push(format!("{path}: type changed from baseline")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A cheap run: tiny timing loops, same deterministic work.
    fn tiny() -> PerfReport {
        run_with("quick", 2)
    }

    #[test]
    fn counters_are_deterministic_and_rep_independent() {
        let a = tiny();
        let b = run_with("quick", 5);
        assert_eq!(a.counters_json(), b.counters_json());
    }

    #[test]
    fn snapshot_parses_and_gates_against_itself() {
        let r = tiny();
        let full = r.to_json();
        let v = json::parse(&full).expect("snapshot is valid JSON");
        assert!(v.get("deterministic").is_some() && v.get("volatile").is_some());
        // Counters-only emission gates cleanly against the full snapshot.
        gate(&r.counters_json(), &full, GATE_TOLERANCE).expect("self-gate passes");
    }

    #[test]
    fn gate_fails_on_counter_drift_and_missing_keys() {
        let r = tiny();
        let base = r.counters_json();
        let drifted = base.replace(
            &format!("\"jobs_completed\":{}", r.farm.jobs_completed),
            &format!("\"jobs_completed\":{}", r.farm.jobs_completed * 2),
        );
        assert_ne!(base, drifted, "replacement must hit");
        let failures = gate(&drifted, &base, GATE_TOLERANCE).expect_err("drift must fail");
        assert!(
            failures.iter().any(|f| f.contains("jobs_completed")),
            "{failures:?}"
        );
        let pruned = base.replace(",\"queue_events\":100000", "");
        assert_ne!(base, pruned, "prune must hit");
        let failures = gate(&base, &pruned, GATE_TOLERANCE).err();
        assert!(failures.is_none(), "new keys in current are allowed");
        let failures = gate(&pruned, &base, GATE_TOLERANCE).expect_err("missing key must fail");
        assert!(
            failures.iter().any(|f| f.contains("queue_events")),
            "{failures:?}"
        );
    }

    #[test]
    fn calendar_and_heap_pop_identical_schedules() {
        assert_eq!(queue_churn(10_000), heap_churn(10_000));
    }

    #[test]
    fn hot_loops_do_not_allocate() {
        let mut rng = Pcg32::new(SEED, 0x03);
        let radii: Vec<f64> = (0..KERNEL_INPUT_LEN)
            .map(|_| rng.range_f64(0.0, 2.0))
            .collect();
        let signal: Vec<f64> = (0..KERNEL_INPUT_LEN).map(|_| rng.normal()).collect();
        let template: Vec<f64> = (0..KERNEL_INPUT_LEN).map(|_| rng.normal()).collect();
        let a = alloc_counts(&radii, &signal, &template);
        assert_eq!(a.queue_pop_dispatch, 0, "queue pop/dispatch allocated");
        assert_eq!(a.e03_prepared_exec, 0, "e03 exec loop allocated");
        assert_eq!(a.e04_prepared_exec, 0, "e04 exec loop allocated");
        assert_eq!(a.wire_pooled_encode, 0, "pooled wire encode allocated");
    }

    #[test]
    fn kernels_do_real_per_element_work() {
        let r = tiny();
        for k in &r.kernels {
            assert!(
                k.instructions_per_run > 10 * k.input_len as u64,
                "{}: {} instructions for {} elements",
                k.name,
                k.instructions_per_run,
                k.input_len
            );
            assert!(k.prepared_instructions <= k.source_instructions);
        }
        assert!(r.discovery_events > 0);
        assert!(r.farm.cache_prepares >= 3, "all three modules admitted");
    }
}
