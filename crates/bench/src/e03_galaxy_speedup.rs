//! E3 — Case 1 (§3.6.1): galaxy-formation frame farm-out.
//!
//! Paper: "It is possible to distribute each time slice or frame over a
//! number of processes and calculate the different views based on the point
//! of view in parallel … The result is that the user can visualise the
//! galaxy formation in a fraction of the time than it would if the
//! simulation was performed on a single machine. This implementation was
//! demonstrated successfully at the All Hands Meeting … using machines on a
//! local network."
//!
//! Reproduction, both ways the engine can run:
//! * **threads** — real SPH rendering farmed over host threads (the same
//!   `parallel` group policy, executed locally);
//! * **simulated LAN** — the All-Hands setup: a `FarmScheduler` over
//!   LAN-connected workstation peers, with real per-frame data sizes and
//!   the renderer's calibrated work estimate.
//!
//! Shape to match: near-linear speedup in worker count until data
//! distribution costs bite.

use crate::table;
use crossbeam::channel;
use netsim::avail::AvailabilityTrace;
use netsim::{HostSpec, SimTime};
use p2p::DiscoveryMode;
use std::time::Instant;
use toolbox::galaxy::{render_column_density, synthesize_snapshots, RenderFrame, View};
use triana_core::data::TrianaData;
use triana_core::grid::farm::{run_farm, FarmConfig, FarmScheduler, JobSpec};
use triana_core::grid::{GridWorld, WorkerSetup};
use triana_core::unit::Unit;

/// One measured point.
#[derive(Clone, Copy, Debug)]
pub struct SpeedupPoint {
    pub workers: usize,
    pub seconds: f64,
    pub speedup: f64,
}

/// Render `frames` snapshots over `threads` host threads; wall seconds.
pub fn render_wall_time(frames: usize, particles: usize, pixels: u32, threads: usize) -> f64 {
    let snaps = synthesize_snapshots(frames, particles, 42);
    let view = View {
        pixels,
        ..View::default()
    };
    let (tx, rx) = channel::unbounded::<usize>();
    for i in 0..snaps.len() {
        tx.send(i).expect("queue");
    }
    drop(tx);
    let start = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..threads.max(1) {
            let rx = rx.clone();
            let snaps = &snaps;
            let view = &view;
            scope.spawn(move || {
                while let Ok(i) = rx.recv() {
                    let (_, _, img) = render_column_density(&snaps[i], view);
                    std::hint::black_box(img);
                }
            });
        }
    });
    start.elapsed().as_secs_f64()
}

/// Real-thread speedup series.
pub fn threaded_series(worker_counts: &[usize]) -> Vec<SpeedupPoint> {
    let (frames, particles, pixels) = (16, 1_500, 96);
    let base = render_wall_time(frames, particles, pixels, 1);
    worker_counts
        .iter()
        .map(|&workers| {
            let seconds = render_wall_time(frames, particles, pixels, workers);
            SpeedupPoint {
                workers,
                seconds,
                speedup: base / seconds,
            }
        })
        .collect()
}

/// Simulated All-Hands LAN farm: makespan for `frames` frames on `k`
/// workstation peers.
pub fn simulated_makespan(frames: usize, k: usize) -> f64 {
    let mut world = GridWorld::new(3 + k as u64, DiscoveryMode::Flooding);
    let (ctrl, _) = world.add_peer(HostSpec::lan_workstation());
    let mut farm = FarmScheduler::new(&world, ctrl, FarmConfig::default());
    let horizon = SimTime::from_secs(1_000_000);
    for _ in 0..k {
        let spec = HostSpec::lan_workstation();
        let (peer, _) = world.add_peer(spec.clone());
        farm.add_worker(
            &mut world,
            WorkerSetup {
                peer,
                spec,
                trace: AvailabilityTrace::always(horizon),
                cache_bytes: 16 << 20,
            },
        );
    }
    // Real data shapes: one snapshot in, one image out, renderer-calibrated
    // work.
    let snaps = synthesize_snapshots(1, 20_000, 7);
    let frame_data = TrianaData::Particles(snaps[0].clone());
    let renderer = RenderFrame {
        view: View {
            pixels: 512,
            ..View::default()
        },
    };
    let work = renderer.work_estimate(std::slice::from_ref(&frame_data));
    let image_bytes = TrianaData::ImageFrame {
        width: 512,
        height: 512,
        pixels: vec![0.0; 512 * 512],
    }
    .wire_size();
    for _ in 0..frames {
        farm.submit(
            &mut world,
            JobSpec {
                work_gigacycles: work,
                input_bytes: frame_data.wire_size(),
                output_bytes: image_bytes,
                module: None,
            },
        );
    }
    run_farm(&mut world, &mut farm);
    assert!(farm.all_done(), "simulated farm must finish");
    farm.stats().makespan.as_secs_f64()
}

/// Simulated speedup series.
pub fn simulated_series(frames: usize, worker_counts: &[usize]) -> Vec<SpeedupPoint> {
    let base = simulated_makespan(frames, 1);
    worker_counts
        .iter()
        .map(|&workers| {
            let seconds = simulated_makespan(frames, workers);
            SpeedupPoint {
                workers,
                seconds,
                speedup: base / seconds,
            }
        })
        .collect()
}

pub fn report() -> String {
    let counts = [1usize, 2, 4, 8];
    let threaded = threaded_series(&counts);
    let simulated = simulated_series(32, &[1, 2, 4, 8, 16]);
    let t_rows: Vec<Vec<String>> = threaded
        .iter()
        .map(|p| {
            vec![
                p.workers.to_string(),
                table::f(p.seconds, 3),
                table::f(p.speedup, 2),
            ]
        })
        .collect();
    let s_rows: Vec<Vec<String>> = simulated
        .iter()
        .map(|p| {
            vec![
                p.workers.to_string(),
                table::f(p.seconds, 1),
                table::f(p.speedup, 2),
                table::f(p.speedup / p.workers as f64, 2),
            ]
        })
        .collect();
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    format!(
        "E3  Case 1: galaxy frame rendering speedup\n\n\
         (a) host threads, real SPH rendering (16 frames; {cores} core(s) available —\n\
             speedup saturates at the core count)\n{}\n\
         (b) simulated All-Hands LAN farm (32 frames, 20k particles, 512px)\n{}",
        table::render(&["threads", "wall s", "speedup"], &t_rows),
        table::render(&["peers", "makespan s", "speedup", "efficiency"], &s_rows)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simulated_farm_speeds_up_with_peers() {
        let pts = simulated_series(16, &[1, 4, 8]);
        assert!(pts[1].speedup > 3.0, "4 peers: {}", pts[1].speedup);
        // Data distribution through the controller's link costs some
        // efficiency at 8 peers (the paper notes the data "could be copied
        // beforehand and distributed in a parallel way also").
        assert!(pts[2].speedup > 4.5, "8 peers: {}", pts[2].speedup);
        assert!(pts[2].speedup > pts[1].speedup, "more peers, more speedup");
    }

    #[test]
    fn threaded_render_speeds_up_on_multicore() {
        if std::thread::available_parallelism().map_or(1, |n| n.get()) < 4 {
            return; // cannot observe speedup on a 1-2 core box
        }
        let base = render_wall_time(8, 800, 64, 1);
        let par = render_wall_time(8, 800, 64, 4);
        assert!(
            par < base,
            "4 threads should beat 1: {par:.3}s vs {base:.3}s"
        );
    }

    #[test]
    fn frame_work_is_substantial_relative_to_transfer() {
        // The farmed job must be compute-dominated on a LAN (the paper's
        // demo worked): one frame's compute >> its LAN transfer time.
        let mk = simulated_makespan(1, 1);
        assert!(mk > 0.5, "single frame should take ~a second, got {mk}");
    }
}
