//! Counting global allocator for the zero-allocation gates.
//!
//! The perf harness claims several hot loops are allocation-free in
//! steady state (the netsim pop/dispatch loop, the prepared-kernel exec
//! loop, pooled wire encoding). Claims like that rot silently: one
//! innocent `clone()` added two layers down re-introduces a per-event
//! allocation and nothing fails. This module makes the claim testable: a
//! thin wrapper around the system allocator counts allocation *events*
//! (alloc, alloc_zeroed, realloc) per thread, and
//! [`count_allocations`] measures exactly the closure it is given.
//!
//! The counter is thread-local, so parallel test threads and background
//! work never pollute a measurement, and reading it costs nothing on the
//! allocation fast path beyond one TLS increment. Deallocations are not
//! counted — the gates care about steady-state allocation pressure, and
//! a loop that allocates nothing has nothing to free.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

thread_local! {
    static ALLOC_EVENTS: Cell<u64> = const { Cell::new(0) };
}

#[inline]
fn bump() {
    // `try_with` so allocations during TLS teardown (thread exit paths)
    // silently skip the counter instead of aborting.
    let _ = ALLOC_EVENTS.try_with(|c| c.set(c.get() + 1));
}

/// System allocator plus a per-thread allocation-event counter.
pub struct CountingAlloc;

// SAFETY: defers every operation to `System`; the counter update performs
// no allocation (const-initialised TLS `Cell`).
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        bump();
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        bump();
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        bump();
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Allocation events so far on this thread.
pub fn allocation_events() -> u64 {
    ALLOC_EVENTS.try_with(|c| c.get()).unwrap_or(0)
}

/// Run `f` and return how many allocation events it performed on this
/// thread, along with its result. The result is passed through
/// `black_box` so the measured work cannot be optimised away.
pub fn count_allocations<R>(f: impl FnOnce() -> R) -> (u64, R) {
    let before = allocation_events();
    let r = std::hint::black_box(f());
    (allocation_events() - before, r)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_an_allocation() {
        let (n, v) = count_allocations(|| Vec::<u8>::with_capacity(64));
        assert!(n >= 1, "a fresh Vec must count at least one event");
        drop(v);
    }

    #[test]
    fn pure_arithmetic_counts_zero() {
        let (n, s) = count_allocations(|| (0u64..1000).fold(0u64, u64::wrapping_add));
        assert_eq!(n, 0, "arithmetic loop must not allocate");
        assert_eq!(s, 499_500);
    }

    #[test]
    fn reused_capacity_counts_zero() {
        let mut buf: Vec<u64> = Vec::with_capacity(1024);
        let (n, _) = count_allocations(|| {
            for round in 0..100u64 {
                buf.clear();
                buf.extend(0..512u64);
                std::hint::black_box(buf.iter().sum::<u64>() + round);
            }
        });
        assert_eq!(n, 0, "cleared Vec with capacity must not allocate");
    }
}
