//! E8 — §3.3: on-demand code download vs pre-staging, and constrained
//! devices.
//!
//! Paper: "This dynamic download of code, depending on what is to be
//! executed by a peer, allows the peer to only host code that is necessary
//! … This model is also useful when a particular device has limited
//! capability to host code locally – due to memory constraints for
//! instance. A resource-constrained device may also decide to selectively
//! download and release executable modules."
//!
//! Reproduction: a farm where each job names one of `M` TVM modules; the
//! worker fetches blobs on demand into a byte-bounded LRU cache. Compared
//! against pre-staging the whole toolbox. Shape to match: on-demand
//! transfers only what is used; a constrained cache trades re-downloads
//! for a bounded resident footprint; version bumps re-fetch exactly the
//! changed module.

use crate::table;
use netsim::avail::AvailabilityTrace;
use netsim::{Duration, HostSpec, Pcg32, SimTime};
use obs::Obs;
use p2p::DiscoveryMode;
use triana_core::grid::farm::{run_farm, FarmConfig, FarmScheduler, JobSpec, SwarmConfig};
use triana_core::grid::{GridWorld, WorkerId, WorkerSetup};
use triana_core::modules::ModuleKey;
use tvm::asm::assemble;
use tvm::ModuleBlob;

/// Outcome of one cache scenario on a single worker.
#[derive(Clone, Copy, Debug)]
pub struct CachePoint {
    pub cache_bytes: u64,
    pub bytes_fetched: u64,
    pub peak_resident: u64,
    pub evictions: u64,
    pub hits: u64,
    pub misses: u64,
}

/// Build `m` distinct modules of growing size; returns (key, blob) pairs.
pub fn module_set(m: usize) -> Vec<(ModuleKey, ModuleBlob)> {
    (0..m)
        .map(|i| {
            let mut src = format!(".module Mod{i} 1 0 0\n.func main 0\n");
            for _ in 0..(40 + 60 * i) {
                src.push_str(" push 2\n push 3\n mul\n pop\n");
            }
            src.push_str(" halt\n");
            let blob = assemble(&src).expect("module assembles").to_blob();
            (ModuleKey::new(&format!("Mod{i}"), 1), blob)
        })
        .collect()
}

/// Run `jobs` jobs on one worker with the given cache size; jobs reference
/// modules in a repeating working-set pattern.
pub fn run_scenario(cache_bytes: u64, jobs: usize, m: usize, seed: u64) -> CachePoint {
    let mut world = GridWorld::new(seed, DiscoveryMode::Flooding);
    let (ctrl, _) = world.add_peer(HostSpec::lan_workstation());
    let mut farm = FarmScheduler::new(&world, ctrl, FarmConfig::default());
    let horizon = SimTime::from_secs(1_000_000);
    let spec = HostSpec::lan_workstation();
    let (peer, _) = world.add_peer(spec.clone());
    let wid = farm.add_worker(
        &mut world,
        WorkerSetup {
            peer,
            spec,
            trace: AvailabilityTrace::always(horizon),
            cache_bytes,
        },
    );
    let modules = module_set(m);
    for (k, b) in &modules {
        farm.library.publish(k.clone(), b.clone());
    }
    let mut rng = Pcg32::new(seed, 0xE8);
    for _ in 0..jobs {
        let which = rng.below(m as u64) as usize;
        farm.submit(
            &mut world,
            JobSpec {
                work_gigacycles: 0.5,
                input_bytes: 5_000,
                output_bytes: 1_000,
                module: Some(modules[which].0.clone()),
            },
        );
    }
    run_farm(&mut world, &mut farm);
    assert!(farm.all_done());
    let s = farm.worker_cache_stats(wid);
    let _ = WorkerId(0);
    CachePoint {
        cache_bytes,
        bytes_fetched: s.bytes_fetched,
        peak_resident: s.peak_resident,
        evictions: s.evictions,
        hits: s.hits,
        misses: s.misses,
    }
}

/// Total bytes to pre-stage the whole toolbox on one worker.
pub fn prestage_bytes(m: usize) -> u64 {
    module_set(m).iter().map(|(_, b)| b.len() as u64).sum()
}

/// Version consistency: after a republish, exactly the changed module is
/// re-fetched. Returns (fetched_before, fetched_after_bump).
pub fn version_bump_fetches() -> (u64, u64) {
    let mut world = GridWorld::new(88, DiscoveryMode::Flooding);
    let (ctrl, _) = world.add_peer(HostSpec::lan_workstation());
    let mut farm = FarmScheduler::new(&world, ctrl, FarmConfig::default());
    let horizon = SimTime::from_secs(1_000_000);
    let spec = HostSpec::lan_workstation();
    let (peer, _) = world.add_peer(spec.clone());
    let wid = farm.add_worker(
        &mut world,
        WorkerSetup {
            peer,
            spec,
            trace: AvailabilityTrace::always(horizon),
            cache_bytes: 1 << 20,
        },
    );
    let modules = module_set(2);
    for (k, b) in &modules {
        farm.library.publish(k.clone(), b.clone());
    }
    let job = |key: ModuleKey| JobSpec {
        work_gigacycles: 0.5,
        input_bytes: 1_000,
        output_bytes: 100,
        module: Some(key),
    };
    // Two jobs on v1: one fetch.
    farm.submit(&mut world, job(modules[0].0.clone()));
    farm.submit(&mut world, job(modules[0].0.clone()));
    run_farm(&mut world, &mut farm);
    let before = farm.worker_cache_stats(wid).bytes_fetched;
    // Publish v2 of Mod0 and run a job against it: one more fetch.
    let v2_key = ModuleKey::new("Mod0", 2);
    farm.library.publish(v2_key.clone(), modules[0].1.clone());
    farm.submit(&mut world, job(v2_key));
    run_farm(&mut world, &mut farm);
    let after = farm.worker_cache_stats(wid).bytes_fetched;
    (before, after)
}

/// Outcome of one peer-assisted (swarm) distribution scenario.
#[derive(Clone, Debug)]
pub struct SwarmPoint {
    pub workers: usize,
    /// Bytes the controller's uplink shipped for module code.
    pub uplink_bytes: u64,
    /// Bytes workers pulled from each other instead.
    pub peer_bytes: u64,
    /// Swarm fetches that found no provider and fell back.
    pub fallbacks: u64,
    /// Blobs that passed hash verification after reassembly.
    pub verified: u64,
    /// Full metrics snapshot, for determinism checks.
    pub snapshot: String,
}

/// One ~`approx`-byte module for swarm distribution.
pub fn swarm_module(approx: usize) -> (ModuleKey, ModuleBlob) {
    let mut src = String::from(".module Swarm 1 0 0\n.func main 0\n");
    for _ in 0..approx / 10 {
        src.push_str(" push 1\n pop\n");
    }
    src.push_str(" halt\n");
    (
        ModuleKey::new("Swarm", 1),
        assemble(&src).expect("module assembles").to_blob(),
    )
}

/// Farm one long job per worker, arrivals staggered 30 s apart so each job
/// lands on a fresh worker after earlier ones were seeded. With `swarm` on,
/// only the first download rides the controller's uplink; later workers
/// pull chunks from already-seeded peers.
pub fn run_swarm_scenario(workers: usize, swarm: bool, seed: u64) -> SwarmPoint {
    let mut world = GridWorld::new(seed, DiscoveryMode::Flooding);
    let obs = Obs::enabled();
    let (ctrl, _) = world.add_peer(HostSpec::lan_workstation());
    let cfg = FarmConfig {
        checkpoint: None,
        swarm: swarm.then(|| SwarmConfig {
            chunk_bytes: 1024,
            ..SwarmConfig::default()
        }),
        trust: None,
    };
    let mut farm = FarmScheduler::new(&world, ctrl, cfg);
    farm.set_obs(obs.clone());
    let horizon = SimTime::from_secs(1_000_000);
    for _ in 0..workers {
        let spec = HostSpec::lan_workstation();
        let (peer, _) = world.add_peer(spec.clone());
        farm.add_worker(
            &mut world,
            WorkerSetup {
                peer,
                spec,
                trace: AvailabilityTrace::always(horizon),
                cache_bytes: 1 << 20,
            },
        );
    }
    let mut rng = Pcg32::new(seed, 0x5A);
    world.p2p.wire_random(4, &mut rng);
    let (key, blob) = swarm_module(16 * 1024);
    farm.library.publish(key.clone(), blob);
    // Jobs outlast the whole submission window, so job i always starts on
    // the idle worker i, which must then fetch the module.
    farm.chunk_spec = Some(JobSpec {
        work_gigacycles: 7200.0, // 1 h at 2 GHz
        input_bytes: 5_000,
        output_bytes: 1_000,
        module: Some(key),
    });
    farm.schedule_chunks(&mut world.sim, Duration::from_secs(30), workers as u64);
    run_farm(&mut world, &mut farm);
    assert!(farm.all_done());
    let reg = obs.registry().expect("enabled obs has a registry");
    SwarmPoint {
        workers,
        uplink_bytes: reg.counter_value("farm.module_bytes_sent"),
        peer_bytes: reg.counter_value("store.bytes_from_peers"),
        fallbacks: reg.counter_value("store.fallback_no_provider"),
        verified: reg.counter_value("store.blobs_verified"),
        snapshot: obs.snapshot_json().expect("enabled obs snapshots"),
    }
}

pub fn report() -> String {
    let m = 8;
    let jobs = 60;
    let prestage = prestage_bytes(m);
    let generous = run_scenario(1 << 20, jobs, m, 1);
    let constrained = run_scenario(generous.peak_resident / 3, jobs, m, 1);
    let rows = vec![
        vec![
            "pre-staged".to_string(),
            "-".to_string(),
            prestage.to_string(),
            prestage.to_string(),
            "0".to_string(),
            "-".to_string(),
        ],
        vec![
            "on-demand".to_string(),
            generous.cache_bytes.to_string(),
            generous.bytes_fetched.to_string(),
            generous.peak_resident.to_string(),
            generous.evictions.to_string(),
            format!("{}/{}", generous.hits, generous.hits + generous.misses),
        ],
        vec![
            "constrained".to_string(),
            constrained.cache_bytes.to_string(),
            constrained.bytes_fetched.to_string(),
            constrained.peak_resident.to_string(),
            constrained.evictions.to_string(),
            format!(
                "{}/{}",
                constrained.hits,
                constrained.hits + constrained.misses
            ),
        ],
    ];
    let (v_before, v_after) = version_bump_fetches();
    let swarm_rows: Vec<Vec<String>> = [2usize, 4, 8, 16]
        .iter()
        .map(|&w| {
            let direct = run_swarm_scenario(w, false, 42);
            let sw = run_swarm_scenario(w, true, 42);
            vec![
                w.to_string(),
                direct.uplink_bytes.to_string(),
                sw.uplink_bytes.to_string(),
                sw.peer_bytes.to_string(),
                sw.verified.to_string(),
            ]
        })
        .collect();
    format!(
        "E8  On-demand code download ({m} modules, {jobs} jobs, 1 worker)\n\n{}\n\
         version bump: {} B fetched for v1 (two jobs, one download), {} B after v2 republish\n\n\
         Peer-assisted distribution (one 16 KiB module, one job per worker):\n\n{}\n\
         swarm: controller uplink stays flat as workers grow; extra copies ride peer links\n",
        table::render(
            &[
                "strategy",
                "cache B",
                "fetched B",
                "peak res B",
                "evict",
                "hit rate"
            ],
            &rows
        ),
        v_before,
        v_after - v_before,
        table::render(
            &[
                "workers",
                "ctrl-only uplink B",
                "swarm uplink B",
                "peer B",
                "verified"
            ],
            &swarm_rows
        ),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn on_demand_fetches_each_module_once_with_ample_cache() {
        let m = 8;
        let p = run_scenario(1 << 20, 60, m, 3);
        assert_eq!(p.evictions, 0);
        assert_eq!(p.bytes_fetched, prestage_bytes(m), "all modules used once");
        // 60 jobs, 8 first-time misses.
        assert_eq!(p.misses as usize, m);
        assert_eq!(p.hits as usize, 60 - m);
    }

    #[test]
    fn constrained_cache_bounds_residency_at_cost_of_refetches() {
        let m = 8;
        let generous = run_scenario(1 << 20, 60, m, 5);
        let constrained = run_scenario(generous.peak_resident / 3, 60, m, 5);
        assert!(constrained.peak_resident <= generous.peak_resident / 3);
        assert!(constrained.evictions > 0);
        assert!(
            constrained.bytes_fetched > generous.bytes_fetched,
            "refetching costs bytes: {} vs {}",
            constrained.bytes_fetched,
            generous.bytes_fetched
        );
        // But still completes everything (asserted inside run_scenario).
    }

    #[test]
    fn version_bump_refetches_exactly_one_module() {
        let (before, after) = version_bump_fetches();
        let mod0_size = module_set(1)[0].1.len() as u64;
        assert_eq!(before, mod0_size, "v1 downloaded once despite two jobs");
        assert_eq!(after - before, mod0_size, "v2 bump downloads once more");
    }

    #[test]
    fn module_set_sizes_are_distinct_and_growing() {
        let ms = module_set(4);
        for w in ms.windows(2) {
            assert!(w[1].1.len() > w[0].1.len());
        }
    }

    #[test]
    fn swarm_flattens_controller_uplink_at_scale() {
        let blob_len = swarm_module(16 * 1024).1.len() as u64;
        for &w in &[8usize, 16] {
            let direct = run_swarm_scenario(w, false, 42);
            let sw = run_swarm_scenario(w, true, 42);
            // Controller-only ships one full blob per worker; the swarm
            // ships the first copy and lets peers seed the rest.
            assert_eq!(direct.uplink_bytes, blob_len * w as u64);
            assert!(
                sw.uplink_bytes < direct.uplink_bytes / w as u64 * 2,
                "{w} workers: swarm uplink {} vs direct {}",
                sw.uplink_bytes,
                direct.uplink_bytes
            );
            // Per-worker uplink strictly lower with the swarm on.
            assert!(sw.uplink_bytes < direct.uplink_bytes);
            assert_eq!(sw.peer_bytes, blob_len * (w as u64 - 1));
            assert_eq!(sw.fallbacks, 1, "only the first fetch lacks providers");
            assert_eq!(sw.verified, w as u64 - 1);
        }
    }

    #[test]
    fn swarm_scenario_is_deterministic() {
        let a = run_swarm_scenario(8, true, 7);
        let b = run_swarm_scenario(8, true, 7);
        assert_eq!(a.snapshot, b.snapshot, "same seed, same metrics");
        let c = run_swarm_scenario(8, true, 8);
        assert_eq!(c.uplink_bytes, a.uplink_bytes, "seed-independent uplink");
    }
}
