//! E9 — §2: the Globus administration argument, quantified.
//!
//! Paper: "Administrators with resources that they are willing to make
//! available have to create accounts explicitly for Globus users. If
//! thousands of users wanted access to a resource it would be a daunting
//! task indeed for any administrator." versus Triana: "It installs easily
//! with a 'point-and-click' method to instantiate a service daemon. Triana
//! does not rely on Certification Agencies."
//!
//! Reproduction: the `resources::admin` cost models swept over user
//! counts. Shape to match: Globus admin effort grows linearly and
//! time-to-first-job for late applicants grows into weeks; Triana is
//! constant minutes regardless of scale, with zero admin effort.

use crate::table;
use netsim::LinkClass;
use resources::admin::{GlobusAdminModel, TrianaInstallModel};

#[derive(Clone, Copy, Debug)]
pub struct AdminPoint {
    pub users: u64,
    pub globus_admin_hours: f64,
    /// Time until the last applicant can run a job (days).
    pub globus_last_user_days: f64,
    pub triana_admin_hours: f64,
    /// Triana time-to-first-job on a DSL line (minutes); user-count
    /// independent.
    pub triana_minutes: f64,
}

pub fn series(user_counts: &[u64]) -> Vec<AdminPoint> {
    let globus = GlobusAdminModel::default_2003();
    let triana = TrianaInstallModel::default_2003();
    let dsl = LinkClass::Dsl.spec();
    user_counts
        .iter()
        .map(|&users| AdminPoint {
            users,
            globus_admin_hours: globus.total_admin_time(users).as_secs_f64() / 3600.0,
            globus_last_user_days: globus.time_to_first_job(users).as_secs_f64() / 86_400.0,
            triana_admin_hours: triana.total_admin_time(users).as_secs_f64() / 3600.0,
            triana_minutes: triana.time_to_first_job(&dsl).as_secs_f64() / 60.0,
        })
        .collect()
}

pub fn report() -> String {
    let pts = series(&[10, 100, 1_000, 10_000, 100_000]);
    let rows: Vec<Vec<String>> = pts
        .iter()
        .map(|p| {
            vec![
                p.users.to_string(),
                table::f(p.globus_admin_hours, 1),
                table::f(p.globus_last_user_days, 1),
                table::f(p.triana_admin_hours, 1),
                table::f(p.triana_minutes, 1),
            ]
        })
        .collect();
    format!(
        "E9  Enrolment cost: Globus accounts vs Triana point-and-click\n\n{}",
        table::render(
            &[
                "users",
                "globus admin h",
                "globus last-user d",
                "triana admin h",
                "triana min"
            ],
            &rows
        )
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn globus_effort_linear_triana_zero() {
        let pts = series(&[100, 1_000]);
        assert!((pts[1].globus_admin_hours / pts[0].globus_admin_hours - 10.0).abs() < 1e-9);
        assert_eq!(pts[0].triana_admin_hours, 0.0);
        assert_eq!(pts[1].triana_admin_hours, 0.0);
    }

    #[test]
    fn thousands_of_users_is_daunting() {
        // 10 000 users: months of queueing for the last applicant.
        let p = &series(&[10_000])[0];
        assert!(
            p.globus_last_user_days > 60.0,
            "last user waits {} days",
            p.globus_last_user_days
        );
        assert!(p.globus_admin_hours > 2_000.0);
    }

    #[test]
    fn triana_is_minutes_at_any_scale() {
        let pts = series(&[10, 100_000]);
        assert!(pts[0].triana_minutes < 10.0);
        assert_eq!(pts[0].triana_minutes, pts[1].triana_minutes);
    }
}
