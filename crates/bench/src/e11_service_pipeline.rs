//! E11 — Case 3 (§3.6.3): database service discovery, binding and
//! execution.
//!
//! Paper: "the user establishes a pipeline in Triana consisting of: (1) a
//! data access service, (2) a data manipulation service, (3) a data
//! visualisation service, and (4) a data verification service … The Triana
//! system looks on the network to discover peers which offer each of these
//! services in turn. The pipeline is instantiated with peer references as
//! new services become available … Once a service has been selected, and
//! the Triana system has undertaken a service-bind to each of the stages in
//! the pipeline, Triana now initiates the execution procedure."
//!
//! Reproduction: providers advertise the four service types over the
//! overlay; a controller discovers and binds one provider per stage, then
//! executes the Case 3 workflow. Shape to match: all four stages bind (to
//! distinct peers when available), binding cost is a handful of discovery
//! round-trips, and the executed pipeline verifies the manipulated data.

use crate::table;
use netsim::{Duration, HostSpec, Pcg32};
use p2p::DiscoveryMode;
use resources::trust::ResourcePolicy;
use toolbox::db::{sample_catalogue, TableStore};
use toolbox::registry::standard_registry_with_store;
use triana_core::data::TrianaData;
use triana_core::grid::service::{Selection, TrianaController, TrianaService};
use triana_core::grid::GridWorld;
use triana_core::unit::Params;
use triana_core::{run_graph, EngineConfig, TaskGraph};

pub const SERVICES: [&str; 4] = [
    "data-access",
    "data-manipulate",
    "data-visualise",
    "data-verify",
];

/// Outcome of discovery + binding.
#[derive(Clone, Debug)]
pub struct BindOutcome {
    pub bound: usize,
    pub distinct_peers: usize,
    pub discovery_messages: u64,
    pub bind_wall_ms: f64,
    pub verify_report: String,
}

/// Build a world with `providers_per_service` providers of each service
/// type plus one controller peer; returns (world, controller).
fn build_world(providers_per_service: usize, seed: u64) -> (GridWorld, TrianaController) {
    let mut world = GridWorld::new(seed, DiscoveryMode::Flooding);
    let (ctrl_peer, _) = world.add_peer(HostSpec::lan_workstation());
    let mut services = Vec::new();
    for kind in SERVICES {
        for _ in 0..providers_per_service {
            let (p, _) = world.add_peer(HostSpec::reference_pc());
            services.push(TrianaService::new(
                p,
                &[kind],
                ResourcePolicy::sandbox_default(256),
            ));
        }
    }
    let mut rng = Pcg32::new(seed, 11);
    world.p2p.wire_random(4, &mut rng);
    for s in &services {
        s.advertise(&mut world, Duration::from_secs(24 * 3600));
    }
    (world, TrianaController::new(ctrl_peer, "case3-user"))
}

/// Discover, bind, and execute the Case 3 pipeline.
pub fn run_case3(providers_per_service: usize, seed: u64) -> BindOutcome {
    let (mut world, ctl) = build_world(providers_per_service, seed);
    let t0 = world.now();
    let msgs_before = world.net.stats().messages;
    let bound = ctl
        .bind_service_pipeline(&mut world, &SERVICES, Selection::FirstHit, 10)
        .expect("all services present");
    let bind_wall_ms = world.now().since(t0).as_secs_f64() * 1e3;
    let discovery_messages = world.net.stats().messages - msgs_before;
    let mut distinct = bound.clone();
    distinct.sort();
    distinct.dedup();

    // Execute the bound pipeline (locally via the engine; the binding
    // determined *which* peers' services run each stage).
    let store = TableStore::new();
    store.put("catalogue", sample_catalogue(500, seed));
    let reg = standard_registry_with_store(store);
    let mut g = TaskGraph::new("Case3");
    let access = g
        .add_task(
            &reg,
            "DataAccess",
            "access",
            Params::from([("table".to_string(), "catalogue".to_string())]),
        )
        .expect("build");
    let manip = g
        .add_task(
            &reg,
            "DataManipulate",
            "manip",
            Params::from([
                ("op".to_string(), "filter".to_string()),
                ("col".to_string(), "redshift".to_string()),
                ("max".to_string(), "0.5".to_string()),
            ]),
        )
        .expect("build");
    let vis = g
        .add_task(
            &reg,
            "DataVisualise",
            "vis",
            Params::from([("col".to_string(), "magnitude".to_string())]),
        )
        .expect("build");
    let verify = g
        .add_task(&reg, "DataVerify", "verify", Params::new())
        .expect("build");
    g.connect(access, 0, manip, 0).expect("wire");
    g.connect(manip, 0, vis, 0).expect("wire");
    g.connect(manip, 0, verify, 0).expect("wire");
    let r = run_graph(
        &g,
        &reg,
        &EngineConfig {
            iterations: 1,
            threaded: true,
        },
    )
    .expect("case 3 executes");
    let verify_report = match r.last_of(&g, "verify") {
        Some(TrianaData::Text(t)) => t.clone(),
        other => format!("unexpected {other:?}"),
    };
    BindOutcome {
        bound: bound.len(),
        distinct_peers: distinct.len(),
        discovery_messages,
        bind_wall_ms,
        verify_report,
    }
}

pub fn report() -> String {
    let rows: Vec<Vec<String>> = [1usize, 3, 8]
        .iter()
        .map(|&k| {
            let o = run_case3(k, 100 + k as u64);
            vec![
                k.to_string(),
                format!("{}/4", o.bound),
                o.distinct_peers.to_string(),
                o.discovery_messages.to_string(),
                table::f(o.bind_wall_ms, 1),
                o.verify_report.clone(),
            ]
        })
        .collect();
    format!(
        "E11 Case 3: service discovery, bind and execution\n\n{}",
        table::render(
            &[
                "providers/svc",
                "bound",
                "distinct",
                "disc msgs",
                "bind ms",
                "verify"
            ],
            &rows
        )
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_four_stages_bind_to_distinct_peers() {
        let o = run_case3(2, 21);
        assert_eq!(o.bound, 4);
        assert_eq!(o.distinct_peers, 4, "each service came from its provider");
        assert!(o.verify_report.starts_with("OK"), "{}", o.verify_report);
    }

    #[test]
    fn binding_takes_a_few_discovery_round_trips() {
        let o = run_case3(2, 23);
        assert!(o.discovery_messages > 0);
        assert!(o.bind_wall_ms > 0.0);
        // Four queries on a ~9-peer overlay: well under a second of
        // simulated time on consumer links.
        assert!(o.bind_wall_ms < 5_000.0, "{}", o.bind_wall_ms);
    }

    #[test]
    fn more_providers_do_not_break_binding() {
        let o = run_case3(8, 25);
        assert_eq!(o.bound, 4);
        assert!(o.verify_report.starts_with("OK"));
    }
}
