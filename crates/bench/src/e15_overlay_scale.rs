//! E15 — structured discovery at consumer-grid scale.
//!
//! Paper §3.7: flooding "severely restricts the scalability" of discovery.
//! E5 measures that restriction; this experiment measures the cure: the
//! `triana-overlay` Kademlia-style DHT with a super-peer rendezvous tier
//! (`DiscoveryMode::Routed`), pushed to 10⁵ simulated peers — the scale the
//! ROADMAP's million-peer north star passes through — with 10% of the
//! population churning between query phases.
//!
//! Claims reproduced:
//!
//! * **Hop bound** — the longest referral chain of any iterative lookup
//!   stays within `⌈log₂ n⌉ + 2` hops, the Kademlia prefix-halving budget.
//! * **Message economy** — at the same n, a routed query costs ≥10× fewer
//!   overlay messages than a TTL-limited flood of the same world.
//! * **Churn survival** — after 10% of peers drop and a republish pass
//!   re-homes provider records, queries still find providers, and every
//!   iterative lookup resolves (`active_lookups == 0` once the event queue
//!   drains — the same invariant triana-chaos checks under fault injection).
//!
//! Determinism: everything is seeded; two runs of the same build print
//! byte-identical reports (CI runs the `--quick` variant twice and `cmp`s).

use crate::table;
use netsim::{HostSpec, Network, Pcg32, Sim, SimTime};
use p2p::advert::{AdvertBody, PeerAdvert};
use p2p::{Advertisement, DiscoveryMode, P2p, P2pEvent, PeerId, QueryId, QueryKind};

/// Flood TTL used wherever flooding is measured (matches E5's report).
const FLOOD_TTL: u8 = 10;

/// One measured query batch.
#[derive(Clone, Copy, Debug)]
pub struct ScalePoint {
    pub peers: usize,
    pub mode: DiscoveryMode,
    /// Which part of the protocol this batch measures.
    pub phase: &'static str,
    pub queries: usize,
    /// Queries that located at least one provider.
    pub found: usize,
    pub msgs_per_query: f64,
    pub mean_hops: f64,
    pub max_hops: u64,
    /// `⌈log₂ n⌉ + 2` — the routed hop budget at this n.
    pub hop_budget: u64,
    /// Iterative lookups still open after the drain (must be 0).
    pub lookups_open: usize,
}

/// The Kademlia hop budget at network size `n`.
pub fn hop_budget(n: usize) -> u64 {
    (n.max(2) as f64).log2().ceil() as u64 + 2
}

fn drain(sim: &mut Sim<P2pEvent>, net: &mut Network, p2p: &mut P2p) {
    while let Some(ev) = sim.step() {
        p2p.handle(sim, net, ev);
    }
}

fn service_ad(net: &Network, p2p: &P2p, peer: PeerId) -> Advertisement {
    let spec = net.spec(p2p.host_of(peer)).clone();
    Advertisement {
        body: AdvertBody::Peer(PeerAdvert {
            peer,
            cpu_ghz: spec.cpu_ghz,
            free_ram_mib: spec.ram_mib,
            services: vec!["triana".into()],
        }),
        expires: SimTime::from_secs(24 * 3600),
    }
}

/// Issue `queries` service queries from random *online* origins, drain the
/// event queue, and fold the per-query statuses into one point.
fn query_batch(
    sim: &mut Sim<P2pEvent>,
    net: &mut Network,
    p2p: &mut P2p,
    rng: &mut Pcg32,
    queries: usize,
    phase: &'static str,
) -> ScalePoint {
    let n = p2p.len();
    let mut ids: Vec<QueryId> = Vec::with_capacity(queries);
    for _ in 0..queries {
        let mut origin = PeerId(rng.below(n as u64) as u32);
        while !net.is_online(p2p.host_of(origin)) {
            origin = PeerId(rng.below(n as u64) as u32);
        }
        ids.push(p2p.query(
            sim,
            net,
            origin,
            QueryKind::ByService("triana".into()),
            FLOOD_TTL,
        ));
    }
    drain(sim, net, p2p);
    let mut found = 0usize;
    let mut msgs = 0u64;
    let mut hops_sum = 0u64;
    let mut max_hops = 0u64;
    for id in &ids {
        let s = &p2p.queries[id];
        if !s.providers().is_empty() {
            found += 1;
        }
        msgs += s.messages;
        hops_sum += s.hops;
        max_hops = max_hops.max(s.hops);
    }
    ScalePoint {
        peers: n,
        mode: p2p.mode,
        phase,
        queries,
        found,
        msgs_per_query: msgs as f64 / queries as f64,
        mean_hops: hops_sum as f64 / queries as f64,
        max_hops,
        hop_budget: hop_budget(n),
        lookups_open: p2p.active_lookups(),
    }
}

/// Build a world of `n` consumer hosts in `mode`. Routed worlds are
/// bootstrapped from sampled trust profiles (a realistic hot/warm/cold
/// mix); flooding worlds get the usual degree-4 random neighbour graph.
/// Returns the world plus the shuffled peer order used to pick providers
/// and churn sets.
#[allow(clippy::type_complexity)]
fn build_world(
    n: usize,
    mode: DiscoveryMode,
    seed: u64,
) -> (Sim<P2pEvent>, Network, P2p, Pcg32, Vec<u32>) {
    let mut sim: Sim<P2pEvent> = Sim::new(seed);
    let mut net = Network::new();
    let mut p2p = P2p::new(mode);
    let mut rng = Pcg32::new(seed, 15);
    let mut profiles = Vec::with_capacity(n);
    for _ in 0..n {
        let h = net.add_host(HostSpec::sample_consumer(&mut rng));
        p2p.add_peer(h);
        // Availability/speed as triana-trust would report them: most peers
        // warm, a hot core, a cold fringe (TierConfig default thresholds).
        profiles.push((rng.range_f64(0.2, 1.0), rng.range_f64(0.4, 1.5)));
    }
    match mode {
        DiscoveryMode::Routed => p2p.enable_routed(&profiles, &mut rng),
        _ => p2p.wire_random(4, &mut rng),
    }
    let mut order: Vec<u32> = (0..n as u32).collect();
    rng.shuffle(&mut order);
    let providers_total = (n / 20).max(1);
    for &pid in order.iter().take(providers_total) {
        let peer = PeerId(pid);
        let ad = service_ad(&net, &p2p, peer);
        p2p.publish(&mut sim, &mut net, peer, ad);
    }
    drain(&mut sim, &mut net, &mut p2p);
    (sim, net, p2p, rng, order)
}

/// The scale protocol: publish under 5% providers, then two query phases
/// with a *different* 10% of the population offline in each, and a
/// republish pass re-homing provider records between them.
pub fn churn_run(n: usize, queries: usize, seed: u64) -> [ScalePoint; 2] {
    let (mut sim, mut net, mut p2p, mut rng, order) = build_world(n, DiscoveryMode::Routed, seed);
    let providers_total = (n / 20).max(1);
    let churn = (n / 10).max(1);
    assert!(
        providers_total + 2 * churn <= n,
        "churn sets must not swallow the providers"
    );
    let set = |lo: usize| -> Vec<PeerId> {
        order[providers_total + lo..providers_total + lo + churn]
            .iter()
            .map(|&i| PeerId(i))
            .collect()
    };
    // Phase A: first churn set offline.
    let offline_a = set(0);
    for &p in &offline_a {
        net.set_online(p2p.host_of(p), false);
    }
    let a = query_batch(&mut sim, &mut net, &mut p2p, &mut rng, queries, "churn A");
    // Swap churn sets; owners republish so records re-home onto the nodes
    // now closest to each key among the live population.
    for &p in &offline_a {
        net.set_online(p2p.host_of(p), true);
    }
    for &p in &set(churn) {
        net.set_online(p2p.host_of(p), false);
    }
    for &pid in order.iter().take(providers_total) {
        p2p.routed_republish(&mut sim, &mut net, PeerId(pid));
    }
    drain(&mut sim, &mut net, &mut p2p);
    let b = query_batch(&mut sim, &mut net, &mut p2p, &mut rng, queries, "churn B");
    [a, b]
}

/// Steady-state (no churn) query cost in `mode` — the routed-vs-flooded
/// comparison leg.
pub fn steady_run(n: usize, mode: DiscoveryMode, queries: usize, seed: u64) -> ScalePoint {
    let (mut sim, mut net, mut p2p, mut rng, _order) = build_world(n, mode, seed);
    query_batch(&mut sim, &mut net, &mut p2p, &mut rng, queries, "steady")
}

fn rows(points: &[ScalePoint]) -> Vec<Vec<String>> {
    points
        .iter()
        .map(|p| {
            vec![
                p.peers.to_string(),
                format!("{:?}", p.mode),
                p.phase.to_string(),
                format!("{}/{}", p.found, p.queries),
                table::f(p.msgs_per_query, 1),
                table::f(p.mean_hops, 1),
                p.max_hops.to_string(),
                p.hop_budget.to_string(),
                p.lookups_open.to_string(),
            ]
        })
        .collect()
}

const HEADERS: [&str; 9] = [
    "peers",
    "mode",
    "phase",
    "found",
    "msgs/query",
    "hops",
    "max",
    "budget",
    "open",
];

fn render(scale: &[ScalePoint], routed: ScalePoint, flooded: ScalePoint, label: &str) -> String {
    let mut pts: Vec<ScalePoint> = scale.to_vec();
    pts.push(routed);
    pts.push(flooded);
    let ratio = flooded.msgs_per_query / routed.msgs_per_query.max(1e-9);
    format!(
        "E15 Structured overlay at scale ({label}): Kademlia routing + super-peer tier\n\
         (5% providers; churn phases drop 10% of peers; hop budget = ceil(log2 n)+2)\n\n\
         {}\nrouted vs flooding at n={}: {:.0}x fewer messages per query\n",
        table::render(&HEADERS, &rows(&pts)),
        routed.peers,
        ratio,
    )
}

/// One million-mode lookup phase: build a routed world of `n` peers,
/// publish the usual 5% providers, run one query batch, and return the
/// point plus the total simulator events processed.
pub fn million_run(n: usize, queries: usize, seed: u64) -> (ScalePoint, u64) {
    let (mut sim, mut net, mut p2p, mut rng, _order) = build_world(n, DiscoveryMode::Routed, seed);
    let pt = query_batch(&mut sim, &mut net, &mut p2p, &mut rng, queries, "million");
    (pt, sim.processed())
}

#[cfg(target_os = "linux")]
fn peak_rss_kib() -> Option<u64> {
    let s = std::fs::read_to_string("/proc/self/status").ok()?;
    s.lines()
        .find(|l| l.starts_with("VmHWM:"))?
        .split_whitespace()
        .nth(1)?
        .parse()
        .ok()
}

#[cfg(not(target_os = "linux"))]
fn peak_rss_kib() -> Option<u64> {
    None
}

/// The ROADMAP's million-peer north star: a full lookup phase over 10⁶
/// routed peers (10⁵ in quick mode). Everything printed to *stdout* is
/// deterministic — CI runs the quick variant twice and `cmp`s — while the
/// volatile numbers (wall clock, events/s, peak RSS) go to stderr.
pub fn report_million(quick: bool) -> String {
    let (n, queries, label) = if quick {
        (100_000, 100, "quick, 10^5 peers")
    } else {
        (1_000_000, 200, "full, 10^6 peers")
    };
    let t0 = std::time::Instant::now();
    let (pt, events) = million_run(n, queries, 150);
    let wall = t0.elapsed().as_secs_f64();
    assert!(
        pt.found * 100 >= pt.queries * 97,
        "million-peer lookup phase must resolve >=97% of queries ({}/{})",
        pt.found,
        pt.queries
    );
    eprintln!(
        "e15 million ({label}): {events} sim events in {wall:.1}s wall ({:.0} events/s){}",
        events as f64 / wall,
        match peak_rss_kib() {
            Some(kib) => format!(", peak RSS {} MiB", kib / 1024),
            None => String::new(),
        }
    );
    format!(
        "E15 Million-peer overlay lookup phase ({label})\n\
         (5% providers; one routed query batch; hop budget = ceil(log2 n)+2)\n\n\
         {}\nfound rate: {}/{} queries resolved a provider\n",
        table::render(&HEADERS, &rows(&[pt])),
        pt.found,
        pt.queries,
    )
}

/// The full reproduction: 10⁵ routed peers under churn, plus the
/// routed-vs-flooded cost comparison at 10⁴.
pub fn report() -> String {
    let scale = churn_run(100_000, 200, 150);
    let routed = steady_run(10_000, DiscoveryMode::Routed, 40, 151);
    let flooded = steady_run(10_000, DiscoveryMode::Flooding, 40, 151);
    render(&scale, routed, flooded, "full")
}

/// CI-sized variant: same protocol, small n. Byte-identical across runs
/// of the same build — CI runs it twice and `cmp`s the output.
pub fn report_quick() -> String {
    let scale = churn_run(2_000, 40, 150);
    let routed = steady_run(800, DiscoveryMode::Routed, 20, 151);
    let flooded = steady_run(800, DiscoveryMode::Flooding, 20, 151);
    render(&scale, routed, flooded, "quick")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routed_scale_survives_churn() {
        let [a, b] = churn_run(1_500, 30, 7);
        for p in [a, b] {
            assert!(
                p.found * 10 >= p.queries * 8,
                "{}: only {}/{} queries found a provider",
                p.phase,
                p.found,
                p.queries
            );
            assert!(
                p.max_hops <= p.hop_budget,
                "{}: {} hops exceeds budget {}",
                p.phase,
                p.max_hops,
                p.hop_budget
            );
            assert_eq!(p.lookups_open, 0, "{}: lookups leaked", p.phase);
        }
    }

    #[test]
    fn routed_beats_flooding_by_an_order_of_magnitude() {
        let routed = steady_run(2_000, DiscoveryMode::Routed, 20, 9);
        let flooded = steady_run(2_000, DiscoveryMode::Flooding, 20, 9);
        assert!(routed.found > 0 && flooded.found > 0);
        assert!(
            flooded.msgs_per_query >= 10.0 * routed.msgs_per_query,
            "flooding {:.0} vs routed {:.0} msgs/query",
            flooded.msgs_per_query,
            routed.msgs_per_query
        );
        assert!(routed.max_hops <= routed.hop_budget);
        assert_eq!(routed.lookups_open, 0);
    }

    #[test]
    fn quick_report_is_deterministic() {
        assert_eq!(report_quick(), report_quick());
    }
}
