//! E1 — Figure 2: the noisy sine emerges after 20 `AccumStat` iterations.
//!
//! Paper: "In figure 2 we show two outputs, one taken after the first
//! iteration (notice that the signal is buried in the noise) and the other
//! after 20 iterations of the algorithm."
//!
//! Reproduction: run the Figure 1 network (Wave → GaussianNoise →
//! PowerSpectrum → AccumStat → Grapher) and report the tone's visibility
//! (peak height over noise-floor fluctuation) after each iteration count.
//! The shape to match: invisible-ish at 1 iteration, clearly visible at 20,
//! growing ~√N.

use crate::table;
use toolbox::signal::spectrum_snr;
use toolbox::standard_registry;
use triana_core::data::TrianaData;
use triana_core::unit::Params;
use triana_core::{run_graph, EngineConfig, TaskGraph};

/// One measured point.
#[derive(Clone, Copy, Debug)]
pub struct SnrPoint {
    pub iterations: usize,
    pub snr: f64,
}

const FREQ_HZ: f64 = 64.0;

fn figure1_graph() -> (TaskGraph, triana_core::UnitRegistry) {
    let reg = standard_registry();
    let mut g = TaskGraph::new("Figure1");
    let wave = g
        .add_task(
            &reg,
            "Wave",
            "wave",
            Params::from([
                ("freq".to_string(), FREQ_HZ.to_string()),
                ("amplitude".to_string(), "0.25".to_string()),
            ]),
        )
        .expect("build");
    let noise = g
        .add_task(
            &reg,
            "GaussianNoise",
            "noise",
            Params::from([("sigma".to_string(), "2".to_string())]),
        )
        .expect("build");
    let ps = g
        .add_task(&reg, "PowerSpectrum", "pspec", Params::new())
        .expect("build");
    let acc = g
        .add_task(&reg, "AccumStat", "accum", Params::new())
        .expect("build");
    let gr = g
        .add_task(&reg, "Grapher", "grapher", Params::new())
        .expect("build");
    g.connect(wave, 0, noise, 0).expect("wire");
    g.connect(noise, 0, ps, 0).expect("wire");
    g.connect(ps, 0, acc, 0).expect("wire");
    g.connect(acc, 0, gr, 0).expect("wire");
    (g, reg)
}

/// SNR after each iteration count in `points`.
pub fn snr_series(points: &[usize]) -> Vec<SnrPoint> {
    let (g, reg) = figure1_graph();
    points
        .iter()
        .map(|&iterations| {
            let r = run_graph(
                &g,
                &reg,
                &EngineConfig {
                    iterations,
                    threaded: true,
                },
            )
            .expect("figure-1 graph runs");
            let snr = match r.last_of(&g, "grapher") {
                Some(TrianaData::Spectrum { df_hz, power }) => spectrum_snr(power, *df_hz, FREQ_HZ),
                _ => 0.0,
            };
            SnrPoint { iterations, snr }
        })
        .collect()
}

pub fn report() -> String {
    let pts = snr_series(&[1, 2, 5, 10, 20, 50]);
    let base = pts[0].snr.max(1e-9);
    let rows: Vec<Vec<String>> = pts
        .iter()
        .map(|p| {
            vec![
                p.iterations.to_string(),
                table::f(p.snr, 2),
                table::f(p.snr / base, 2),
                table::f((p.iterations as f64).sqrt(), 2),
            ]
        })
        .collect();
    format!(
        "E1  Figure 2: tone visibility vs AccumStat iterations\n\
         (peak height over noise-floor sigma; paper: buried at 1, clear at 20)\n\n{}",
        table::render(&["iters", "snr", "gain", "sqrt(N)"], &rows)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twenty_iterations_beat_one_substantially() {
        let pts = snr_series(&[1, 20]);
        assert!(
            pts[1].snr > pts[0].snr * 2.0,
            "snr(20)={} snr(1)={}",
            pts[1].snr,
            pts[0].snr
        );
        // And the signal is *clearly* visible at 20 (paper's Figure 2).
        assert!(pts[1].snr > 10.0, "snr(20)={}", pts[1].snr);
    }

    #[test]
    fn gain_tracks_sqrt_n_within_a_factor() {
        let pts = snr_series(&[1, 4, 16]);
        let g4 = pts[1].snr / pts[0].snr;
        let g16 = pts[2].snr / pts[0].snr;
        // √4 = 2, √16 = 4; allow generous slack (single noise realization).
        assert!((1.0..5.0).contains(&g4), "gain(4)={g4}");
        assert!(g16 > g4, "gain should keep growing: {g4} vs {g16}");
    }

    #[test]
    fn report_renders() {
        let r = report();
        assert!(r.contains("Figure 2"));
        assert!(r.lines().count() > 8);
    }
}
