//! E14 — decentralised orchestration: election, gossip replication,
//! controller failover.
//!
//! The paper's §3 architecture keeps one Triana controller in charge of a
//! distributed task graph; if that peer leaves, the computation dies with
//! it. This experiment measures what `triana-orch` buys when the
//! controller itself is a volunteer:
//!
//! * **(a) forced failover** — a task farm and a service pipeline each run
//!   under a 3-member orchestrator set while the scripted fault plan
//!   crashes the *active* controller twice mid-run. Leadership hops down
//!   the eligibility order, the successor resumes dispatch from the
//!   gossip-replicated scheduler state, and every job/token still
//!   completes exactly once. Each configuration runs twice and the full
//!   run reports must be byte-identical (the determinism gate CI enforces).
//! * **(b) replication overhead** — the same fault-free workload under a
//!   single controller vs the decentralised set. Completion is identical;
//!   the cost of surviving controller loss is the metered gossip traffic
//!   (state deltas broadcast + anti-entropy rounds), not outcome drift.
//! * **(c) seeded chaos sweep** — the orchestrator-fault plan generator
//!   (`FaultPlan::generate_orch`) mixes controller crashes/partitions into
//!   the full chaos vocabulary over [`SWEEP_SEEDS`] seeds; every run must
//!   drain, hold the exactly-once and replication-convergence invariants,
//!   and replay byte-identically.

use crate::table;
use chaos::{run_chaos, ChaosConfig, FaultPlan, Scenario};

/// Seeds in the report's chaos sweep section (mirrors CI's smoke gate).
pub const SWEEP_SEEDS: u64 = 200;

/// Crash the initial leader (o0), let it return as a follower, then crash
/// its successor (o1) — two elections, two handoffs, leadership ending on
/// the third member until o1 returns.
pub const FAILOVER_PLAN: &str = "octl@20000:o0;orest@24000:o0;octl@36000:o1;orest@40000:o1";

/// One scenario driven through the forced-failover plan.
#[derive(Clone, Copy, Debug)]
pub struct FailoverPoint {
    pub scenario: &'static str,
    /// Scripted crashes of the currently-active controller.
    pub leader_crashes: u64,
    pub elections: u64,
    pub handoffs: u64,
    /// Jobs (farm/voting) or tokens (pipeline) completed / total.
    pub done: u64,
    pub total: u64,
    /// Scheduler-state deltas broadcast to follower replicas.
    pub deltas: u64,
    pub gossip_rounds: u64,
    /// Run digest; two runs of the same config must agree on it.
    pub digest: u64,
    pub invariants_ok: bool,
}

/// Pull `"name":value` out of the report's embedded obs counter snapshot.
fn counter(report: &str, name: &str) -> u64 {
    let key = format!("\"{name}\":");
    report
        .find(&key)
        .map(|i| {
            report[i + key.len()..]
                .chars()
                .take_while(char::is_ascii_digit)
                .collect::<String>()
        })
        .and_then(|digits| digits.parse().ok())
        .unwrap_or(0)
}

/// Pull `key=done/total` out of the report's stats line.
fn done_of(report: &str, key: &str) -> (u64, u64) {
    let tag = format!("{key}=");
    let Some(i) = report.find(&tag) else {
        return (0, 0);
    };
    let rest = &report[i + tag.len()..];
    let mut it = rest.split(['/', ' ', '\n']);
    let done = it.next().and_then(|s| s.parse().ok()).unwrap_or(0);
    let total = it.next().and_then(|s| s.parse().ok()).unwrap_or(0);
    (done, total)
}

fn run_cfg(cfg: &ChaosConfig) -> FailoverPoint {
    let a = run_chaos(cfg);
    let b = run_chaos(cfg);
    assert_eq!(
        a.digest, b.digest,
        "chaos run must be byte-identical across replays:\n{}",
        a.report
    );
    let key = match cfg.scenario {
        Scenario::Pipeline => "tokens_done",
        _ => "jobs_done",
    };
    let (done, total) = done_of(&a.report, key);
    FailoverPoint {
        scenario: cfg.scenario.name(),
        leader_crashes: cfg.plan.to_string().matches("octl@").count() as u64,
        elections: counter(&a.report, "orch.elections"),
        handoffs: counter(&a.report, "orch.handoffs"),
        done,
        total,
        deltas: counter(&a.report, "orch.deltas_broadcast"),
        gossip_rounds: counter(&a.report, "orch.gossip_rounds"),
        digest: a.digest,
        invariants_ok: a.ok(),
    }
}

/// Drive `scenario` through [`FAILOVER_PLAN`] under the decentralised set.
pub fn run_failover(scenario: Scenario, seed: u64) -> FailoverPoint {
    run_cfg(&ChaosConfig {
        seed,
        scenario,
        plan: FAILOVER_PLAN.parse().expect("static failover plan"),
        mutate_drop_output: false,
        orch: true,
        routed: false,
    })
}

/// Fault-free run of `scenario` with or without the orchestrator set.
pub fn run_baseline(scenario: Scenario, orch: bool, seed: u64) -> FailoverPoint {
    run_cfg(&ChaosConfig {
        seed,
        scenario,
        plan: FaultPlan::default(),
        mutate_drop_output: false,
        orch,
        routed: false,
    })
}

/// Summary of the seeded orchestrator-fault sweep.
#[derive(Clone, Copy, Debug, Default)]
pub struct SweepSummary {
    pub seeds: u64,
    pub green: u64,
    pub deterministic: u64,
    pub farm: u64,
    pub pipeline: u64,
    pub voting: u64,
    pub total_elections: u64,
}

/// Run the orchestrator-fault plan for `seeds` seeds, each twice.
pub fn run_sweep(seeds: u64) -> SweepSummary {
    let mut s = SweepSummary {
        seeds,
        ..SweepSummary::default()
    };
    for seed in 0..seeds {
        let cfg = ChaosConfig::from_seed_orch(seed);
        let a = run_chaos(&cfg);
        let b = run_chaos(&cfg);
        if a.ok() {
            s.green += 1;
        }
        if a.digest == b.digest {
            s.deterministic += 1;
        }
        match cfg.scenario {
            Scenario::Farm => s.farm += 1,
            Scenario::Pipeline => s.pipeline += 1,
            Scenario::Voting => s.voting += 1,
        }
        s.total_elections += counter(&a.report, "orch.elections");
    }
    s
}

fn failover_row(p: &FailoverPoint) -> Vec<String> {
    vec![
        p.scenario.to_string(),
        p.leader_crashes.to_string(),
        p.elections.to_string(),
        p.handoffs.to_string(),
        format!("{}/{}", p.done, p.total),
        p.deltas.to_string(),
        p.gossip_rounds.to_string(),
        if p.invariants_ok { "yes" } else { "NO" }.to_string(),
    ]
}

pub fn report() -> String {
    let failover_rows: Vec<Vec<String>> = [Scenario::Farm, Scenario::Pipeline]
        .iter()
        .map(|&sc| failover_row(&run_failover(sc, 0xE14)))
        .collect();
    let baseline_rows: Vec<Vec<String>> = [Scenario::Farm, Scenario::Pipeline]
        .iter()
        .flat_map(|&sc| {
            [false, true].into_iter().map(move |orch| {
                let p = run_baseline(sc, orch, 0xE14);
                vec![
                    p.scenario.to_string(),
                    if orch { "3 orchestrators" } else { "single" }.to_string(),
                    format!("{}/{}", p.done, p.total),
                    p.deltas.to_string(),
                    p.gossip_rounds.to_string(),
                    p.elections.to_string(),
                ]
            })
        })
        .collect();
    let sweep = run_sweep(SWEEP_SEEDS);
    format!(
        "E14 Decentralised orchestration (election, gossip replication, failover)\n\
         \n\
         (a) Forced failover: plan `{plan}` crashes the active controller\n\
         twice; each config runs twice and must be byte-identical:\n\n{a}\n\
         (b) Fault-free replication overhead (single controller vs the\n\
         3-member set; completion parity, metered gossip cost):\n\n{b}\n\
         (c) Seeded orchestrator-fault sweep ({seeds} seeds, each run twice):\n\
         \n\
         green {green}/{seeds}  deterministic {det}/{seeds}  \
         (farm={farm} pipeline={pipe} voting={vote})  elections={elections}\n",
        plan = FAILOVER_PLAN,
        a = table::render(
            &[
                "scenario",
                "leader crashes",
                "elections",
                "handoffs",
                "done",
                "deltas",
                "gossip rounds",
                "invariants"
            ],
            &failover_rows
        ),
        b = table::render(
            &[
                "scenario",
                "control plane",
                "done",
                "deltas",
                "gossip rounds",
                "elections"
            ],
            &baseline_rows
        ),
        seeds = sweep.seeds,
        green = sweep.green,
        det = sweep.deterministic,
        farm = sweep.farm,
        pipe = sweep.pipeline,
        vote = sweep.voting,
        elections = sweep.total_elections,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn farm_survives_two_leader_crashes() {
        let p = run_failover(Scenario::Farm, 0xE14);
        assert!(p.invariants_ok, "{p:?}");
        assert_eq!(p.leader_crashes, 2, "{p:?}");
        assert!(p.elections >= 2, "{p:?}");
        assert!(p.handoffs >= 2, "{p:?}");
        assert_eq!(p.done, p.total, "{p:?}");
        assert!(p.total > 0, "{p:?}");
        assert!(p.deltas > 0, "{p:?}");
    }

    #[test]
    fn pipeline_survives_two_leader_crashes() {
        let p = run_failover(Scenario::Pipeline, 0xE14);
        assert!(p.invariants_ok, "{p:?}");
        assert!(p.elections >= 2, "{p:?}");
        assert!(p.handoffs >= 2, "{p:?}");
        assert_eq!(p.done, p.total, "{p:?}");
        assert!(p.total > 0, "{p:?}");
    }

    #[test]
    fn decentralisation_preserves_fault_free_outcomes() {
        for sc in [Scenario::Farm, Scenario::Pipeline] {
            let single = run_baseline(sc, false, 0xE14);
            let multi = run_baseline(sc, true, 0xE14);
            assert!(single.invariants_ok && multi.invariants_ok);
            assert_eq!(single.done, single.total, "{single:?}");
            assert_eq!(multi.done, multi.total, "{multi:?}");
            assert_eq!(single.done, multi.done, "{single:?}\n{multi:?}");
            // Stable leadership: no crashes, no elections.
            assert_eq!(multi.elections, 0, "{multi:?}");
            // The overhead is visible: followers receive replicated state.
            assert!(multi.deltas > 0, "{multi:?}");
        }
    }

    #[test]
    fn orch_sweep_sample_is_green_and_deterministic() {
        let s = run_sweep(12);
        assert_eq!(s.green, 12, "{s:?}");
        assert_eq!(s.deterministic, 12, "{s:?}");
        assert!(s.total_elections > 0, "{s:?}");
    }
}
