//! E2 — §3.3: "Transmitting the connectivity graph to nodes has a limited
//! overhead – as the graph itself is a text file that does not consume many
//! resources."
//!
//! Reproduction: serialize task graphs of growing width to the XML dialect
//! and compare their size against (a) the module blobs the same workflow
//! would ship and (b) one Case 2 data chunk. The shape to match: graph text
//! is orders of magnitude smaller than code and data, and grows only
//! linearly in task count.

use crate::table;
use taskgraph_xml::to_xml;
use triana_core::unit::Params;
use triana_core::{DistributionPolicy, TaskGraph};
use tvm::asm::assemble;

/// One measured point.
#[derive(Clone, Debug)]
pub struct OverheadPoint {
    pub tasks: usize,
    pub xml_bytes: usize,
    pub module_bytes: usize,
    pub chunk_bytes: u64,
}

/// A representative user module blob (~a small DSP kernel).
fn typical_module_bytes() -> usize {
    let mut src = String::from(".module UserKernel 1 1 1\n.func main 4\n");
    for _ in 0..120 {
        src.push_str(" push 1.5\n mul\n push 0.25\n add\n pop\n");
    }
    src.push_str(" halt\n");
    assemble(&src).expect("valid kernel").to_blob().len()
}

/// Build a fan-out workflow with `n` worker tasks grouped for distribution.
fn workflow(n: usize) -> TaskGraph {
    let mut g = TaskGraph::new(&format!("fan{n}"));
    let src = g
        .add_task_raw("Wave", "source", Params::new(), 0, 1)
        .expect("build");
    let mut members = Vec::new();
    for i in 0..n {
        let t = g
            .add_task_raw(
                "UserKernel",
                &format!("worker{i}"),
                Params::from([("gain".to_string(), "1.5".to_string())]),
                1,
                1,
            )
            .expect("build");
        g.connect(src, 0, t, 0).expect("wire");
        members.push(t);
    }
    g.add_group("farm", members, DistributionPolicy::Parallel)
        .expect("group");
    g
}

pub fn series(sizes: &[usize]) -> Vec<OverheadPoint> {
    let module = typical_module_bytes();
    sizes
        .iter()
        .map(|&tasks| {
            let xml = to_xml(&workflow(tasks));
            OverheadPoint {
                tasks,
                xml_bytes: xml.len(),
                module_bytes: module * tasks,
                chunk_bytes: toolbox::inspiral::cost::CHUNK_BYTES,
            }
        })
        .collect()
}

pub fn report() -> String {
    let pts = series(&[2, 4, 8, 16, 32, 64]);
    let rows: Vec<Vec<String>> = pts
        .iter()
        .map(|p| {
            vec![
                p.tasks.to_string(),
                p.xml_bytes.to_string(),
                p.module_bytes.to_string(),
                p.chunk_bytes.to_string(),
                table::f(
                    p.xml_bytes as f64 / (p.module_bytes + p.chunk_bytes as usize) as f64 * 100.0,
                    3,
                ),
            ]
        })
        .collect();
    format!(
        "E2  Task-graph transmission overhead (paper: \"limited overhead\")\n\n{}",
        table::render(&["tasks", "xml B", "modules B", "chunk B", "xml %"], &rows)
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use taskgraph_xml::from_xml;

    #[test]
    fn xml_is_a_tiny_fraction_of_shipped_bytes() {
        for p in series(&[4, 16, 64]) {
            let frac = p.xml_bytes as f64 / (p.module_bytes as f64 + p.chunk_bytes as f64);
            assert!(
                frac < 0.01,
                "{} tasks: xml {}B is {:.3}% of payload",
                p.tasks,
                p.xml_bytes,
                frac * 100.0
            );
        }
    }

    #[test]
    fn xml_grows_linearly_not_worse() {
        let pts = series(&[8, 16, 32]);
        let per_task_small = pts[0].xml_bytes as f64 / 8.0;
        let per_task_large = pts[2].xml_bytes as f64 / 32.0;
        assert!(
            per_task_large < per_task_small * 1.5,
            "per-task XML cost should be ~constant: {per_task_small} vs {per_task_large}"
        );
    }

    #[test]
    fn serialized_workflows_round_trip() {
        let g = workflow(8);
        let back = from_xml(&to_xml(&g)).expect("round trip");
        assert_eq!(back, g);
    }

    #[test]
    fn report_renders() {
        assert!(report().contains("xml %"));
    }
}
