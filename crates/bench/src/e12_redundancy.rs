//! E12 — §3.7's trust problem, met with redundant execution.
//!
//! Paper: volunteers "would not have direct control of what application
//! actually utilises their resource … This is a difficult problem to
//! overcome". The mirror-image problem — volunteers returning wrong
//! results — is what SETI@home answered with redundancy. This ablation
//! sweeps the replication factor against a population containing cheating
//! volunteers and measures (a) how many wrong results are *accepted*,
//! (b) how many cheats are *caught*, and (c) the CPU overhead paid.
//!
//! Shape to match (standard volunteer-computing result): with no
//! redundancy every cheat is silently accepted; with 2 replicas cheats are
//! detected but unresolved; with 3+, wrong results are outvoted at ~r×
//! compute cost, and the cheaters' reputation collapses.

use crate::table;
use netsim::avail::AvailabilityTrace;
use netsim::{HostSpec, SimTime};
use p2p::DiscoveryMode;
use triana_core::grid::farm::{run_farm, FarmConfig, FarmScheduler, JobSpec};
use triana_core::grid::redundancy::{Behaviour, RedundancyConfig, Verdict, VotingFarm};
use triana_core::grid::{GridWorld, WorkerId, WorkerSetup};

/// Outcome of one redundancy configuration.
#[derive(Clone, Copy, Debug)]
pub struct RedundancyPoint {
    pub replicas: usize,
    pub quorum: usize,
    pub units: usize,
    /// Accepted units whose winning digest was wrong (undetected cheats).
    pub wrong_accepted: usize,
    /// Units with no quorum.
    pub unresolved: usize,
    /// Dissenting (caught) replica executions.
    pub cheats_caught: usize,
    /// Total replica executions / logical units (the CPU overhead factor).
    pub overhead: f64,
    /// Mean reputation score of the cheating workers afterwards.
    pub cheater_score: f64,
}

/// Run `units` logical units over `honest + cheaters` workers, where each
/// cheater returns a wrong result with probability `cheat_prob`.
pub fn run_config(
    replicas: usize,
    quorum: usize,
    units: usize,
    honest: usize,
    cheaters: usize,
    cheat_prob: f64,
    seed: u64,
) -> RedundancyPoint {
    let mut behaviours = vec![Behaviour::Cheater { cheat_prob }; cheaters];
    behaviours.extend(std::iter::repeat_n(Behaviour::Honest, honest));
    let mut world = GridWorld::new(seed, DiscoveryMode::Flooding);
    let (ctrl, _) = world.add_peer(HostSpec::lan_workstation());
    let mut farm = FarmScheduler::new(&world, ctrl, FarmConfig::default());
    let horizon = SimTime::from_secs(10_000_000);
    for _ in 0..behaviours.len() {
        let spec = HostSpec::lan_workstation();
        let (peer, _) = world.add_peer(spec.clone());
        farm.add_worker(
            &mut world,
            WorkerSetup {
                peer,
                spec,
                trace: AvailabilityTrace::always(horizon),
                cache_bytes: 1 << 20,
            },
        );
    }
    let mut voting = VotingFarm::new(
        RedundancyConfig { replicas, quorum },
        behaviours.clone(),
        seed,
    );
    for _ in 0..units {
        voting.submit_unit(
            &mut farm,
            &mut world,
            JobSpec {
                work_gigacycles: 10.0,
                input_bytes: 10_000,
                output_bytes: 1_000,
                module: None,
            },
        );
    }
    run_farm(&mut world, &mut farm);
    let (verdicts, reps) = voting.tally(&farm);
    // Wrong-accept accounting: with quorum 1 (no redundancy), a cheater's
    // wrong digest is accepted whenever it executed the unit. In general a
    // wrong result is accepted when the winning digest differs from the
    // truth — detectable here because honest workers all return the truth,
    // so a unit is wrongly accepted iff every counted replica came from
    // cheaters that cheated. We recover it from the verdicts: an accepted
    // unit with *no* dissenters where all replicas ran on cheaters that
    // cheat with probability 1 is wrong. For fractional cheat rates we
    // detect it exactly by re-deriving the winning digest.
    let mut wrong_accepted = 0;
    let mut unresolved = 0;
    let mut cheats_caught = 0;
    for (i, v) in verdicts.iter().enumerate() {
        match v {
            Verdict::Accepted { dissenters } => {
                cheats_caught += dissenters.len();
                if voting.accepted_digest_is_wrong(&farm, i) {
                    wrong_accepted += 1;
                }
            }
            Verdict::Unresolved => unresolved += 1,
            Verdict::Incomplete => {}
        }
    }
    let cheater_ids: Vec<WorkerId> = (0..cheaters as u32).map(WorkerId).collect();
    let observed: Vec<f64> = cheater_ids
        .iter()
        .filter_map(|w| reps.get(w))
        .map(|r| r.score())
        .collect();
    // Unobserved cheaters score the neutral prior (0.5), matching
    // `Reputation::score` — never a perfect 1.0.
    let cheater_score = if observed.is_empty() {
        0.5
    } else {
        observed.iter().sum::<f64>() / observed.len() as f64
    };
    RedundancyPoint {
        replicas,
        quorum,
        units,
        wrong_accepted,
        unresolved,
        cheats_caught,
        overhead: replicas as f64,
        cheater_score,
    }
}

pub fn report() -> String {
    let configs = [(1usize, 1usize), (2, 2), (3, 2), (5, 3)];
    let rows: Vec<Vec<String>> = configs
        .iter()
        .map(|&(r, q)| {
            let p = run_config(r, q, 40, 8, 2, 0.5, 0xE12);
            vec![
                format!("{r}/{q}"),
                p.units.to_string(),
                p.wrong_accepted.to_string(),
                p.unresolved.to_string(),
                p.cheats_caught.to_string(),
                table::f(p.overhead, 1),
                table::f(p.cheater_score, 2),
            ]
        })
        .collect();
    format!(
        "E12 Redundant execution vs cheating volunteers\n\
         (40 units, 8 honest + 2 cheaters at 50% cheat rate)\n\n{}",
        table::render(
            &[
                "repl/quorum",
                "units",
                "wrong ok'd",
                "unresolved",
                "caught",
                "overhead x",
                "cheater rep"
            ],
            &rows
        )
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_redundancy_accepts_wrong_results() {
        let p = run_config(1, 1, 40, 8, 2, 1.0, 3);
        assert!(
            p.wrong_accepted > 0,
            "always-cheaters with no replication must slip through: {p:?}"
        );
        assert_eq!(p.cheats_caught, 0, "nothing to compare against");
    }

    #[test]
    fn triple_redundancy_outvotes_cheaters() {
        let p = run_config(3, 2, 40, 8, 2, 1.0, 5);
        assert_eq!(p.wrong_accepted, 0, "{p:?}");
        assert!(p.cheats_caught > 0, "{p:?}");
        assert!(p.cheater_score < 0.5, "{p:?}");
    }

    #[test]
    fn overhead_is_the_replication_factor() {
        for (r, q) in [(1, 1), (3, 2), (5, 3)] {
            let p = run_config(r, q, 10, 6, 0, 0.0, 7);
            assert_eq!(p.overhead, r as f64);
            assert_eq!(p.wrong_accepted, 0);
            assert_eq!(p.cheats_caught, 0);
        }
    }

    #[test]
    fn pair_replication_detects_but_cannot_decide() {
        // 2 replicas, quorum 2: a disagreement leaves no majority.
        let p = run_config(2, 2, 40, 6, 3, 1.0, 9);
        assert!(p.unresolved > 0, "{p:?}");
        assert_eq!(p.wrong_accepted, 0, "{p:?}");
    }
}
