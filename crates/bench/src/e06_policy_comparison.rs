//! E6 — §3.3: the two distribution policies compared.
//!
//! Paper: "There are two distribution policies currently implemented in
//! Triana, parallel and peer to peer. Parallel is a farming out mechanism
//! and generally involves no communication between hosts. Peer to Peer
//! means distributing the group vertically i.e. each unit in the group is
//! distributed onto a separate resource and data is passed between them."
//!
//! Reproduction: the same 4-stage group (fixed total work per token) run
//! both ways on the same LAN peers. Shape to match: both policies reach
//! similar steady-state throughput with k peers; the pipeline adds
//! per-token latency (a token crosses every host) while parallel keeps
//! latency at one group execution; parallel moves less intermediate data.

use crate::table;
use netsim::avail::AvailabilityTrace;
use netsim::{Duration, HostSpec, SimTime};
use p2p::DiscoveryMode;
use triana_core::grid::farm::{run_farm, FarmConfig, FarmScheduler, JobSpec};
use triana_core::grid::pipeline::{run_pipeline, PipelineScheduler, StageSpec};
use triana_core::grid::{GridWorld, WorkerSetup};

/// Results for one policy run.
#[derive(Clone, Copy, Debug)]
pub struct PolicyOutcome {
    pub throughput_tokens_per_s: f64,
    pub mean_latency_s: f64,
    pub bytes_moved: u64,
}

/// Workload: `stages` units of `stage_work` gigacycles each, `tokens`
/// tokens of `token_bytes` each, on `stages` LAN peers.
pub struct Workload {
    pub stages: usize,
    pub stage_work: f64,
    pub tokens: u64,
    pub token_bytes: u64,
}

impl Default for Workload {
    fn default() -> Self {
        Workload {
            stages: 4,
            stage_work: 2.0, // 1 s per stage on a 2 GHz host
            tokens: 40,
            token_bytes: 100_000,
        }
    }
}

/// Peer-to-peer (vertical pipeline) execution.
pub fn run_peer_to_peer(w: &Workload) -> PolicyOutcome {
    let mut world = GridWorld::new(6, DiscoveryMode::Flooding);
    let (ctrl, _) = world.add_peer(HostSpec::lan_workstation());
    let stages: Vec<StageSpec> = (0..w.stages)
        .map(|_| {
            let spec = HostSpec::lan_workstation();
            let (peer, _) = world.add_peer(spec.clone());
            StageSpec {
                peer,
                spec,
                work_gigacycles: w.stage_work,
            }
        })
        .collect();
    let mut pl = PipelineScheduler::new(&mut world, ctrl, "e6", stages, w.token_bytes);
    pl.emit_tokens(&mut world.sim, w.tokens, Duration::ZERO);
    run_pipeline(&mut world, &mut pl);
    assert!(pl.all_done(), "pipeline must drain");
    let st = pl.stats();
    PolicyOutcome {
        throughput_tokens_per_s: st.throughput(),
        mean_latency_s: st.mean_latency().as_secs_f64(),
        bytes_moved: world.net.stats().bytes,
    }
}

/// Parallel (farm-out) execution of whole-group clones.
pub fn run_parallel(w: &Workload) -> PolicyOutcome {
    let mut world = GridWorld::new(7, DiscoveryMode::Flooding);
    let (ctrl, _) = world.add_peer(HostSpec::lan_workstation());
    let mut farm = FarmScheduler::new(&world, ctrl, FarmConfig::default());
    let horizon = SimTime::from_secs(1_000_000);
    for _ in 0..w.stages {
        let spec = HostSpec::lan_workstation();
        let (peer, _) = world.add_peer(spec.clone());
        farm.add_worker(
            &mut world,
            WorkerSetup {
                peer,
                spec,
                trace: AvailabilityTrace::always(horizon),
                cache_bytes: 16 << 20,
            },
        );
    }
    for _ in 0..w.tokens {
        farm.submit(
            &mut world,
            JobSpec {
                work_gigacycles: w.stage_work * w.stages as f64,
                input_bytes: w.token_bytes,
                output_bytes: w.token_bytes,
                module: None,
            },
        );
    }
    run_farm(&mut world, &mut farm);
    assert!(farm.all_done(), "farm must drain");
    let st = farm.stats();
    PolicyOutcome {
        throughput_tokens_per_s: st.jobs_done as f64 / st.makespan.as_secs_f64(),
        mean_latency_s: st.total_latency.as_secs_f64() / st.jobs_done as f64,
        bytes_moved: world.net.stats().bytes,
    }
}

/// Sweep over stage counts (both policies get `stages` peers).
pub fn sweep(stage_counts: &[usize]) -> Vec<(usize, PolicyOutcome, PolicyOutcome)> {
    stage_counts
        .iter()
        .map(|&stages| {
            let w = Workload {
                stages,
                ..Workload::default()
            };
            (stages, run_peer_to_peer(&w), run_parallel(&w))
        })
        .collect()
}

pub fn report() -> String {
    let w = Workload::default();
    let p2p = run_peer_to_peer(&w);
    let par = run_parallel(&w);
    let rows = vec![
        vec![
            "peer-to-peer".to_string(),
            table::f(p2p.throughput_tokens_per_s, 3),
            table::f(p2p.mean_latency_s, 2),
            p2p.bytes_moved.to_string(),
        ],
        vec![
            "parallel".to_string(),
            table::f(par.throughput_tokens_per_s, 3),
            table::f(par.mean_latency_s, 2),
            par.bytes_moved.to_string(),
        ],
    ];
    let sweep_rows: Vec<Vec<String>> = sweep(&[2, 4, 8])
        .into_iter()
        .map(|(stages, p, f)| {
            vec![
                stages.to_string(),
                table::f(p.throughput_tokens_per_s, 3),
                table::f(f.throughput_tokens_per_s, 3),
                table::f(p.mean_latency_s, 2),
                table::f(f.mean_latency_s, 2),
                table::f(p.bytes_moved as f64 / f.bytes_moved as f64, 2),
            ]
        })
        .collect();
    format!(
        "E6  Distribution policies: {} stages x {:.1} Gc, {} tokens of {} B on {} LAN peers\n\n{}\n\
         stage-count sweep (same peers for both policies):\n{}",
        w.stages,
        w.stage_work,
        w.tokens,
        w.token_bytes,
        w.stages,
        table::render(
            &["policy", "tokens/s", "mean lat s", "bytes moved"],
            &rows
        ),
        table::render(
            &["stages", "p2p tok/s", "farm tok/s", "p2p lat", "farm lat", "bytes x"],
            &sweep_rows
        )
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughputs_are_comparable_with_equal_peers() {
        let w = Workload::default();
        let p2p = run_peer_to_peer(&w);
        let par = run_parallel(&w);
        let ratio = p2p.throughput_tokens_per_s / par.throughput_tokens_per_s;
        assert!(
            (0.5..2.0).contains(&ratio),
            "throughput ratio {ratio}: p2p {} vs par {}",
            p2p.throughput_tokens_per_s,
            par.throughput_tokens_per_s
        );
    }

    #[test]
    fn pipeline_latency_exceeds_parallel_latency_per_token() {
        // Parallel: a token's latency is queue wait + one group execution.
        // Pipeline under continuous load queues at every stage, so
        // in-flight latency is at least the full pipeline traversal; with
        // burst emission it is strictly larger than the farm's.
        let w = Workload {
            tokens: 12,
            ..Workload::default()
        };
        let p2p = run_peer_to_peer(&w);
        let par = run_parallel(&w);
        assert!(
            p2p.mean_latency_s > par.mean_latency_s,
            "pipeline {} vs parallel {}",
            p2p.mean_latency_s,
            par.mean_latency_s
        );
    }

    #[test]
    fn sweep_shapes_hold_across_stage_counts() {
        for (stages, p2p, par) in sweep(&[2, 8]) {
            let ratio = p2p.throughput_tokens_per_s / par.throughput_tokens_per_s;
            assert!(
                (0.4..2.5).contains(&ratio),
                "{stages} stages: throughput ratio {ratio}"
            );
            assert!(
                p2p.mean_latency_s >= par.mean_latency_s * 0.8,
                "{stages} stages: pipeline latency should not be far below farm"
            );
            let bytes_ratio = p2p.bytes_moved as f64 / par.bytes_moved as f64;
            let expect = (stages as f64 + 1.0) / 2.0;
            assert!(
                (bytes_ratio - expect).abs() / expect < 0.25,
                "{stages} stages: bytes ratio {bytes_ratio} vs {expect}"
            );
        }
    }

    #[test]
    fn parallel_involves_no_inter_host_communication() {
        // The paper: parallel "generally involves no communication between
        // hosts" — all its bytes are controller<->worker. Pipeline moves
        // each token across every stage boundary, so with equal token
        // counts it shifts more intermediate data per token than the
        // farm's 2 transfers (in + out).
        let w = Workload::default();
        let p2p = run_peer_to_peer(&w);
        let par = run_parallel(&w);
        // p2p: (stages + 1) hops per token; parallel: 2 hops per token.
        let expected_ratio = (w.stages as f64 + 1.0) / 2.0;
        let actual = p2p.bytes_moved as f64 / par.bytes_moved as f64;
        assert!(
            (actual - expected_ratio).abs() / expected_ratio < 0.25,
            "bytes ratio {actual}, expected ~{expected_ratio}"
        );
    }
}
