//! Signal-processing units: the Figure 1 network.
//!
//! "The figure illustrates a simple network that creates a sine wave,
//! contaminates it with Gaussian-noise, takes its power spectrum and then
//! uses a unit called AccumStat to average the spectra over successive
//! iterations to remove the noise from the original signal." (§3.1,
//! Figures 1 & 2.)

use crate::fft;
use netsim::Pcg32;
use triana_core::data::{DataType, TrianaData, TypeSpec};
use triana_core::unit::{param_f64, param_usize, Params, Unit, UnitError};

/// Sine-wave source with phase continuity across iterations.
pub struct Wave {
    pub freq_hz: f64,
    pub rate_hz: f64,
    pub samples: usize,
    pub amplitude: f64,
    phase: f64,
}

impl Wave {
    pub fn from_params(p: &Params) -> Result<Self, UnitError> {
        Ok(Wave {
            freq_hz: param_f64(p, "freq", 64.0)?,
            rate_hz: param_f64(p, "rate", 1024.0)?,
            samples: param_usize(p, "samples", 1024)?,
            amplitude: param_f64(p, "amplitude", 1.0)?,
            phase: 0.0,
        })
    }
}

impl Unit for Wave {
    fn type_name(&self) -> &str {
        "Wave"
    }
    fn input_types(&self) -> Vec<TypeSpec> {
        vec![]
    }
    fn output_types(&self) -> Vec<DataType> {
        vec![DataType::SampleSet]
    }
    fn process(&mut self, _inputs: Vec<TrianaData>) -> Result<Vec<TrianaData>, UnitError> {
        let dphi = std::f64::consts::TAU * self.freq_hz / self.rate_hz;
        let mut samples = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            samples.push(self.amplitude * self.phase.sin());
            self.phase += dphi;
        }
        self.phase %= std::f64::consts::TAU;
        Ok(vec![TrianaData::SampleSet {
            rate_hz: self.rate_hz,
            samples,
        }])
    }
    fn reset(&mut self) {
        self.phase = 0.0;
    }
    fn work_estimate(&self, _inputs: &[TrianaData]) -> f64 {
        self.samples as f64 * 20.0 / 1e9
    }
}

/// Adds zero-mean Gaussian noise of standard deviation `sigma`.
pub struct GaussianNoise {
    pub sigma: f64,
    rng: Pcg32,
}

impl GaussianNoise {
    pub fn from_params(p: &Params) -> Result<Self, UnitError> {
        let seed = param_usize(p, "seed", 12345)? as u64;
        Ok(GaussianNoise {
            sigma: param_f64(p, "sigma", 1.0)?,
            rng: Pcg32::new(seed, 0x6015E),
        })
    }
}

impl Unit for GaussianNoise {
    fn type_name(&self) -> &str {
        "GaussianNoise"
    }
    fn input_types(&self) -> Vec<TypeSpec> {
        vec![TypeSpec::Exact(DataType::SampleSet)]
    }
    fn output_types(&self) -> Vec<DataType> {
        vec![DataType::SampleSet]
    }
    fn process(&mut self, inputs: Vec<TrianaData>) -> Result<Vec<TrianaData>, UnitError> {
        match inputs.into_iter().next() {
            Some(TrianaData::SampleSet { rate_hz, samples }) => {
                let noisy = samples
                    .into_iter()
                    .map(|x| x + self.sigma * self.rng.normal())
                    .collect();
                Ok(vec![TrianaData::SampleSet {
                    rate_hz,
                    samples: noisy,
                }])
            }
            other => Err(UnitError::Runtime(format!(
                "GaussianNoise expects a SampleSet, got {other:?}"
            ))),
        }
    }
}

/// Full complex FFT of a sample set.
pub struct FftUnit;

impl Unit for FftUnit {
    fn type_name(&self) -> &str {
        "FFT"
    }
    fn input_types(&self) -> Vec<TypeSpec> {
        vec![TypeSpec::Exact(DataType::SampleSet)]
    }
    fn output_types(&self) -> Vec<DataType> {
        vec![DataType::ComplexSpectrum]
    }
    fn process(&mut self, inputs: Vec<TrianaData>) -> Result<Vec<TrianaData>, UnitError> {
        match inputs.into_iter().next() {
            Some(TrianaData::SampleSet { rate_hz, samples }) => {
                let df_hz = rate_hz / samples.len().max(1) as f64;
                let (re, im) = fft::fft_real(&samples);
                Ok(vec![TrianaData::ComplexSpectrum { df_hz, re, im }])
            }
            other => Err(UnitError::Runtime(format!(
                "FFT expects a SampleSet, got {other:?}"
            ))),
        }
    }
    fn work_estimate(&self, inputs: &[TrianaData]) -> f64 {
        // ~5 n log2 n flops, a few cycles each.
        if let Some(TrianaData::SampleSet { samples, .. }) = inputs.first() {
            let n = samples.len().max(2) as f64;
            5.0 * n * n.log2() * 4.0 / 1e9
        } else {
            0.0
        }
    }
}

/// One-sided power spectrum of a sample set.
pub struct PowerSpectrum;

impl Unit for PowerSpectrum {
    fn type_name(&self) -> &str {
        "PowerSpectrum"
    }
    fn input_types(&self) -> Vec<TypeSpec> {
        vec![TypeSpec::Exact(DataType::SampleSet)]
    }
    fn output_types(&self) -> Vec<DataType> {
        vec![DataType::Spectrum]
    }
    fn process(&mut self, inputs: Vec<TrianaData>) -> Result<Vec<TrianaData>, UnitError> {
        match inputs.into_iter().next() {
            Some(TrianaData::SampleSet { rate_hz, samples }) => {
                let df_hz = rate_hz / samples.len().max(1) as f64;
                let power = fft::power_spectrum(&samples);
                Ok(vec![TrianaData::Spectrum { df_hz, power }])
            }
            other => Err(UnitError::Runtime(format!(
                "PowerSpectrum expects a SampleSet, got {other:?}"
            ))),
        }
    }
}

/// Running average of successive spectra ("average the spectra over
/// successive iterations to remove the noise").
pub struct AccumStat {
    count: u64,
    mean: Vec<f64>,
    df_hz: f64,
}

impl AccumStat {
    pub fn new() -> Self {
        AccumStat {
            count: 0,
            mean: Vec::new(),
            df_hz: 0.0,
        }
    }
}

impl Default for AccumStat {
    fn default() -> Self {
        Self::new()
    }
}

impl Unit for AccumStat {
    fn type_name(&self) -> &str {
        "AccumStat"
    }
    fn input_types(&self) -> Vec<TypeSpec> {
        vec![TypeSpec::Exact(DataType::Spectrum)]
    }
    fn output_types(&self) -> Vec<DataType> {
        vec![DataType::Spectrum]
    }
    fn process(&mut self, inputs: Vec<TrianaData>) -> Result<Vec<TrianaData>, UnitError> {
        match inputs.into_iter().next() {
            Some(TrianaData::Spectrum { df_hz, power }) => {
                if self.mean.is_empty() {
                    self.mean = vec![0.0; power.len()];
                    self.df_hz = df_hz;
                } else if self.mean.len() != power.len() {
                    return Err(UnitError::Runtime(
                        "AccumStat: spectrum length changed mid-run".into(),
                    ));
                }
                self.count += 1;
                let k = 1.0 / self.count as f64;
                for (m, x) in self.mean.iter_mut().zip(&power) {
                    *m += (x - *m) * k;
                }
                Ok(vec![TrianaData::Spectrum {
                    df_hz: self.df_hz,
                    power: self.mean.clone(),
                }])
            }
            other => Err(UnitError::Runtime(format!(
                "AccumStat expects a Spectrum, got {other:?}"
            ))),
        }
    }
    fn reset(&mut self) {
        self.count = 0;
        self.mean.clear();
    }
}

/// The display sink: passes data through so the engine's collection point
/// (an unconnected output) captures what the user would see (Figure 2).
pub struct Grapher;

impl Unit for Grapher {
    fn type_name(&self) -> &str {
        "Grapher"
    }
    fn input_types(&self) -> Vec<TypeSpec> {
        vec![TypeSpec::Any]
    }
    fn output_types(&self) -> Vec<DataType> {
        vec![DataType::Spectrum]
    }
    fn process(&mut self, inputs: Vec<TrianaData>) -> Result<Vec<TrianaData>, UnitError> {
        match inputs.into_iter().next() {
            Some(d @ TrianaData::Spectrum { .. }) => Ok(vec![d]),
            Some(TrianaData::SampleSet { rate_hz, samples }) => {
                // Render a time series as a "spectrum" trace for display.
                Ok(vec![TrianaData::Spectrum {
                    df_hz: 1.0 / rate_hz.max(f64::MIN_POSITIVE),
                    power: samples,
                }])
            }
            other => Err(UnitError::Runtime(format!(
                "Grapher cannot display {other:?}"
            ))),
        }
    }
}

/// Signal visibility in a spectrum at the bin nearest `freq_hz`: the peak's
/// height above the noise floor, in units of the floor's *fluctuation*
/// (standard deviation). This is the Figure 2 metric: averaging does not
/// lower the mean noise floor, it shrinks its fluctuations by √N, which is
/// what makes the buried tone emerge after 20 iterations.
pub fn spectrum_snr(power: &[f64], df_hz: f64, freq_hz: f64) -> f64 {
    if power.len() < 8 || df_hz <= 0.0 {
        return 0.0;
    }
    let k0 = ((freq_hz / df_hz).round() as usize).min(power.len() - 1);
    let peak = power[k0];
    let mut noise = Vec::with_capacity(power.len());
    for (k, &p) in power.iter().enumerate() {
        // Exclude the peak and its immediate neighbours (leakage).
        if k + 2 < k0 || k > k0 + 2 {
            noise.push(p);
        }
    }
    if noise.is_empty() {
        return f64::INFINITY;
    }
    let mean = noise.iter().sum::<f64>() / noise.len() as f64;
    let var = noise.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / noise.len() as f64;
    let sd = var.sqrt();
    if sd <= 0.0 {
        return if peak > mean { f64::INFINITY } else { 0.0 };
    }
    (peak - mean) / sd
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_wave(freq: f64, rate: f64, n: usize) -> Vec<f64> {
        let mut w = Wave {
            freq_hz: freq,
            rate_hz: rate,
            samples: n,
            amplitude: 1.0,
            phase: 0.0,
        };
        match w.process(vec![]).unwrap().pop().unwrap() {
            TrianaData::SampleSet { samples, .. } => samples,
            _ => unreachable!(),
        }
    }

    #[test]
    fn wave_produces_expected_tone() {
        let s = run_wave(64.0, 1024.0, 1024);
        assert_eq!(s.len(), 1024);
        // samples[4] should be sin(2*pi*64*4/1024) = sin(pi/2) = 1
        assert!((s[4] - 1.0).abs() < 1e-9);
        let ps = fft::power_spectrum(&s);
        let peak = ps
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert_eq!(peak, 64);
    }

    #[test]
    fn wave_phase_is_continuous_across_iterations() {
        let mut w = Wave {
            freq_hz: 10.0,
            rate_hz: 1000.0,
            samples: 100,
            amplitude: 1.0,
            phase: 0.0,
        };
        let mut two_blocks = Vec::new();
        for _ in 0..2 {
            if let TrianaData::SampleSet { samples, .. } = w.process(vec![]).unwrap().pop().unwrap()
            {
                two_blocks.extend(samples);
            }
        }
        let reference = run_wave(10.0, 1000.0, 200);
        for (a, b) in two_blocks.iter().zip(&reference) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn noise_changes_signal_but_preserves_mean() {
        let clean = TrianaData::SampleSet {
            rate_hz: 1000.0,
            samples: vec![0.0; 20_000],
        };
        let mut g = GaussianNoise {
            sigma: 2.0,
            rng: Pcg32::new(1, 1),
        };
        let out = g.process(vec![clean]).unwrap().pop().unwrap();
        let TrianaData::SampleSet { samples, .. } = out else {
            panic!()
        };
        let mean: f64 = samples.iter().sum::<f64>() / samples.len() as f64;
        let var: f64 = samples.iter().map(|x| x * x).sum::<f64>() / samples.len() as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.2, "var {var}");
    }

    #[test]
    fn accumstat_converges_to_the_mean() {
        let mut acc = AccumStat::new();
        // Alternate two spectra; running mean converges to their average.
        for i in 0..100 {
            let v = if i % 2 == 0 { 1.0 } else { 3.0 };
            acc.process(vec![TrianaData::Spectrum {
                df_hz: 1.0,
                power: vec![v; 4],
            }])
            .unwrap();
        }
        let out = acc
            .process(vec![TrianaData::Spectrum {
                df_hz: 1.0,
                power: vec![1.0; 4],
            }])
            .unwrap()
            .pop()
            .unwrap();
        let TrianaData::Spectrum { power, .. } = out else {
            panic!()
        };
        assert!((power[0] - 2.0).abs() < 0.05, "{}", power[0]);
    }

    #[test]
    fn accumstat_rejects_length_change() {
        let mut acc = AccumStat::new();
        acc.process(vec![TrianaData::Spectrum {
            df_hz: 1.0,
            power: vec![1.0; 4],
        }])
        .unwrap();
        let e = acc
            .process(vec![TrianaData::Spectrum {
                df_hz: 1.0,
                power: vec![1.0; 8],
            }])
            .err();
        assert!(e.is_some());
    }

    #[test]
    fn figure2_snr_improves_with_averaging() {
        // The Figure 2 experiment in miniature: a sine in heavy noise.
        let rate = 1024.0;
        let n = 1024;
        let freq = 64.0;
        let mut wave = Wave {
            freq_hz: freq,
            rate_hz: rate,
            samples: n,
            amplitude: 0.3,
            phase: 0.0,
        };
        let mut noise = GaussianNoise {
            sigma: 2.0,
            rng: Pcg32::new(7, 3),
        };
        let mut ps = PowerSpectrum;
        let mut acc = AccumStat::new();
        let mut snr_1 = 0.0;
        let mut snr_20 = 0.0;
        for iter in 1..=20 {
            let w = wave.process(vec![]).unwrap();
            let noisy = noise.process(w).unwrap();
            let spec = ps.process(noisy).unwrap();
            let avg = acc.process(spec).unwrap().pop().unwrap();
            let TrianaData::Spectrum { df_hz, power } = avg else {
                panic!()
            };
            let snr = spectrum_snr(&power, df_hz, freq);
            if iter == 1 {
                snr_1 = snr;
            }
            if iter == 20 {
                snr_20 = snr;
            }
        }
        assert!(
            snr_20 > snr_1 * 2.0,
            "averaging should raise SNR: {snr_1:.1} -> {snr_20:.1}"
        );
    }

    #[test]
    fn grapher_passes_spectra_and_renders_samplesets() {
        let mut g = Grapher;
        let spec = TrianaData::Spectrum {
            df_hz: 2.0,
            power: vec![1.0, 2.0],
        };
        assert_eq!(g.process(vec![spec.clone()]).unwrap(), vec![spec]);
        let out = g
            .process(vec![TrianaData::SampleSet {
                rate_hz: 10.0,
                samples: vec![5.0],
            }])
            .unwrap()
            .pop()
            .unwrap();
        assert!(matches!(out, TrianaData::Spectrum { .. }));
        assert!(g.process(vec![TrianaData::Scalar(1.0)]).is_err());
    }

    #[test]
    fn snr_helper_edge_cases() {
        assert_eq!(spectrum_snr(&[], 1.0, 5.0), 0.0);
        assert_eq!(spectrum_snr(&[1.0, 2.0], 1.0, 1.0), 0.0);
        assert_eq!(spectrum_snr(&[1.0; 10], 0.0, 1.0), 0.0);
        // Flat floor with a single peak: zero floor fluctuation -> infinite.
        let mut p = vec![1.0; 64];
        p[10] = 5.0;
        assert!(spectrum_snr(&p, 1.0, 10.0).is_infinite());
        // Flat spectrum including the "peak": nothing sticks out.
        assert_eq!(spectrum_snr(&vec![1.0; 64], 1.0, 10.0), 0.0);
    }
}
