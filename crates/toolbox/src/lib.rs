//! `toolbox` — the built-in Triana unit library.
//!
//! §3.1: Triana "comes with many built-in functions that can be used to
//! manipulate numeric, signal, image and textual data". This crate provides
//! the units the paper's figures and scenarios use:
//!
//! * [`fft`] — radix-2 + Bluestein FFT (the numerical substrate);
//! * [`signal`] — `Wave`, `GaussianNoise`, `FFT`, `PowerSpectrum`,
//!   `AccumStat`, `Grapher`: the Figure 1 network and the Figure 2
//!   noise-averaging experiment;
//! * [`galaxy`] — Case 1: synthetic galaxy-formation snapshots and the SPH
//!   column-density frame renderer;
//! * [`inspiral`] — Case 2: chirp templates and the matched-filter search,
//!   calibrated to the paper's quoted costs;
//! * [`db`] — Case 3: the data access / manipulate / visualise / verify
//!   service units over an in-memory table store;
//! * [`tvm_unit`] — the adapter that turns a transferred TVM module blob
//!   into a live unit (user-defined code on the Consumer Grid);
//! * [`registry`] — `standard_registry()`: every built-in, registered.

pub mod db;
pub mod fft;
pub mod galaxy;
pub mod inspiral;
pub mod registry;
pub mod signal;
pub mod tvm_unit;
pub mod units;

pub use registry::standard_registry;
