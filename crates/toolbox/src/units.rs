//! General-purpose toolbox units.
//!
//! §3.1: Triana "comes with many built-in functions that can be used to
//! manipulate numeric, signal, image and textual data". This module holds
//! the broad everyday units; the domain-specific ones live in [`crate::signal`],
//! [`crate::galaxy`], [`crate::inspiral`] and [`crate::db`].

use triana_core::data::{DataType, Table, TrianaData, TypeSpec};
use triana_core::unit::{param_f64, param_usize, Params, Unit, UnitError};

fn one_sampleset(who: &str, inputs: Vec<TrianaData>) -> Result<(f64, Vec<f64>), UnitError> {
    match inputs.into_iter().next() {
        Some(TrianaData::SampleSet { rate_hz, samples }) => Ok((rate_hz, samples)),
        other => Err(UnitError::Runtime(format!(
            "{who} expects a SampleSet, got {other:?}"
        ))),
    }
}

// ---------- numeric / signal ----------

/// Emits a constant scalar every iteration.
pub struct Const {
    pub value: f64,
}

impl Const {
    pub fn from_params(p: &Params) -> Result<Self, UnitError> {
        Ok(Const {
            value: param_f64(p, "value", 0.0)?,
        })
    }
}

impl Unit for Const {
    fn type_name(&self) -> &str {
        "Const"
    }
    fn input_types(&self) -> Vec<TypeSpec> {
        vec![]
    }
    fn output_types(&self) -> Vec<DataType> {
        vec![DataType::Scalar]
    }
    fn process(&mut self, _inputs: Vec<TrianaData>) -> Result<Vec<TrianaData>, UnitError> {
        Ok(vec![TrianaData::Scalar(self.value)])
    }
}

/// Element-wise sum of two sample sets (or two scalars).
pub struct Adder;

impl Unit for Adder {
    fn type_name(&self) -> &str {
        "Adder"
    }
    fn input_types(&self) -> Vec<TypeSpec> {
        vec![
            TypeSpec::OneOf(vec![DataType::SampleSet, DataType::Scalar]),
            TypeSpec::OneOf(vec![DataType::SampleSet, DataType::Scalar]),
        ]
    }
    fn output_types(&self) -> Vec<DataType> {
        vec![DataType::SampleSet]
    }
    fn process(&mut self, inputs: Vec<TrianaData>) -> Result<Vec<TrianaData>, UnitError> {
        let mut it = inputs.into_iter();
        let (a, b) = (it.next(), it.next());
        match (a, b) {
            (
                Some(TrianaData::SampleSet {
                    rate_hz,
                    samples: x,
                }),
                Some(TrianaData::SampleSet { samples: y, .. }),
            ) => {
                if x.len() != y.len() {
                    return Err(UnitError::Runtime(format!(
                        "Adder: length mismatch {} vs {}",
                        x.len(),
                        y.len()
                    )));
                }
                let sum = x.iter().zip(&y).map(|(p, q)| p + q).collect();
                Ok(vec![TrianaData::SampleSet {
                    rate_hz,
                    samples: sum,
                }])
            }
            (Some(TrianaData::SampleSet { rate_hz, samples }), Some(TrianaData::Scalar(s)))
            | (Some(TrianaData::Scalar(s)), Some(TrianaData::SampleSet { rate_hz, samples })) => {
                Ok(vec![TrianaData::SampleSet {
                    rate_hz,
                    samples: samples.into_iter().map(|x| x + s).collect(),
                }])
            }
            (Some(TrianaData::Scalar(a)), Some(TrianaData::Scalar(b))) => {
                Ok(vec![TrianaData::SampleSet {
                    rate_hz: 1.0,
                    samples: vec![a + b],
                }])
            }
            other => Err(UnitError::Runtime(format!(
                "Adder: unsupported inputs {other:?}"
            ))),
        }
    }
}

/// Multiplies a sample set by a constant gain.
pub struct Scaler {
    pub gain: f64,
}

impl Scaler {
    pub fn from_params(p: &Params) -> Result<Self, UnitError> {
        Ok(Scaler {
            gain: param_f64(p, "gain", 1.0)?,
        })
    }
}

impl Unit for Scaler {
    fn type_name(&self) -> &str {
        "Scaler"
    }
    fn input_types(&self) -> Vec<TypeSpec> {
        vec![TypeSpec::Exact(DataType::SampleSet)]
    }
    fn output_types(&self) -> Vec<DataType> {
        vec![DataType::SampleSet]
    }
    fn process(&mut self, inputs: Vec<TrianaData>) -> Result<Vec<TrianaData>, UnitError> {
        let (rate_hz, samples) = one_sampleset("Scaler", inputs)?;
        Ok(vec![TrianaData::SampleSet {
            rate_hz,
            samples: samples.into_iter().map(|x| x * self.gain).collect(),
        }])
    }
}

/// Window kind for [`Window`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WindowKind {
    Hann,
    Hamming,
    Blackman,
    Rect,
}

/// Applies an analysis window to a sample block (reduces spectral leakage
/// ahead of PowerSpectrum).
pub struct Window {
    pub kind: WindowKind,
}

impl Window {
    pub fn from_params(p: &Params) -> Result<Self, UnitError> {
        let kind = match p.get("kind").map(String::as_str) {
            None | Some("hann") => WindowKind::Hann,
            Some("hamming") => WindowKind::Hamming,
            Some("blackman") => WindowKind::Blackman,
            Some("rect") => WindowKind::Rect,
            Some(other) => {
                return Err(UnitError::BadParam {
                    param: "kind".into(),
                    message: format!("unknown window `{other}`"),
                })
            }
        };
        Ok(Window { kind })
    }

    fn coeff(&self, i: usize, n: usize) -> f64 {
        if n <= 1 {
            return 1.0;
        }
        let x = i as f64 / (n - 1) as f64;
        let tau = std::f64::consts::TAU;
        match self.kind {
            WindowKind::Hann => 0.5 - 0.5 * (tau * x).cos(),
            WindowKind::Hamming => 0.54 - 0.46 * (tau * x).cos(),
            WindowKind::Blackman => 0.42 - 0.5 * (tau * x).cos() + 0.08 * (2.0 * tau * x).cos(),
            WindowKind::Rect => 1.0,
        }
    }
}

impl Unit for Window {
    fn type_name(&self) -> &str {
        "Window"
    }
    fn input_types(&self) -> Vec<TypeSpec> {
        vec![TypeSpec::Exact(DataType::SampleSet)]
    }
    fn output_types(&self) -> Vec<DataType> {
        vec![DataType::SampleSet]
    }
    fn process(&mut self, inputs: Vec<TrianaData>) -> Result<Vec<TrianaData>, UnitError> {
        let (rate_hz, samples) = one_sampleset("Window", inputs)?;
        let n = samples.len();
        let windowed = samples
            .into_iter()
            .enumerate()
            .map(|(i, x)| x * self.coeff(i, n))
            .collect();
        Ok(vec![TrianaData::SampleSet {
            rate_hz,
            samples: windowed,
        }])
    }
}

/// Keeps every `factor`-th sample (rate divides accordingly).
pub struct Decimate {
    pub factor: usize,
}

impl Decimate {
    pub fn from_params(p: &Params) -> Result<Self, UnitError> {
        let factor = param_usize(p, "factor", 2)?;
        if factor == 0 {
            return Err(UnitError::BadParam {
                param: "factor".into(),
                message: "must be >= 1".into(),
            });
        }
        Ok(Decimate { factor })
    }
}

impl Unit for Decimate {
    fn type_name(&self) -> &str {
        "Decimate"
    }
    fn input_types(&self) -> Vec<TypeSpec> {
        vec![TypeSpec::Exact(DataType::SampleSet)]
    }
    fn output_types(&self) -> Vec<DataType> {
        vec![DataType::SampleSet]
    }
    fn process(&mut self, inputs: Vec<TrianaData>) -> Result<Vec<TrianaData>, UnitError> {
        let (rate_hz, samples) = one_sampleset("Decimate", inputs)?;
        Ok(vec![TrianaData::SampleSet {
            rate_hz: rate_hz / self.factor as f64,
            samples: samples.into_iter().step_by(self.factor).collect(),
        }])
    }
}

/// ComplexSpectrum → one-sided magnitude Spectrum.
pub struct Magnitude;

impl Unit for Magnitude {
    fn type_name(&self) -> &str {
        "Magnitude"
    }
    fn input_types(&self) -> Vec<TypeSpec> {
        vec![TypeSpec::Exact(DataType::ComplexSpectrum)]
    }
    fn output_types(&self) -> Vec<DataType> {
        vec![DataType::Spectrum]
    }
    fn process(&mut self, inputs: Vec<TrianaData>) -> Result<Vec<TrianaData>, UnitError> {
        match inputs.into_iter().next() {
            Some(TrianaData::ComplexSpectrum { df_hz, re, im }) => {
                let half = re.len() / 2 + 1;
                let power = re
                    .iter()
                    .zip(&im)
                    .take(half)
                    .map(|(r, i)| (r * r + i * i).sqrt())
                    .collect();
                Ok(vec![TrianaData::Spectrum { df_hz, power }])
            }
            other => Err(UnitError::Runtime(format!(
                "Magnitude expects a ComplexSpectrum, got {other:?}"
            ))),
        }
    }
}

/// Spectrum → decibels relative to the peak bin.
pub struct Decibel;

impl Unit for Decibel {
    fn type_name(&self) -> &str {
        "Decibel"
    }
    fn input_types(&self) -> Vec<TypeSpec> {
        vec![TypeSpec::Exact(DataType::Spectrum)]
    }
    fn output_types(&self) -> Vec<DataType> {
        vec![DataType::Spectrum]
    }
    fn process(&mut self, inputs: Vec<TrianaData>) -> Result<Vec<TrianaData>, UnitError> {
        match inputs.into_iter().next() {
            Some(TrianaData::Spectrum { df_hz, power }) => {
                let peak = power.iter().cloned().fold(0.0f64, f64::max);
                let floor = -160.0;
                let db = power
                    .into_iter()
                    .map(|p| {
                        if p <= 0.0 || peak <= 0.0 {
                            floor
                        } else {
                            (10.0 * (p / peak).log10()).max(floor)
                        }
                    })
                    .collect();
                Ok(vec![TrianaData::Spectrum { df_hz, power: db }])
            }
            other => Err(UnitError::Runtime(format!(
                "Decibel expects a Spectrum, got {other:?}"
            ))),
        }
    }
}

/// Summary statistics of a sample block, as a one-row table.
pub struct Statistics;

impl Unit for Statistics {
    fn type_name(&self) -> &str {
        "Statistics"
    }
    fn input_types(&self) -> Vec<TypeSpec> {
        vec![TypeSpec::Exact(DataType::SampleSet)]
    }
    fn output_types(&self) -> Vec<DataType> {
        vec![DataType::Table]
    }
    fn process(&mut self, inputs: Vec<TrianaData>) -> Result<Vec<TrianaData>, UnitError> {
        let (_, samples) = one_sampleset("Statistics", inputs)?;
        let mut t = Table::new(vec![
            "n".into(),
            "mean".into(),
            "sd".into(),
            "min".into(),
            "max".into(),
            "rms".into(),
        ]);
        if samples.is_empty() {
            t.rows.push(vec![0.0; 6]);
        } else {
            let n = samples.len() as f64;
            let mean = samples.iter().sum::<f64>() / n;
            let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
            let rms = (samples.iter().map(|x| x * x).sum::<f64>() / n).sqrt();
            let min = samples.iter().cloned().fold(f64::INFINITY, f64::min);
            let max = samples.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            t.rows.push(vec![n, mean, var.sqrt(), min, max, rms]);
        }
        Ok(vec![TrianaData::Table(t)])
    }
}

// ---------- image ----------

fn one_image(who: &str, inputs: Vec<TrianaData>) -> Result<(u32, u32, Vec<f64>), UnitError> {
    match inputs.into_iter().next() {
        Some(TrianaData::ImageFrame {
            width,
            height,
            pixels,
        }) => Ok((width, height, pixels)),
        other => Err(UnitError::Runtime(format!(
            "{who} expects an ImageFrame, got {other:?}"
        ))),
    }
}

/// Binary threshold: pixels >= threshold×max become 1, else 0.
pub struct Threshold {
    /// Relative threshold in [0, 1].
    pub level: f64,
}

impl Threshold {
    pub fn from_params(p: &Params) -> Result<Self, UnitError> {
        Ok(Threshold {
            level: param_f64(p, "level", 0.5)?,
        })
    }
}

impl Unit for Threshold {
    fn type_name(&self) -> &str {
        "Threshold"
    }
    fn input_types(&self) -> Vec<TypeSpec> {
        vec![TypeSpec::Exact(DataType::ImageFrame)]
    }
    fn output_types(&self) -> Vec<DataType> {
        vec![DataType::ImageFrame]
    }
    fn process(&mut self, inputs: Vec<TrianaData>) -> Result<Vec<TrianaData>, UnitError> {
        let (width, height, pixels) = one_image("Threshold", inputs)?;
        let max = pixels.iter().cloned().fold(0.0f64, f64::max);
        let cut = self.level * max;
        Ok(vec![TrianaData::ImageFrame {
            width,
            height,
            pixels: pixels
                .into_iter()
                .map(|p| if p >= cut && max > 0.0 { 1.0 } else { 0.0 })
                .collect(),
        }])
    }
}

/// Rescales pixel intensities to [0, 1].
pub struct NormalizeImage;

impl Unit for NormalizeImage {
    fn type_name(&self) -> &str {
        "NormalizeImage"
    }
    fn input_types(&self) -> Vec<TypeSpec> {
        vec![TypeSpec::Exact(DataType::ImageFrame)]
    }
    fn output_types(&self) -> Vec<DataType> {
        vec![DataType::ImageFrame]
    }
    fn process(&mut self, inputs: Vec<TrianaData>) -> Result<Vec<TrianaData>, UnitError> {
        let (width, height, pixels) = one_image("NormalizeImage", inputs)?;
        let (lo, hi) = pixels
            .iter()
            .fold((f64::INFINITY, f64::NEG_INFINITY), |(l, h), &p| {
                (l.min(p), h.max(p))
            });
        let span = (hi - lo).max(f64::MIN_POSITIVE);
        Ok(vec![TrianaData::ImageFrame {
            width,
            height,
            pixels: pixels.into_iter().map(|p| (p - lo) / span).collect(),
        }])
    }
}

/// 2× box-filter downsample.
pub struct Downsample;

impl Unit for Downsample {
    fn type_name(&self) -> &str {
        "Downsample"
    }
    fn input_types(&self) -> Vec<TypeSpec> {
        vec![TypeSpec::Exact(DataType::ImageFrame)]
    }
    fn output_types(&self) -> Vec<DataType> {
        vec![DataType::ImageFrame]
    }
    fn process(&mut self, inputs: Vec<TrianaData>) -> Result<Vec<TrianaData>, UnitError> {
        let (width, height, pixels) = one_image("Downsample", inputs)?;
        let (w2, h2) = (width / 2, height / 2);
        let mut out = vec![0.0f64; (w2 * h2) as usize];
        for y in 0..h2 {
            for x in 0..w2 {
                let mut acc = 0.0;
                for dy in 0..2 {
                    for dx in 0..2 {
                        acc += pixels[((2 * y + dy) * width + 2 * x + dx) as usize];
                    }
                }
                out[(y * w2 + x) as usize] = acc / 4.0;
            }
        }
        Ok(vec![TrianaData::ImageFrame {
            width: w2,
            height: h2,
            pixels: out,
        }])
    }
}

// ---------- text ----------

/// Emits a fixed text token each iteration.
pub struct TextSource {
    pub text: String,
}

impl Unit for TextSource {
    fn type_name(&self) -> &str {
        "TextSource"
    }
    fn input_types(&self) -> Vec<TypeSpec> {
        vec![]
    }
    fn output_types(&self) -> Vec<DataType> {
        vec![DataType::Text]
    }
    fn process(&mut self, _inputs: Vec<TrianaData>) -> Result<Vec<TrianaData>, UnitError> {
        Ok(vec![TrianaData::Text(self.text.clone())])
    }
}

/// Counts whitespace-separated words.
pub struct WordCount;

impl Unit for WordCount {
    fn type_name(&self) -> &str {
        "WordCount"
    }
    fn input_types(&self) -> Vec<TypeSpec> {
        vec![TypeSpec::Exact(DataType::Text)]
    }
    fn output_types(&self) -> Vec<DataType> {
        vec![DataType::Scalar]
    }
    fn process(&mut self, inputs: Vec<TrianaData>) -> Result<Vec<TrianaData>, UnitError> {
        match inputs.into_iter().next() {
            Some(TrianaData::Text(s)) => {
                Ok(vec![
                    TrianaData::Scalar(s.split_whitespace().count() as f64),
                ])
            }
            other => Err(UnitError::Runtime(format!(
                "WordCount expects Text, got {other:?}"
            ))),
        }
    }
}

/// Concatenates two text tokens with a separator.
pub struct Concat {
    pub separator: String,
}

impl Unit for Concat {
    fn type_name(&self) -> &str {
        "Concat"
    }
    fn input_types(&self) -> Vec<TypeSpec> {
        vec![
            TypeSpec::Exact(DataType::Text),
            TypeSpec::Exact(DataType::Text),
        ]
    }
    fn output_types(&self) -> Vec<DataType> {
        vec![DataType::Text]
    }
    fn process(&mut self, inputs: Vec<TrianaData>) -> Result<Vec<TrianaData>, UnitError> {
        let mut it = inputs.into_iter();
        match (it.next(), it.next()) {
            (Some(TrianaData::Text(a)), Some(TrianaData::Text(b))) => {
                Ok(vec![TrianaData::Text(format!("{a}{}{b}", self.separator))])
            }
            other => Err(UnitError::Runtime(format!(
                "Concat expects two Text inputs, got {other:?}"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ss(samples: Vec<f64>) -> TrianaData {
        TrianaData::SampleSet {
            rate_hz: 100.0,
            samples,
        }
    }

    #[test]
    fn adder_handles_all_input_combinations() {
        let mut a = Adder;
        let out = a
            .process(vec![ss(vec![1.0, 2.0]), ss(vec![10.0, 20.0])])
            .unwrap();
        assert_eq!(out[0], ss(vec![11.0, 22.0]));
        let out = a
            .process(vec![ss(vec![1.0]), TrianaData::Scalar(5.0)])
            .unwrap();
        assert_eq!(out[0], ss(vec![6.0]));
        let out = a
            .process(vec![TrianaData::Scalar(2.0), TrianaData::Scalar(3.0)])
            .unwrap();
        let TrianaData::SampleSet { samples, .. } = &out[0] else {
            panic!()
        };
        assert_eq!(samples, &vec![5.0]);
        assert!(a.process(vec![ss(vec![1.0]), ss(vec![1.0, 2.0])]).is_err());
    }

    #[test]
    fn scaler_scales() {
        let mut s = Scaler { gain: -2.0 };
        let out = s.process(vec![ss(vec![1.0, -3.0])]).unwrap();
        assert_eq!(out[0], ss(vec![-2.0, 6.0]));
    }

    #[test]
    fn windows_taper_edges_and_preserve_rect() {
        for (kind, tapered) in [
            (WindowKind::Hann, true),
            (WindowKind::Hamming, true),
            (WindowKind::Blackman, true),
            (WindowKind::Rect, false),
        ] {
            let mut w = Window { kind };
            let out = w.process(vec![ss(vec![1.0; 64])]).unwrap();
            let TrianaData::SampleSet { samples, .. } = &out[0] else {
                panic!()
            };
            let mid = samples[32];
            if tapered {
                assert!(samples[0] < 0.2, "{kind:?} edge {}", samples[0]);
                assert!(mid > 0.8, "{kind:?} centre {mid}");
            } else {
                assert!(samples.iter().all(|&x| x == 1.0));
            }
        }
    }

    #[test]
    fn hann_window_reduces_leakage() {
        // An off-bin tone leaks into neighbours; Hann narrows the skirt.
        let n = 256;
        let tone: Vec<f64> = (0..n)
            .map(|t| (std::f64::consts::TAU * 20.5 * t as f64 / n as f64).sin())
            .collect();
        let raw = crate::fft::power_spectrum(&tone);
        let mut w = Window {
            kind: WindowKind::Hann,
        };
        let out = w.process(vec![ss(tone)]).unwrap();
        let TrianaData::SampleSet { samples, .. } = &out[0] else {
            panic!()
        };
        let windowed = crate::fft::power_spectrum(samples);
        // Compare energy far from the tone (bins 60..120).
        let far = |ps: &[f64]| ps[60..120].iter().sum::<f64>();
        assert!(
            far(&windowed) < far(&raw) / 10.0,
            "hann must suppress far leakage: {} vs {}",
            far(&windowed),
            far(&raw)
        );
    }

    #[test]
    fn decimate_halves_rate_and_length() {
        let mut d = Decimate { factor: 2 };
        let out = d.process(vec![ss(vec![0.0, 1.0, 2.0, 3.0, 4.0])]).unwrap();
        match &out[0] {
            TrianaData::SampleSet { rate_hz, samples } => {
                assert_eq!(*rate_hz, 50.0);
                assert_eq!(samples, &vec![0.0, 2.0, 4.0]);
            }
            other => panic!("{other:?}"),
        }
        assert!(
            Decimate::from_params(&Params::from([("factor".to_string(), "0".to_string())]))
                .is_err()
        );
    }

    #[test]
    fn magnitude_takes_one_sided_modulus() {
        let mut m = Magnitude;
        let out = m
            .process(vec![TrianaData::ComplexSpectrum {
                df_hz: 1.0,
                re: vec![3.0, 0.0, 1.0, 0.0],
                im: vec![4.0, 2.0, 0.0, 0.0],
            }])
            .unwrap();
        match &out[0] {
            TrianaData::Spectrum { power, .. } => assert_eq!(power, &vec![5.0, 2.0, 1.0]),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn decibel_is_zero_at_peak_and_floored() {
        let mut d = Decibel;
        let out = d
            .process(vec![TrianaData::Spectrum {
                df_hz: 1.0,
                power: vec![100.0, 10.0, 0.0],
            }])
            .unwrap();
        match &out[0] {
            TrianaData::Spectrum { power, .. } => {
                assert!((power[0] - 0.0).abs() < 1e-12);
                assert!((power[1] + 10.0).abs() < 1e-9);
                assert_eq!(power[2], -160.0);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn statistics_row_is_correct() {
        let mut s = Statistics;
        let out = s.process(vec![ss(vec![1.0, 2.0, 3.0, 4.0])]).unwrap();
        let TrianaData::Table(t) = &out[0] else {
            panic!()
        };
        let row = &t.rows[0];
        assert_eq!(row[0], 4.0); // n
        assert!((row[1] - 2.5).abs() < 1e-12); // mean
        assert!((row[3] - 1.0).abs() < 1e-12); // min
        assert!((row[4] - 4.0).abs() < 1e-12); // max
        let rms = ((1.0 + 4.0 + 9.0 + 16.0) / 4.0f64).sqrt();
        assert!((row[5] - rms).abs() < 1e-12);
    }

    #[test]
    fn threshold_binarizes_relative_to_peak() {
        let mut th = Threshold { level: 0.5 };
        let out = th
            .process(vec![TrianaData::ImageFrame {
                width: 2,
                height: 2,
                pixels: vec![0.0, 4.0, 2.0, 1.0],
            }])
            .unwrap();
        match &out[0] {
            TrianaData::ImageFrame { pixels, .. } => {
                assert_eq!(pixels, &vec![0.0, 1.0, 1.0, 0.0])
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn normalize_maps_to_unit_range() {
        let mut nz = NormalizeImage;
        let out = nz
            .process(vec![TrianaData::ImageFrame {
                width: 3,
                height: 1,
                pixels: vec![-2.0, 0.0, 2.0],
            }])
            .unwrap();
        match &out[0] {
            TrianaData::ImageFrame { pixels, .. } => {
                assert_eq!(pixels, &vec![0.0, 0.5, 1.0])
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn downsample_box_filters() {
        let mut d = Downsample;
        let out = d
            .process(vec![TrianaData::ImageFrame {
                width: 4,
                height: 2,
                pixels: vec![1.0, 3.0, 0.0, 0.0, 5.0, 7.0, 0.0, 4.0],
            }])
            .unwrap();
        match &out[0] {
            TrianaData::ImageFrame {
                width,
                height,
                pixels,
            } => {
                assert_eq!((*width, *height), (2, 1));
                assert_eq!(pixels, &vec![4.0, 1.0]);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn text_units_compose() {
        let mut src = TextSource {
            text: "consumer grid".into(),
        };
        let t1 = src.process(vec![]).unwrap().pop().unwrap();
        let mut cat = Concat {
            separator: " ".into(),
        };
        let joined = cat
            .process(vec![t1, TrianaData::Text("peers".into())])
            .unwrap()
            .pop()
            .unwrap();
        assert_eq!(joined, TrianaData::Text("consumer grid peers".into()));
        let mut wc = WordCount;
        let n = wc.process(vec![joined]).unwrap().pop().unwrap();
        assert_eq!(n, TrianaData::Scalar(3.0));
    }

    #[test]
    fn bad_window_kind_rejected() {
        let e = Window::from_params(&Params::from([(
            "kind".to_string(),
            "triangular".to_string(),
        )]));
        assert!(e.is_err());
    }
}
