//! Case 2: inspiral search for coalescing binaries.
//!
//! §3.6.2: "the gravitational wave signal is sampled at 8kHz … a realistic
//! sampled representation of the signal contains 2,000 samples per second.
//! The real-time data set is divided into chunks of 15 minutes in duration
//! (i.e. 900 seconds) … The node … performs fast correlation on the data
//! set with each template in a library of between 5,000 and 10,000
//! templates. This process takes about 5 hours on a 2 GHz PC."
//!
//! GEO600 data is not available; [`inject_chirp`] synthesizes chunks with a
//! known chirp buried in Gaussian noise, and [`search`] runs the real
//! FFT-based matched filter over a [`TemplateBank`]. The constants in
//! [`cost`] encode the paper's quoted arithmetic so the Consumer Grid
//! experiments (E4) are calibrated to it.

use crate::fft::correlate;
use netsim::Pcg32;
use triana_core::data::{DataType, Table, TrianaData, TypeSpec};
use triana_core::unit::{param_f64, param_usize, Params, Unit, UnitError};

/// The paper's quoted workload constants.
pub mod cost {
    /// Effective sample rate of the searchable band (samples/second).
    pub const SAMPLE_RATE_HZ: f64 = 2_000.0;
    /// Chunk duration (seconds).
    pub const CHUNK_SECONDS: f64 = 900.0;
    /// Chunk size in bytes: "4 x 900 x 2000" = 7.2 MB.
    pub const CHUNK_BYTES: u64 = 4 * 900 * 2_000;
    /// "about 5 hours on a 2 GHz PC" for 5 000 templates
    /// ⇒ 2 GHz × 18 000 s = 36 000 gigacycles per chunk.
    pub const GIGACYCLES_PER_CHUNK_5K: f64 = 36_000.0;
    /// Per-template cost derived from the above.
    pub const GIGACYCLES_PER_TEMPLATE: f64 = GIGACYCLES_PER_CHUNK_5K / 5_000.0;

    /// Work to filter one chunk against `n_templates` templates.
    pub fn chunk_work_gigacycles(n_templates: usize) -> f64 {
        n_templates as f64 * GIGACYCLES_PER_TEMPLATE
    }

    /// PCs of `ghz` needed to keep up with real time (one 900 s chunk per
    /// 900 s), before accounting for downtime.
    pub fn pcs_for_real_time(n_templates: usize, ghz: f64) -> f64 {
        chunk_work_gigacycles(n_templates) / (ghz * CHUNK_SECONDS)
    }
}

/// A Newtonian chirp template: frequency and amplitude sweep upward until
/// coalescence.
#[derive(Clone, Debug)]
pub struct ChirpTemplate {
    /// Time to coalescence from the template start (seconds).
    pub tau: f64,
    /// Start frequency (Hz).
    pub f0: f64,
    /// Normalized waveform samples.
    pub waveform: Vec<f64>,
}

/// Generate a chirp waveform: `f(t) = f0 (1 - t/tau)^(-3/8)`,
/// `a(t) ∝ f(t)^(2/3)`, truncated shortly before coalescence.
pub fn chirp(tau: f64, f0: f64, rate_hz: f64) -> Vec<f64> {
    assert!(tau > 0.0 && f0 > 0.0 && rate_hz > 0.0);
    let n = (tau * rate_hz * 0.98) as usize; // stop at 98% of tau
    let dt = 1.0 / rate_hz;
    let mut phase = 0.0f64;
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let t = i as f64 * dt;
        let x = (1.0 - t / tau).max(1e-4);
        let f = f0 * x.powf(-3.0 / 8.0);
        let a = (f / f0).powf(2.0 / 3.0);
        out.push(a * phase.sin());
        phase += std::f64::consts::TAU * f * dt;
    }
    // Normalize to unit energy so SNRs are comparable across templates.
    let energy: f64 = out.iter().map(|x| x * x).sum();
    if energy > 0.0 {
        let k = 1.0 / energy.sqrt();
        for v in &mut out {
            *v *= k;
        }
    }
    out
}

/// A bank of chirp templates spanning a range of coalescence times.
#[derive(Clone, Debug)]
pub struct TemplateBank {
    pub templates: Vec<ChirpTemplate>,
    pub rate_hz: f64,
}

impl TemplateBank {
    /// `n` templates with `tau` geometrically spaced in
    /// `[tau_min, tau_max]`.
    pub fn generate(n: usize, tau_min: f64, tau_max: f64, f0: f64, rate_hz: f64) -> Self {
        assert!(n >= 1 && tau_min > 0.0 && tau_max >= tau_min);
        let templates = (0..n)
            .map(|i| {
                let frac = if n == 1 {
                    0.0
                } else {
                    i as f64 / (n - 1) as f64
                };
                let tau = tau_min * (tau_max / tau_min).powf(frac);
                ChirpTemplate {
                    tau,
                    f0,
                    waveform: chirp(tau, f0, rate_hz),
                }
            })
            .collect();
        TemplateBank { templates, rate_hz }
    }

    pub fn len(&self) -> usize {
        self.templates.len()
    }

    pub fn is_empty(&self) -> bool {
        self.templates.is_empty()
    }
}

/// The outcome of a matched-filter search over one chunk.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Detection {
    pub template: usize,
    /// Sample offset of the best match within the chunk.
    pub offset: usize,
    /// Peak correlation in units of the noise standard deviation.
    pub snr: f64,
}

/// Matched-filter one chunk against every template; returns the best match.
pub fn search(chunk: &[f64], bank: &TemplateBank) -> Option<Detection> {
    if chunk.is_empty() || bank.is_empty() {
        return None;
    }
    let mut best: Option<Detection> = None;
    for (ti, tpl) in bank.templates.iter().enumerate() {
        if tpl.waveform.is_empty() || tpl.waveform.len() > chunk.len() {
            continue;
        }
        // Zero-pad the template to chunk length; circular correlation.
        let mut padded = vec![0.0; chunk.len()];
        padded[..tpl.waveform.len()].copy_from_slice(&tpl.waveform);
        let corr = correlate(&padded, chunk);
        // Noise level: median absolute correlation is robust to the peak.
        let mut mags: Vec<f64> = corr.iter().map(|x| x.abs()).collect();
        mags.sort_unstable_by(|a, b| a.partial_cmp(b).unwrap());
        let sigma = mags[mags.len() / 2] / 0.6745; // MAD -> std for Gaussian
        if sigma <= 0.0 {
            continue;
        }
        let (offset, peak) = corr
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.abs().partial_cmp(&b.1.abs()).unwrap())
            .map(|(i, v)| (i, v.abs()))
            .unwrap();
        let snr = peak / sigma;
        if best.is_none_or(|b| snr > b.snr) {
            best = Some(Detection {
                template: ti,
                offset,
                snr,
            });
        }
    }
    best
}

/// Synthesize a detector chunk: Gaussian noise of unit variance with a
/// chirp of the given amplitude injected at `offset`.
pub fn inject_chirp(
    n_samples: usize,
    template: &ChirpTemplate,
    amplitude: f64,
    offset: usize,
    rng: &mut Pcg32,
) -> Vec<f64> {
    let mut data: Vec<f64> = (0..n_samples).map(|_| rng.normal()).collect();
    for (i, &w) in template.waveform.iter().enumerate() {
        let idx = offset + i;
        if idx < n_samples {
            data[idx] += amplitude * w;
        }
    }
    data
}

/// A synthetic detector-chunk source: unit-variance Gaussian noise with a
/// chirp injected every `inject_every`-th chunk (GEO600 stand-in, so Case 2
/// runs as a plain task graph).
pub struct ChunkSource {
    pub samples: usize,
    pub rate_hz: f64,
    pub inject_every: usize,
    pub amplitude: f64,
    template: ChirpTemplate,
    rng: Pcg32,
    count: usize,
}

impl ChunkSource {
    pub fn from_params(p: &Params) -> Result<Self, UnitError> {
        let samples = param_usize(p, "samples", 8_192)?;
        let rate_hz = param_f64(p, "rate", 256.0)?;
        let tau = param_f64(p, "tau", 2.0)?;
        let f0 = param_f64(p, "f0", 16.0)?;
        let seed = param_usize(p, "seed", 2003)? as u64;
        Ok(ChunkSource {
            samples,
            rate_hz,
            inject_every: param_usize(p, "inject_every", 2)?.max(1),
            amplitude: param_f64(p, "amplitude", 14.0)?,
            template: ChirpTemplate {
                tau,
                f0,
                waveform: chirp(tau, f0, rate_hz),
            },
            rng: Pcg32::new(seed, 0xC40),
            count: 0,
        })
    }
}

impl Unit for ChunkSource {
    fn type_name(&self) -> &str {
        "ChunkSource"
    }
    fn input_types(&self) -> Vec<TypeSpec> {
        vec![]
    }
    fn output_types(&self) -> Vec<DataType> {
        vec![DataType::SampleSet]
    }
    fn process(&mut self, _inputs: Vec<TrianaData>) -> Result<Vec<TrianaData>, UnitError> {
        self.count += 1;
        let inject = self.count.is_multiple_of(self.inject_every);
        let amplitude = if inject { self.amplitude } else { 0.0 };
        let max_offset = self.samples.saturating_sub(self.template.waveform.len());
        let offset = if max_offset > 0 {
            self.rng.below(max_offset as u64) as usize
        } else {
            0
        };
        let samples = inject_chirp(
            self.samples,
            &self.template,
            amplitude,
            offset,
            &mut self.rng,
        );
        Ok(vec![TrianaData::SampleSet {
            rate_hz: self.rate_hz,
            samples,
        }])
    }
    fn reset(&mut self) {
        self.count = 0;
    }
}

/// The matched-filter unit: `SampleSet -> Table[template, offset, snr]`.
pub struct MatchedFilter {
    pub bank: TemplateBank,
}

impl MatchedFilter {
    pub fn from_params(p: &Params) -> Result<Self, UnitError> {
        let n = param_usize(p, "templates", 16)?;
        let rate = param_f64(p, "rate", 256.0)?;
        let tau_min = param_f64(p, "tau_min", 1.0)?;
        let tau_max = param_f64(p, "tau_max", 4.0)?;
        let f0 = param_f64(p, "f0", 20.0)?;
        Ok(MatchedFilter {
            bank: TemplateBank::generate(n, tau_min, tau_max, f0, rate),
        })
    }
}

impl Unit for MatchedFilter {
    fn type_name(&self) -> &str {
        "MatchedFilter"
    }
    fn input_types(&self) -> Vec<TypeSpec> {
        vec![TypeSpec::Exact(DataType::SampleSet)]
    }
    fn output_types(&self) -> Vec<DataType> {
        vec![DataType::Table]
    }
    fn process(&mut self, inputs: Vec<TrianaData>) -> Result<Vec<TrianaData>, UnitError> {
        match inputs.into_iter().next() {
            Some(TrianaData::SampleSet { samples, .. }) => {
                let mut table = Table::new(vec!["template".into(), "offset".into(), "snr".into()]);
                if let Some(d) = search(&samples, &self.bank) {
                    table
                        .rows
                        .push(vec![d.template as f64, d.offset as f64, d.snr]);
                }
                Ok(vec![TrianaData::Table(table)])
            }
            other => Err(UnitError::Runtime(format!(
                "MatchedFilter expects a SampleSet, got {other:?}"
            ))),
        }
    }
    fn work_estimate(&self, inputs: &[TrianaData]) -> f64 {
        // Scale the paper's per-template cost by chunk size relative to the
        // paper's 1.8 M samples.
        if let Some(TrianaData::SampleSet { samples, .. }) = inputs.first() {
            let frac = samples.len() as f64 / (cost::SAMPLE_RATE_HZ * cost::CHUNK_SECONDS);
            cost::chunk_work_gigacycles(self.bank.len()) * frac
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_arithmetic_reproduced() {
        // 7.2 MB chunks.
        assert_eq!(cost::CHUNK_BYTES, 7_200_000);
        // 5 000 templates on a 2 GHz PC: 5 hours per 900 s chunk ⇒ 20 PCs.
        let pcs = cost::pcs_for_real_time(5_000, 2.0);
        assert!((pcs - 20.0).abs() < 1e-9, "pcs = {pcs}");
        // 10 000 templates: 40 PCs.
        assert!((cost::pcs_for_real_time(10_000, 2.0) - 40.0).abs() < 1e-9);
    }

    #[test]
    fn chirp_frequency_increases() {
        let w = chirp(2.0, 10.0, 512.0);
        assert!(w.len() > 900);
        // Compare zero-crossing density in the first and last quarters.
        let crossings = |s: &[f64]| {
            s.windows(2)
                .filter(|p| p[0].signum() != p[1].signum())
                .count()
        };
        let q = w.len() / 4;
        let early = crossings(&w[..q]);
        let late = crossings(&w[w.len() - q..]);
        assert!(
            late as f64 > early as f64 * 1.2,
            "late {late} vs early {early}"
        );
    }

    #[test]
    fn chirp_is_unit_energy() {
        let w = chirp(1.5, 15.0, 256.0);
        let e: f64 = w.iter().map(|x| x * x).sum();
        assert!((e - 1.0).abs() < 1e-9);
    }

    #[test]
    fn bank_spans_tau_range_geometrically() {
        let bank = TemplateBank::generate(5, 1.0, 16.0, 20.0, 128.0);
        assert_eq!(bank.len(), 5);
        let taus: Vec<f64> = bank.templates.iter().map(|t| t.tau).collect();
        assert!((taus[0] - 1.0).abs() < 1e-9);
        assert!((taus[4] - 16.0).abs() < 1e-9);
        assert!((taus[2] - 4.0).abs() < 1e-6, "geometric midpoint");
    }

    #[test]
    fn search_recovers_injected_chirp() {
        let rate = 256.0;
        let bank = TemplateBank::generate(8, 1.0, 3.0, 16.0, rate);
        let mut rng = Pcg32::new(21, 0);
        let true_template = 5;
        let offset = 1000;
        let chunk = inject_chirp(4096, &bank.templates[true_template], 15.0, offset, &mut rng);
        let det = search(&chunk, &bank).unwrap();
        assert_eq!(det.template, true_template);
        assert!(
            (det.offset as i64 - offset as i64).abs() < 5,
            "offset {} vs {}",
            det.offset,
            offset
        );
        assert!(det.snr > 10.0, "snr {}", det.snr);
    }

    #[test]
    fn pure_noise_yields_low_snr() {
        let rate = 256.0;
        let bank = TemplateBank::generate(4, 1.0, 2.0, 16.0, rate);
        let mut rng = Pcg32::new(33, 0);
        let chunk: Vec<f64> = (0..4096).map(|_| rng.normal()).collect();
        let det = search(&chunk, &bank).unwrap();
        assert!(det.snr < 7.0, "noise snr {}", det.snr);
    }

    #[test]
    fn detection_degrades_gracefully_with_amplitude() {
        let rate = 256.0;
        let bank = TemplateBank::generate(4, 1.0, 2.0, 16.0, rate);
        let mut rng = Pcg32::new(55, 0);
        let loud = inject_chirp(4096, &bank.templates[2], 20.0, 500, &mut rng);
        let quiet = inject_chirp(4096, &bank.templates[2], 8.0, 500, &mut rng);
        let snr_loud = search(&loud, &bank).unwrap().snr;
        let snr_quiet = search(&quiet, &bank).unwrap().snr;
        assert!(snr_loud > snr_quiet);
    }

    #[test]
    fn unit_reports_detection_as_table() {
        let mut unit = MatchedFilter {
            bank: TemplateBank::generate(4, 1.0, 2.0, 16.0, 256.0),
        };
        let mut rng = Pcg32::new(77, 0);
        let chunk = inject_chirp(4096, &unit.bank.templates[1], 15.0, 200, &mut rng);
        let out = unit
            .process(vec![TrianaData::SampleSet {
                rate_hz: 256.0,
                samples: chunk,
            }])
            .unwrap()
            .pop()
            .unwrap();
        let TrianaData::Table(t) = out else { panic!() };
        assert_eq!(t.columns, vec!["template", "offset", "snr"]);
        assert_eq!(t.n_rows(), 1);
        assert_eq!(t.rows[0][0], 1.0);
    }

    #[test]
    fn work_estimate_matches_paper_scale() {
        let unit = MatchedFilter {
            bank: TemplateBank::generate(5_000, 1.0, 2.0, 16.0, 256.0),
        };
        // A full-size chunk (1.8 M samples) must cost 36 000 gigacycles.
        let chunk = TrianaData::SampleSet {
            rate_hz: 2_000.0,
            samples: vec![0.0; 1_800_000],
        };
        let w = unit.work_estimate(&[chunk]);
        assert!((w - 36_000.0).abs() < 1.0, "work {w}");
    }

    #[test]
    fn chunk_source_injects_on_schedule() {
        let mut src = ChunkSource::from_params(&Params::from([
            ("samples".to_string(), "4096".to_string()),
            ("inject_every".to_string(), "2".to_string()),
        ]))
        .unwrap();
        let bank = TemplateBank::generate(4, 1.0, 3.0, 16.0, 256.0);
        let mut snrs = Vec::new();
        for _ in 0..4 {
            let TrianaData::SampleSet { samples, .. } = src.process(vec![]).unwrap().pop().unwrap()
            else {
                panic!()
            };
            snrs.push(search(&samples, &bank).unwrap().snr);
        }
        // Chunks 2 and 4 carry injections; 1 and 3 are pure noise.
        assert!(snrs[1] > snrs[0] * 1.5, "{snrs:?}");
        assert!(snrs[3] > snrs[2] * 1.5, "{snrs:?}");
    }

    #[test]
    fn empty_inputs_yield_no_detection() {
        let bank = TemplateBank::generate(2, 1.0, 2.0, 16.0, 128.0);
        assert!(search(&[], &bank).is_none());
        let empty_bank = TemplateBank {
            templates: vec![],
            rate_hz: 128.0,
        };
        assert!(search(&[1.0; 64], &empty_bank).is_none());
    }
}
