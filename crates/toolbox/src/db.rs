//! Case 3: database-access services.
//!
//! §3.6.3: "the user establishes a pipeline in Triana consisting of: (1) a
//! data access service, (2) a data manipulation service, (3) a data
//! visualisation service, and (4) a data verification service. The data
//! access service can either read from flat files, or read from a
//! structured database." JDBC and a 2003 RDBMS are replaced by an in-memory
//! [`TableStore`]; the four services are real units that can each be bound
//! to a different peer.

use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::Arc;
use triana_core::data::{DataType, Table, TrianaData, TypeSpec};
use triana_core::unit::{param_f64, param_usize, Params, Unit, UnitError};

/// A shared, thread-safe store of named tables (the "structured database").
#[derive(Clone, Default)]
pub struct TableStore {
    tables: Arc<RwLock<HashMap<String, Table>>>,
}

impl TableStore {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn put(&self, name: &str, table: Table) {
        self.tables.write().insert(name.to_string(), table);
    }

    pub fn get(&self, name: &str) -> Option<Table> {
        self.tables.read().get(name).cloned()
    }

    pub fn names(&self) -> Vec<String> {
        let mut v: Vec<String> = self.tables.read().keys().cloned().collect();
        v.sort();
        v
    }
}

/// (1) Data access: reads a named table from the store.
pub struct DataAccess {
    pub store: TableStore,
    pub table: String,
}

impl Unit for DataAccess {
    fn type_name(&self) -> &str {
        "DataAccess"
    }
    fn input_types(&self) -> Vec<TypeSpec> {
        vec![]
    }
    fn output_types(&self) -> Vec<DataType> {
        vec![DataType::Table]
    }
    fn process(&mut self, _inputs: Vec<TrianaData>) -> Result<Vec<TrianaData>, UnitError> {
        let t = self
            .store
            .get(&self.table)
            .ok_or_else(|| UnitError::Runtime(format!("no table `{}`", self.table)))?;
        Ok(vec![TrianaData::Table(t)])
    }
}

/// (2) Data manipulation: one relational operation per instance.
pub enum ManipOp {
    /// Keep rows with `min <= row[col] <= max`.
    Filter { col: String, min: f64, max: f64 },
    /// Project onto the named columns (in the given order).
    Select { cols: Vec<String> },
    /// Sort by a column, ascending or descending.
    Sort { col: String, desc: bool },
}

pub struct DataManipulate {
    pub op: ManipOp,
}

impl DataManipulate {
    pub fn from_params(p: &Params) -> Result<Self, UnitError> {
        let op = match p.get("op").map(String::as_str) {
            Some("filter") | None => ManipOp::Filter {
                col: p.get("col").cloned().unwrap_or_default(),
                min: param_f64(p, "min", f64::NEG_INFINITY)?,
                max: param_f64(p, "max", f64::INFINITY)?,
            },
            Some("select") => ManipOp::Select {
                cols: p
                    .get("cols")
                    .map(|s| s.split(',').map(|c| c.trim().to_string()).collect())
                    .unwrap_or_default(),
            },
            Some("sort") => ManipOp::Sort {
                col: p.get("col").cloned().unwrap_or_default(),
                desc: p.get("desc").map(String::as_str) == Some("true"),
            },
            Some(other) => {
                return Err(UnitError::BadParam {
                    param: "op".into(),
                    message: format!("unknown op `{other}`"),
                })
            }
        };
        Ok(DataManipulate { op })
    }

    fn apply(&self, t: &Table) -> Result<Table, UnitError> {
        let col_idx = |name: &str| {
            t.column_index(name)
                .ok_or_else(|| UnitError::Runtime(format!("no column `{name}`")))
        };
        match &self.op {
            ManipOp::Filter { col, min, max } => {
                let ci = col_idx(col)?;
                let mut out = Table::new(t.columns.clone());
                out.rows = t
                    .rows
                    .iter()
                    .filter(|r| r[ci] >= *min && r[ci] <= *max)
                    .cloned()
                    .collect();
                Ok(out)
            }
            ManipOp::Select { cols } => {
                let idxs: Vec<usize> = cols.iter().map(|c| col_idx(c)).collect::<Result<_, _>>()?;
                let mut out = Table::new(cols.clone());
                out.rows = t
                    .rows
                    .iter()
                    .map(|r| idxs.iter().map(|&i| r[i]).collect())
                    .collect();
                Ok(out)
            }
            ManipOp::Sort { col, desc } => {
                let ci = col_idx(col)?;
                let mut out = t.clone();
                out.rows.sort_by(|a, b| {
                    let ord = a[ci]
                        .partial_cmp(&b[ci])
                        .unwrap_or(std::cmp::Ordering::Equal);
                    if *desc {
                        ord.reverse()
                    } else {
                        ord
                    }
                });
                Ok(out)
            }
        }
    }
}

impl Unit for DataManipulate {
    fn type_name(&self) -> &str {
        "DataManipulate"
    }
    fn input_types(&self) -> Vec<TypeSpec> {
        vec![TypeSpec::Exact(DataType::Table)]
    }
    fn output_types(&self) -> Vec<DataType> {
        vec![DataType::Table]
    }
    fn process(&mut self, inputs: Vec<TrianaData>) -> Result<Vec<TrianaData>, UnitError> {
        match inputs.into_iter().next() {
            Some(TrianaData::Table(t)) => Ok(vec![TrianaData::Table(self.apply(&t)?)]),
            other => Err(UnitError::Runtime(format!(
                "DataManipulate expects a Table, got {other:?}"
            ))),
        }
    }
}

/// (3) Data visualisation: a histogram of one column as an image row.
pub struct DataVisualise {
    pub col: String,
    pub bins: usize,
}

impl DataVisualise {
    pub fn from_params(p: &Params) -> Result<Self, UnitError> {
        Ok(DataVisualise {
            col: p.get("col").cloned().unwrap_or_default(),
            bins: param_usize(p, "bins", 32)?.max(1),
        })
    }
}

impl Unit for DataVisualise {
    fn type_name(&self) -> &str {
        "DataVisualise"
    }
    fn input_types(&self) -> Vec<TypeSpec> {
        vec![TypeSpec::Exact(DataType::Table)]
    }
    fn output_types(&self) -> Vec<DataType> {
        vec![DataType::ImageFrame]
    }
    fn process(&mut self, inputs: Vec<TrianaData>) -> Result<Vec<TrianaData>, UnitError> {
        match inputs.into_iter().next() {
            Some(TrianaData::Table(t)) => {
                let ci = t
                    .column_index(&self.col)
                    .ok_or_else(|| UnitError::Runtime(format!("no column `{}`", self.col)))?;
                let vals: Vec<f64> = t.rows.iter().map(|r| r[ci]).collect();
                let (lo, hi) = vals
                    .iter()
                    .fold((f64::INFINITY, f64::NEG_INFINITY), |(l, h), &v| {
                        (l.min(v), h.max(v))
                    });
                let mut hist = vec![0.0f64; self.bins];
                if lo.is_finite() && hi > lo {
                    for v in vals {
                        let b = (((v - lo) / (hi - lo)) * self.bins as f64) as usize;
                        hist[b.min(self.bins - 1)] += 1.0;
                    }
                } else if lo.is_finite() {
                    hist[0] = t.n_rows() as f64;
                }
                Ok(vec![TrianaData::ImageFrame {
                    width: self.bins as u32,
                    height: 1,
                    pixels: hist,
                }])
            }
            other => Err(UnitError::Runtime(format!(
                "DataVisualise expects a Table, got {other:?}"
            ))),
        }
    }
}

/// (4) Data verification: structural checks, reported as text.
pub struct DataVerify;

impl Unit for DataVerify {
    fn type_name(&self) -> &str {
        "DataVerify"
    }
    fn input_types(&self) -> Vec<TypeSpec> {
        vec![TypeSpec::Exact(DataType::Table)]
    }
    fn output_types(&self) -> Vec<DataType> {
        vec![DataType::Text]
    }
    fn process(&mut self, inputs: Vec<TrianaData>) -> Result<Vec<TrianaData>, UnitError> {
        match inputs.into_iter().next() {
            Some(TrianaData::Table(t)) => {
                let mut problems = Vec::new();
                if !t.is_rectangular() {
                    problems.push("ragged rows".to_string());
                }
                let nan_cells = t
                    .rows
                    .iter()
                    .flat_map(|r| r.iter())
                    .filter(|v| v.is_nan())
                    .count();
                if nan_cells > 0 {
                    problems.push(format!("{nan_cells} NaN cells"));
                }
                let report = if problems.is_empty() {
                    format!("OK rows={} cols={}", t.n_rows(), t.n_cols())
                } else {
                    format!("FAIL: {}", problems.join("; "))
                };
                Ok(vec![TrianaData::Text(report)])
            }
            other => Err(UnitError::Runtime(format!(
                "DataVerify expects a Table, got {other:?}"
            ))),
        }
    }
}

/// A small synthetic astronomy catalogue for examples and tests.
pub fn sample_catalogue(rows: usize, seed: u64) -> Table {
    let mut rng = netsim::Pcg32::new(seed, 0xDB);
    let mut t = Table::new(vec![
        "id".into(),
        "ra".into(),
        "dec".into(),
        "magnitude".into(),
        "redshift".into(),
    ]);
    for i in 0..rows {
        t.rows.push(vec![
            i as f64,
            rng.range_f64(0.0, 360.0),
            rng.range_f64(-90.0, 90.0),
            rng.normal_with(18.0, 2.0),
            rng.exp(0.3),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn store_put_get_names() {
        let store = TableStore::new();
        store.put("cat", sample_catalogue(10, 1));
        store.put("aux", Table::new(vec!["x".into()]));
        assert_eq!(store.names(), vec!["aux", "cat"]);
        assert_eq!(store.get("cat").unwrap().n_rows(), 10);
        assert!(store.get("missing").is_none());
    }

    #[test]
    fn data_access_reads_the_named_table() {
        let store = TableStore::new();
        store.put("cat", sample_catalogue(5, 2));
        let mut u = DataAccess {
            store: store.clone(),
            table: "cat".into(),
        };
        let out = u.process(vec![]).unwrap().pop().unwrap();
        let TrianaData::Table(t) = out else { panic!() };
        assert_eq!(t.n_rows(), 5);
        let mut missing = DataAccess {
            store,
            table: "nope".into(),
        };
        assert!(missing.process(vec![]).is_err());
    }

    #[test]
    fn filter_bounds_inclusive() {
        let mut t = Table::new(vec!["v".into()]);
        for i in 0..10 {
            t.rows.push(vec![i as f64]);
        }
        let mut u = DataManipulate {
            op: ManipOp::Filter {
                col: "v".into(),
                min: 3.0,
                max: 6.0,
            },
        };
        let out = u
            .process(vec![TrianaData::Table(t)])
            .unwrap()
            .pop()
            .unwrap();
        let TrianaData::Table(t) = out else { panic!() };
        let vals: Vec<f64> = t.rows.iter().map(|r| r[0]).collect();
        assert_eq!(vals, vec![3.0, 4.0, 5.0, 6.0]);
    }

    #[test]
    fn select_projects_and_reorders() {
        let cat = sample_catalogue(3, 3);
        let mut u = DataManipulate {
            op: ManipOp::Select {
                cols: vec!["magnitude".into(), "id".into()],
            },
        };
        let out = u
            .process(vec![TrianaData::Table(cat.clone())])
            .unwrap()
            .pop()
            .unwrap();
        let TrianaData::Table(t) = out else { panic!() };
        assert_eq!(t.columns, vec!["magnitude", "id"]);
        assert_eq!(t.rows[1][1], 1.0);
        assert_eq!(t.rows[1][0], cat.rows[1][3]);
    }

    #[test]
    fn sort_descending() {
        let mut t = Table::new(vec!["v".into()]);
        for v in [2.0, 9.0, 5.0] {
            t.rows.push(vec![v]);
        }
        let mut u = DataManipulate {
            op: ManipOp::Sort {
                col: "v".into(),
                desc: true,
            },
        };
        let out = u
            .process(vec![TrianaData::Table(t)])
            .unwrap()
            .pop()
            .unwrap();
        let TrianaData::Table(t) = out else { panic!() };
        let vals: Vec<f64> = t.rows.iter().map(|r| r[0]).collect();
        assert_eq!(vals, vec![9.0, 5.0, 2.0]);
    }

    #[test]
    fn unknown_column_is_a_runtime_error() {
        let mut u = DataManipulate {
            op: ManipOp::Filter {
                col: "ghost".into(),
                min: 0.0,
                max: 1.0,
            },
        };
        let r = u.process(vec![TrianaData::Table(sample_catalogue(2, 4))]);
        assert!(r.is_err());
    }

    #[test]
    fn visualise_histograms_counts_all_rows() {
        let cat = sample_catalogue(100, 5);
        let mut u = DataVisualise {
            col: "magnitude".into(),
            bins: 8,
        };
        let out = u
            .process(vec![TrianaData::Table(cat)])
            .unwrap()
            .pop()
            .unwrap();
        let TrianaData::ImageFrame {
            width,
            height,
            pixels,
        } = out
        else {
            panic!()
        };
        assert_eq!((width, height), (8, 1));
        assert_eq!(pixels.iter().sum::<f64>() as usize, 100);
    }

    #[test]
    fn verify_reports_ok_and_failures() {
        let mut u = DataVerify;
        let good = sample_catalogue(7, 6);
        let out = u
            .process(vec![TrianaData::Table(good)])
            .unwrap()
            .pop()
            .unwrap();
        assert_eq!(out, TrianaData::Text("OK rows=7 cols=5".into()));
        let mut bad = sample_catalogue(3, 7);
        bad.rows[1][2] = f64::NAN;
        bad.rows[2].pop();
        let out = u
            .process(vec![TrianaData::Table(bad)])
            .unwrap()
            .pop()
            .unwrap();
        let TrianaData::Text(report) = out else {
            panic!()
        };
        assert!(report.starts_with("FAIL"));
        assert!(report.contains("ragged"));
        assert!(report.contains("NaN"));
    }

    #[test]
    fn manipulate_from_params() {
        let p = Params::from([
            ("op".to_string(), "filter".to_string()),
            ("col".to_string(), "redshift".to_string()),
            ("max".to_string(), "0.5".to_string()),
        ]);
        let mut u = DataManipulate::from_params(&p).unwrap();
        let out = u
            .process(vec![TrianaData::Table(sample_catalogue(50, 8))])
            .unwrap()
            .pop()
            .unwrap();
        let TrianaData::Table(t) = out else { panic!() };
        assert!(t.rows.iter().all(|r| r[4] <= 0.5));
        assert!(DataManipulate::from_params(&Params::from([(
            "op".to_string(),
            "explode".to_string()
        )]))
        .is_err());
    }
}
