//! FFT: iterative radix-2 Cooley–Tukey with a Bluestein fallback for
//! arbitrary lengths.
//!
//! This is the numerical core under `PowerSpectrum` (Figure 2) and the
//! matched filter's "fast correlation" (Case 2). Plain `f64` pairs, no
//! external dependencies.

use std::f64::consts::PI;

/// In-place radix-2 FFT. `re`/`im` length must be a power of two.
/// `inverse` applies the conjugate transform *without* 1/N normalization.
fn fft_pow2(re: &mut [f64], im: &mut [f64], inverse: bool) {
    let n = re.len();
    debug_assert!(n.is_power_of_two());
    debug_assert_eq!(n, im.len());
    if n <= 1 {
        return;
    }
    // Bit-reversal permutation.
    let mut j = 0usize;
    for i in 1..n {
        let mut bit = n >> 1;
        while j & bit != 0 {
            j ^= bit;
            bit >>= 1;
        }
        j |= bit;
        if i < j {
            re.swap(i, j);
            im.swap(i, j);
        }
    }
    let sign = if inverse { 1.0 } else { -1.0 };
    let mut len = 2;
    while len <= n {
        let ang = sign * 2.0 * PI / len as f64;
        let (w_re, w_im) = (ang.cos(), ang.sin());
        for start in (0..n).step_by(len) {
            let (mut cur_re, mut cur_im) = (1.0f64, 0.0f64);
            for k in 0..len / 2 {
                let a = start + k;
                let b = a + len / 2;
                let tr = re[b] * cur_re - im[b] * cur_im;
                let ti = re[b] * cur_im + im[b] * cur_re;
                re[b] = re[a] - tr;
                im[b] = im[a] - ti;
                re[a] += tr;
                im[a] += ti;
                let nr = cur_re * w_re - cur_im * w_im;
                cur_im = cur_re * w_im + cur_im * w_re;
                cur_re = nr;
            }
        }
        len <<= 1;
    }
}

/// Forward DFT of a complex signal, any length (Bluestein for non-powers
/// of two). Returns `(re, im)`.
pub fn fft(re_in: &[f64], im_in: &[f64]) -> (Vec<f64>, Vec<f64>) {
    transform(re_in, im_in, false)
}

/// Inverse DFT (with 1/N normalization), any length.
pub fn ifft(re_in: &[f64], im_in: &[f64]) -> (Vec<f64>, Vec<f64>) {
    let n = re_in.len();
    let (mut re, mut im) = transform(re_in, im_in, true);
    let scale = 1.0 / n as f64;
    for v in re.iter_mut().chain(im.iter_mut()) {
        *v *= scale;
    }
    (re, im)
}

fn transform(re_in: &[f64], im_in: &[f64], inverse: bool) -> (Vec<f64>, Vec<f64>) {
    assert_eq!(re_in.len(), im_in.len());
    let n = re_in.len();
    if n == 0 {
        return (Vec::new(), Vec::new());
    }
    let mut re = re_in.to_vec();
    let mut im = im_in.to_vec();
    if n.is_power_of_two() {
        fft_pow2(&mut re, &mut im, inverse);
        return (re, im);
    }
    bluestein(&mut re, &mut im, inverse);
    (re, im)
}

/// Bluestein's algorithm: express an arbitrary-length DFT as a convolution,
/// evaluated with a power-of-two FFT.
fn bluestein(re: &mut [f64], im: &mut [f64], inverse: bool) {
    let n = re.len();
    let m = (2 * n).next_power_of_two() * 2;
    let sign = if inverse { 1.0 } else { -1.0 };
    // Chirp: w_k = exp(sign * i * pi * k^2 / n)
    let mut cos_t = vec![0.0; n];
    let mut sin_t = vec![0.0; n];
    for k in 0..n {
        // k^2 mod 2n avoids precision loss for large k.
        let ksq = (k as u128 * k as u128 % (2 * n as u128)) as f64;
        let ang = sign * PI * ksq / n as f64;
        cos_t[k] = ang.cos();
        sin_t[k] = ang.sin();
    }
    let mut a_re = vec![0.0; m];
    let mut a_im = vec![0.0; m];
    for k in 0..n {
        a_re[k] = re[k] * cos_t[k] - im[k] * sin_t[k];
        a_im[k] = re[k] * sin_t[k] + im[k] * cos_t[k];
    }
    let mut b_re = vec![0.0; m];
    let mut b_im = vec![0.0; m];
    b_re[0] = cos_t[0];
    b_im[0] = -sin_t[0];
    for k in 1..n {
        b_re[k] = cos_t[k];
        b_im[k] = -sin_t[k];
        b_re[m - k] = cos_t[k];
        b_im[m - k] = -sin_t[k];
    }
    fft_pow2(&mut a_re, &mut a_im, false);
    fft_pow2(&mut b_re, &mut b_im, false);
    for k in 0..m {
        let r = a_re[k] * b_re[k] - a_im[k] * b_im[k];
        let i = a_re[k] * b_im[k] + a_im[k] * b_re[k];
        a_re[k] = r;
        a_im[k] = i;
    }
    fft_pow2(&mut a_re, &mut a_im, true);
    let scale = 1.0 / m as f64;
    for k in 0..n {
        let (cr, ci) = (a_re[k] * scale, a_im[k] * scale);
        re[k] = cr * cos_t[k] - ci * sin_t[k];
        im[k] = cr * sin_t[k] + ci * cos_t[k];
    }
}

/// Forward DFT of a real signal. Returns full-length `(re, im)`.
pub fn fft_real(signal: &[f64]) -> (Vec<f64>, Vec<f64>) {
    let zeros = vec![0.0; signal.len()];
    fft(signal, &zeros)
}

/// One-sided power spectrum of a real signal: `n/2 + 1` bins of
/// `|X_k|^2 / n`.
pub fn power_spectrum(signal: &[f64]) -> Vec<f64> {
    let n = signal.len();
    if n == 0 {
        return Vec::new();
    }
    let (re, im) = fft_real(signal);
    (0..=n / 2)
        .map(|k| (re[k] * re[k] + im[k] * im[k]) / n as f64)
        .collect()
}

/// Circular cross-correlation of two equal-length real signals via FFT
/// (the "fast correlation" of Case 2). Output index `l` holds
/// `sum_t a[t] * b[t + l]` (indices mod n).
pub fn correlate(a: &[f64], b: &[f64]) -> Vec<f64> {
    assert_eq!(a.len(), b.len());
    let n = a.len();
    if n == 0 {
        return Vec::new();
    }
    let (a_re, a_im) = fft_real(a);
    let (b_re, b_im) = fft_real(b);
    // conj(A) * B
    let mut c_re = vec![0.0; n];
    let mut c_im = vec![0.0; n];
    for k in 0..n {
        c_re[k] = a_re[k] * b_re[k] + a_im[k] * b_im[k];
        c_im[k] = a_re[k] * b_im[k] - a_im[k] * b_re[k];
    }
    let (out, _) = ifft(&c_re, &c_im);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_dft(re: &[f64], im: &[f64]) -> (Vec<f64>, Vec<f64>) {
        let n = re.len();
        let mut or = vec![0.0; n];
        let mut oi = vec![0.0; n];
        for k in 0..n {
            for t in 0..n {
                let ang = -2.0 * PI * (k * t) as f64 / n as f64;
                or[k] += re[t] * ang.cos() - im[t] * ang.sin();
                oi[k] += re[t] * ang.sin() + im[t] * ang.cos();
            }
        }
        (or, oi)
    }

    fn assert_close(a: &[f64], b: &[f64], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!((x - y).abs() < tol, "index {i}: {x} vs {y}");
        }
    }

    #[test]
    fn matches_naive_dft_power_of_two() {
        let re: Vec<f64> = (0..16).map(|i| (i as f64 * 0.7).sin()).collect();
        let im: Vec<f64> = (0..16).map(|i| (i as f64 * 0.3).cos()).collect();
        let (fr, fi) = fft(&re, &im);
        let (nr, ni) = naive_dft(&re, &im);
        assert_close(&fr, &nr, 1e-9);
        assert_close(&fi, &ni, 1e-9);
    }

    #[test]
    fn matches_naive_dft_arbitrary_lengths() {
        for n in [3usize, 5, 6, 7, 12, 15, 100] {
            let re: Vec<f64> = (0..n).map(|i| ((i * i) as f64 * 0.13).sin()).collect();
            let im: Vec<f64> = (0..n).map(|i| (i as f64 * 0.41).cos()).collect();
            let (fr, fi) = fft(&re, &im);
            let (nr, ni) = naive_dft(&re, &im);
            assert_close(&fr, &nr, 1e-7);
            assert_close(&fi, &ni, 1e-7);
        }
    }

    #[test]
    fn ifft_inverts_fft() {
        for n in [8usize, 10, 17] {
            let re: Vec<f64> = (0..n).map(|i| (i as f64).sqrt()).collect();
            let im: Vec<f64> = (0..n).map(|i| (i as f64 * 1.1).sin()).collect();
            let (fr, fi) = fft(&re, &im);
            let (br, bi) = ifft(&fr, &fi);
            assert_close(&br, &re, 1e-9);
            assert_close(&bi, &im, 1e-9);
        }
    }

    #[test]
    fn pure_tone_concentrates_power_in_one_bin() {
        let n = 256;
        let k0 = 19;
        let signal: Vec<f64> = (0..n)
            .map(|t| (2.0 * PI * k0 as f64 * t as f64 / n as f64).sin())
            .collect();
        let ps = power_spectrum(&signal);
        let peak = ps
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert_eq!(peak, k0);
        let total: f64 = ps.iter().sum();
        assert!(ps[k0] / total > 0.95, "tone power not concentrated");
    }

    #[test]
    fn parseval_holds() {
        let n = 128;
        let signal: Vec<f64> = (0..n).map(|t| ((t * 7 % 13) as f64) - 6.0).collect();
        let (re, im) = fft_real(&signal);
        let time_energy: f64 = signal.iter().map(|x| x * x).sum();
        let freq_energy: f64 =
            re.iter().zip(&im).map(|(r, i)| r * r + i * i).sum::<f64>() / n as f64;
        assert!((time_energy - freq_energy).abs() < 1e-6);
    }

    #[test]
    fn correlation_peaks_at_known_shift() {
        let n = 128;
        let shift = 37;
        let mut base = vec![0.0; n];
        for (i, v) in base.iter_mut().enumerate() {
            *v = ((i * 31 % 17) as f64) - 8.0;
        }
        // b[t] = base[t - shift] (circular), so sum_t base[t] b[t+l] peaks
        // at l = n - shift... verify: b[t+l] = base[t+l-shift] aligns when
        // l = shift.
        let mut shifted = vec![0.0; n];
        for t in 0..n {
            shifted[(t + shift) % n] = base[t];
        }
        let corr = correlate(&base, &shifted);
        let peak = corr
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert_eq!(peak, shift);
    }

    #[test]
    fn empty_and_single_inputs() {
        assert_eq!(fft(&[], &[]).0.len(), 0);
        let (r, i) = fft(&[5.0], &[0.0]);
        assert_eq!(r, vec![5.0]);
        assert_eq!(i, vec![0.0]);
        assert!(power_spectrum(&[]).is_empty());
    }
}
