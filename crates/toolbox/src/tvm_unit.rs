//! The TVM unit adapter: run downloaded code as a Triana unit.
//!
//! §1: "We assume that the user has access to the executable code (in the
//! form of Java classes), which they can execute on their own resources and
//! can be transferred to the node where the execution is to be performed."
//! Here the executable code is a TVM module blob; this adapter turns a
//! transferred blob into a live [`Unit`], executing under the hosting
//! peer's sandbox policy and exposing metering for billing.

use obs::Obs;
use std::sync::Arc;
use triana_core::data::{DataType, TrianaData, TypeSpec};
use triana_core::unit::{Unit, UnitError};
use tvm::{ExecContext, ExecStats, ModuleBlob, PrepareError, PreparedModule, SandboxPolicy};

/// A unit backed by sandboxed TVM bytecode.
///
/// Admission (blob → prepared module) verifies once; every `process` call
/// after that reuses the prepared form and a per-unit [`ExecContext`], so
/// steady-state execution allocates nothing in the interpreter.
pub struct TvmUnit {
    prepared: Arc<PreparedModule>,
    ctx: ExecContext,
    policy: SandboxPolicy,
    /// Metering from the most recent execution (for the billing ledger).
    pub last_stats: ExecStats,
    type_name: String,
    observer: Obs,
}

/// Admit a blob as a unit would: integrity check, parse, verify — once.
fn prepare_blob(blob: &ModuleBlob) -> Result<PreparedModule, UnitError> {
    PreparedModule::from_blob(blob).map_err(|e| match e {
        PrepareError::Integrity => UnitError::Runtime("module blob failed integrity check".into()),
        PrepareError::Blob(e) => UnitError::Runtime(format!("bad module blob: {e}")),
        PrepareError::Verify(e) => UnitError::Runtime(format!("module rejected by verifier: {e}")),
    })
}

/// Register a TVM module blob as a unit factory under `name`. The blob is
/// verified and prepared here, once; every instance the registry creates
/// shares the prepared form and owns only its private [`ExecContext`]
/// scratch — so farmed clones and pipeline stages each get a per-worker
/// context over the same verified code.
pub fn register_tvm_module(
    registry: &mut triana_core::unit::UnitRegistry,
    name: &str,
    blob: &ModuleBlob,
    policy: SandboxPolicy,
) -> Result<(), UnitError> {
    let prepared = Arc::new(prepare_blob(blob)?);
    registry.register(name, move |_p| {
        Ok(Box::new(TvmUnit::from_prepared(
            Arc::clone(&prepared),
            policy,
        )))
    });
    Ok(())
}

impl TvmUnit {
    /// Admit a transferred blob: integrity check, parse, verify — once.
    pub fn from_blob(blob: &ModuleBlob, policy: SandboxPolicy) -> Result<Self, UnitError> {
        Ok(Self::from_prepared(Arc::new(prepare_blob(blob)?), policy))
    }

    /// Build a unit around an already-prepared module (e.g. shared out of a
    /// [`triana_core::modules::ModuleCache`], which prepares at admission).
    pub fn from_prepared(prepared: Arc<PreparedModule>, policy: SandboxPolicy) -> Self {
        TvmUnit {
            type_name: format!("tvm:{}", prepared.name()),
            prepared,
            ctx: ExecContext::new(),
            policy,
            last_stats: ExecStats::default(),
            observer: Obs::disabled(),
        }
    }

    pub fn prepared(&self) -> &Arc<PreparedModule> {
        &self.prepared
    }

    /// Attach a metrics observer; sandboxed runs then feed the `tvm.*`
    /// counters (instructions, violations) alongside `last_stats`.
    pub fn set_obs(&mut self, observer: Obs) {
        self.observer = observer;
    }

    fn extract(port: usize, data: &TrianaData) -> Result<Vec<f64>, UnitError> {
        match data {
            TrianaData::Scalar(x) => Ok(vec![*x]),
            TrianaData::SampleSet { samples, .. } => Ok(samples.clone()),
            TrianaData::Spectrum { power, .. } => Ok(power.clone()),
            other => Err(UnitError::TypeMismatch {
                port,
                expected: "Scalar|SampleSet|Spectrum".into(),
                got: other.dtype(),
            }),
        }
    }
}

impl Unit for TvmUnit {
    fn type_name(&self) -> &str {
        &self.type_name
    }

    fn input_types(&self) -> Vec<TypeSpec> {
        vec![
            TypeSpec::OneOf(vec![
                DataType::Scalar,
                DataType::SampleSet,
                DataType::Spectrum,
            ]);
            self.prepared.n_inputs() as usize
        ]
    }

    fn output_types(&self) -> Vec<DataType> {
        vec![DataType::SampleSet; self.prepared.n_outputs() as usize]
    }

    fn process(&mut self, inputs: Vec<TrianaData>) -> Result<Vec<TrianaData>, UnitError> {
        // Propagate the first input's sample rate to the outputs.
        let rate_hz = inputs
            .iter()
            .find_map(|d| match d {
                TrianaData::SampleSet { rate_hz, .. } => Some(*rate_hz),
                _ => None,
            })
            .unwrap_or(1.0);
        let buffers: Vec<Vec<f64>> = inputs
            .iter()
            .enumerate()
            .map(|(i, d)| Self::extract(i, d))
            .collect::<Result<_, _>>()?;
        let slices: Vec<&[f64]> = buffers.iter().map(Vec::as_slice).collect();
        let (outputs, stats) = self
            .prepared
            .execute_obs(&slices, &self.policy, &mut self.ctx, &self.observer)
            .map_err(|e| UnitError::Runtime(format!("sandboxed execution failed: {e}")))?;
        self.last_stats = stats;
        Ok(outputs
            .into_iter()
            .map(|samples| TrianaData::SampleSet { rate_hz, samples })
            .collect())
    }

    fn work_estimate(&self, inputs: &[TrianaData]) -> f64 {
        // Interpreted code: assume ~20 host cycles per TVM instruction and
        // instructions roughly proportional to module size × input length.
        let input_len: usize = inputs
            .iter()
            .map(|d| match d {
                TrianaData::SampleSet { samples, .. } => samples.len(),
                TrianaData::Spectrum { power, .. } => power.len(),
                _ => 1,
            })
            .sum();
        let per_item = self.prepared.source_instructions().max(8) as f64;
        input_len.max(1) as f64 * per_item * 20.0 / 1e9
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tvm::asm::assemble;

    const SCALER: &str = r#"
; y[i] = k * x[i], k from input port 1 (a scalar)
.module Scaler 1 2 1
.func main 3
    push 0
    inget 1
    store 2      ; k
    inlen 0
    store 0
    push 0
    store 1
loop:
    load 1
    load 0
    lt
    jz end
    load 1
    inget 0
    load 2
    mul
    outpush 0
    load 1
    push 1
    add
    store 1
    jmp loop
end:
    halt
"#;

    fn scaler_unit() -> TvmUnit {
        let blob = assemble(SCALER).unwrap().to_blob();
        TvmUnit::from_blob(&blob, SandboxPolicy::standard()).unwrap()
    }

    #[test]
    fn runs_transferred_code_on_triana_data() {
        let mut u = scaler_unit();
        assert_eq!(u.type_name(), "tvm:Scaler");
        assert_eq!(u.input_types().len(), 2);
        assert_eq!(u.output_types(), vec![DataType::SampleSet]);
        let out = u
            .process(vec![
                TrianaData::SampleSet {
                    rate_hz: 100.0,
                    samples: vec![1.0, 2.0, 3.0],
                },
                TrianaData::Scalar(10.0),
            ])
            .unwrap()
            .pop()
            .unwrap();
        assert_eq!(
            out,
            TrianaData::SampleSet {
                rate_hz: 100.0,
                samples: vec![10.0, 20.0, 30.0]
            }
        );
        assert!(u.last_stats.instructions > 0, "metered for billing");
    }

    #[test]
    fn attached_observer_meters_sandboxed_runs() {
        let observer = Obs::enabled();
        let mut u = scaler_unit();
        u.set_obs(observer.clone());
        u.process(vec![
            TrianaData::SampleSet {
                rate_hz: 100.0,
                samples: vec![1.0, 2.0],
            },
            TrianaData::Scalar(2.0),
        ])
        .unwrap();
        let reg = observer.registry().unwrap();
        assert_eq!(reg.counter_value("tvm.executions"), 1);
        assert_eq!(
            reg.counter_value("tvm.instructions"),
            u.last_stats.instructions
        );
    }

    #[test]
    fn corrupted_blob_rejected_at_admission() {
        let mut blob = assemble(SCALER).unwrap().to_blob();
        let n = blob.bytes.len();
        blob.bytes[n - 2] ^= 0xFF;
        assert!(TvmUnit::from_blob(&blob, SandboxPolicy::standard()).is_err());
    }

    #[test]
    fn sandbox_violation_is_a_unit_error() {
        let hostile = assemble(".module Spin 1 0 0\n.func main 0\nloop:\n jmp loop\n")
            .unwrap()
            .to_blob();
        let mut u = TvmUnit::from_blob(
            &hostile,
            SandboxPolicy {
                max_instructions: 1_000,
                ..SandboxPolicy::standard()
            },
        )
        .unwrap();
        let e = u.process(vec![]).expect_err("budget must trip");
        assert!(matches!(e, UnitError::Runtime(m) if m.contains("budget")));
    }

    #[test]
    fn wrong_input_type_reported_per_port() {
        let mut u = scaler_unit();
        let e = u
            .process(vec![
                TrianaData::Text("nope".into()),
                TrianaData::Scalar(1.0),
            ])
            .expect_err("type error");
        assert!(matches!(e, UnitError::TypeMismatch { port: 0, .. }));
    }

    #[test]
    fn spectrum_inputs_accepted() {
        let mut u = scaler_unit();
        let out = u
            .process(vec![
                TrianaData::Spectrum {
                    df_hz: 1.0,
                    power: vec![4.0],
                },
                TrianaData::Scalar(0.5),
            ])
            .unwrap()
            .pop()
            .unwrap();
        let TrianaData::SampleSet { samples, .. } = out else {
            panic!()
        };
        assert_eq!(samples, vec![2.0]);
    }

    #[test]
    fn work_estimate_scales_with_input() {
        let u = scaler_unit();
        let small = [
            TrianaData::SampleSet {
                rate_hz: 1.0,
                samples: vec![0.0; 10],
            },
            TrianaData::Scalar(1.0),
        ];
        let big = [
            TrianaData::SampleSet {
                rate_hz: 1.0,
                samples: vec![0.0; 10_000],
            },
            TrianaData::Scalar(1.0),
        ];
        assert!(u.work_estimate(&big) > u.work_estimate(&small) * 100.0);
    }
}
