//! The standard toolbox registry: every built-in unit, registered by name.

use crate::db::{DataAccess, DataManipulate, DataVerify, DataVisualise, TableStore};
use crate::galaxy::RenderFrame;
use crate::inspiral::{ChunkSource, MatchedFilter};
use crate::signal::{AccumStat, FftUnit, GaussianNoise, Grapher, PowerSpectrum, Wave};
use crate::units::{
    Adder, Concat, Const, Decibel, Decimate, Downsample, Magnitude, NormalizeImage, Scaler,
    Statistics, TextSource, Threshold, Window, WordCount,
};
use triana_core::unit::UnitRegistry;

/// Build a registry with all built-in units. `store` backs the
/// `DataAccess` units (pass a fresh one if Case 3 isn't used).
pub fn standard_registry_with_store(store: TableStore) -> UnitRegistry {
    let mut r = UnitRegistry::new();
    r.register("Wave", |p| Ok(Box::new(Wave::from_params(p)?)));
    r.register("GaussianNoise", |p| {
        Ok(Box::new(GaussianNoise::from_params(p)?))
    });
    r.register("FFT", |_p| Ok(Box::new(FftUnit)));
    r.register("PowerSpectrum", |_p| Ok(Box::new(PowerSpectrum)));
    r.register("AccumStat", |_p| Ok(Box::new(AccumStat::new())));
    r.register("Grapher", |_p| Ok(Box::new(Grapher)));
    r.register("RenderFrame", |p| {
        Ok(Box::new(RenderFrame::from_params(p)?))
    });
    r.register("MatchedFilter", |p| {
        Ok(Box::new(MatchedFilter::from_params(p)?))
    });
    r.register("ChunkSource", |p| {
        Ok(Box::new(ChunkSource::from_params(p)?))
    });
    let s = store.clone();
    r.register("DataAccess", move |p| {
        Ok(Box::new(DataAccess {
            store: s.clone(),
            table: p.get("table").cloned().unwrap_or_default(),
        }))
    });
    r.register("DataManipulate", |p| {
        Ok(Box::new(DataManipulate::from_params(p)?))
    });
    r.register("DataVisualise", |p| {
        Ok(Box::new(DataVisualise::from_params(p)?))
    });
    r.register("DataVerify", |_p| Ok(Box::new(DataVerify)));
    // General numeric / signal / image / text units.
    r.register("Const", |p| Ok(Box::new(Const::from_params(p)?)));
    r.register("Adder", |_p| Ok(Box::new(Adder)));
    r.register("Scaler", |p| Ok(Box::new(Scaler::from_params(p)?)));
    r.register("Window", |p| Ok(Box::new(Window::from_params(p)?)));
    r.register("Decimate", |p| Ok(Box::new(Decimate::from_params(p)?)));
    r.register("Magnitude", |_p| Ok(Box::new(Magnitude)));
    r.register("Decibel", |_p| Ok(Box::new(Decibel)));
    r.register("Statistics", |_p| Ok(Box::new(Statistics)));
    r.register("Threshold", |p| Ok(Box::new(Threshold::from_params(p)?)));
    r.register("NormalizeImage", |_p| Ok(Box::new(NormalizeImage)));
    r.register("Downsample", |_p| Ok(Box::new(Downsample)));
    r.register("TextSource", |p| {
        Ok(Box::new(TextSource {
            text: p.get("text").cloned().unwrap_or_default(),
        }))
    });
    r.register("WordCount", |_p| Ok(Box::new(WordCount)));
    r.register("Concat", |p| {
        Ok(Box::new(Concat {
            separator: p.get("separator").cloned().unwrap_or_default(),
        }))
    });
    r
}

/// The standard registry with an empty table store.
pub fn standard_registry() -> UnitRegistry {
    standard_registry_with_store(TableStore::new())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::db::sample_catalogue;
    use crate::signal::spectrum_snr;
    use triana_core::data::TrianaData;
    use triana_core::unit::Params;
    use triana_core::{run_graph, EngineConfig, TaskGraph};

    #[test]
    fn all_expected_units_registered() {
        let r = standard_registry();
        for name in [
            "Wave",
            "GaussianNoise",
            "FFT",
            "PowerSpectrum",
            "AccumStat",
            "Grapher",
            "RenderFrame",
            "MatchedFilter",
            "ChunkSource",
            "DataAccess",
            "DataManipulate",
            "DataVisualise",
            "DataVerify",
            "Const",
            "Adder",
            "Scaler",
            "Window",
            "Decimate",
            "Magnitude",
            "Decibel",
            "Statistics",
            "Threshold",
            "NormalizeImage",
            "Downsample",
            "TextSource",
            "WordCount",
            "Concat",
        ] {
            assert!(r.contains(name), "missing unit `{name}`");
        }
        assert_eq!(r.len(), 27);
    }

    /// The complete Figure 1 network, end-to-end through the engine: Wave →
    /// GaussianNoise → PowerSpectrum → AccumStat → Grapher, 20 iterations,
    /// reproducing the Figure 2 observation.
    #[test]
    fn figure1_network_end_to_end() {
        let reg = standard_registry();
        let mut g = TaskGraph::new("Figure1");
        let wave = g
            .add_task(
                &reg,
                "Wave",
                "wave",
                Params::from([
                    ("freq".to_string(), "64".to_string()),
                    ("amplitude".to_string(), "0.3".to_string()),
                ]),
            )
            .unwrap();
        let noise = g
            .add_task(
                &reg,
                "GaussianNoise",
                "noise",
                Params::from([("sigma".to_string(), "2".to_string())]),
            )
            .unwrap();
        let ps = g
            .add_task(&reg, "PowerSpectrum", "pspec", Params::new())
            .unwrap();
        let acc = g
            .add_task(&reg, "AccumStat", "accum", Params::new())
            .unwrap();
        let graph = g
            .add_task(&reg, "Grapher", "grapher", Params::new())
            .unwrap();
        g.connect(wave, 0, noise, 0).unwrap();
        g.connect(noise, 0, ps, 0).unwrap();
        g.connect(ps, 0, acc, 0).unwrap();
        g.connect(acc, 0, graph, 0).unwrap();
        g.typecheck(&reg).unwrap();

        let run = |iters: usize| {
            let r = run_graph(
                &g,
                &reg,
                &EngineConfig {
                    iterations: iters,
                    threaded: true,
                },
            )
            .unwrap();
            match r.last_of(&g, "grapher") {
                Some(TrianaData::Spectrum { df_hz, power }) => spectrum_snr(power, *df_hz, 64.0),
                other => panic!("unexpected {other:?}"),
            }
        };
        let snr_1 = run(1);
        let snr_20 = run(20);
        assert!(
            snr_20 > snr_1 * 2.0,
            "Figure 2: SNR should improve with averaging ({snr_1:.1} → {snr_20:.1})"
        );
    }

    #[test]
    fn case3_pipeline_end_to_end() {
        let store = TableStore::new();
        store.put("catalogue", sample_catalogue(200, 9));
        let reg = standard_registry_with_store(store);
        let mut g = TaskGraph::new("Case3");
        let access = g
            .add_task(
                &reg,
                "DataAccess",
                "access",
                Params::from([("table".to_string(), "catalogue".to_string())]),
            )
            .unwrap();
        let manip = g
            .add_task(
                &reg,
                "DataManipulate",
                "manip",
                Params::from([
                    ("op".to_string(), "filter".to_string()),
                    ("col".to_string(), "magnitude".to_string()),
                    ("max".to_string(), "18".to_string()),
                ]),
            )
            .unwrap();
        let vis = g
            .add_task(
                &reg,
                "DataVisualise",
                "vis",
                Params::from([("col".to_string(), "magnitude".to_string())]),
            )
            .unwrap();
        let verify = g
            .add_task(&reg, "DataVerify", "verify", Params::new())
            .unwrap();
        g.connect(access, 0, manip, 0).unwrap();
        g.connect(manip, 0, vis, 0).unwrap();
        // Verification branch off the manipulated table.
        g.connect(manip, 0, verify, 0).unwrap();
        let r = run_graph(
            &g,
            &reg,
            &EngineConfig {
                iterations: 1,
                threaded: true,
            },
        )
        .unwrap();
        match r.last_of(&g, "verify") {
            Some(TrianaData::Text(report)) => assert!(report.starts_with("OK")),
            other => panic!("unexpected {other:?}"),
        }
        match r.last_of(&g, "vis") {
            Some(TrianaData::ImageFrame { pixels, .. }) => {
                assert!(pixels.iter().sum::<f64>() > 0.0)
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
