//! Case 1: galaxy-formation visualisation.
//!
//! §3.6.1: "Galaxy and star formation simulation codes generate binary data
//! files that represent a series of particles in three dimensions … It is
//! possible to distribute each time slice or frame over a number of
//! processes and calculate the different views based on the point of view
//! in parallel … processed to calculate the column density using smooth
//! particle hydrodynamics."
//!
//! The Cardiff group's simulation outputs are not available, so
//! [`synthesize_snapshots`] generates Plummer-sphere clusters that merge
//! over time — the same data shape (positions, masses, smoothing lengths
//! per snapshot) driving the same render path: an SPH column-density
//! projection ([`render_column_density`]).

use netsim::Pcg32;
use triana_core::data::{DataType, ParticleSet, TrianaData, TypeSpec};
use triana_core::unit::{param_f64, param_usize, Params, Unit, UnitError};

/// Viewing parameters for a projection.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct View {
    /// Rotation about the z axis (radians) before projecting onto x–y.
    pub angle: f64,
    /// Half-width of the viewport in simulation units.
    pub half_width: f64,
    pub pixels: u32,
}

impl Default for View {
    fn default() -> Self {
        View {
            angle: 0.0,
            half_width: 2.0,
            pixels: 64,
        }
    }
}

/// Generate `frames` snapshots of two Plummer-sphere clusters falling
/// together — the visual shape of a galaxy-merger animation.
pub fn synthesize_snapshots(
    frames: usize,
    particles_per_cluster: usize,
    seed: u64,
) -> Vec<ParticleSet> {
    let mut rng = Pcg32::new(seed, 0x9A1A);
    // Sample each cluster's internal structure once; per-frame we move the
    // cluster centres toward each other.
    let sample_cluster = |rng: &mut Pcg32| -> Vec<[f64; 3]> {
        (0..particles_per_cluster)
            .map(|_| {
                // Plummer radius via inverse CDF, isotropic direction.
                let u: f64 = rng.uniform().max(1e-9);
                let r = 0.3 / (u.powf(-2.0 / 3.0) - 1.0).sqrt().max(1e-3);
                let costh = rng.range_f64(-1.0, 1.0);
                let sinth = (1.0 - costh * costh).sqrt();
                let phi = rng.range_f64(0.0, std::f64::consts::TAU);
                [r * sinth * phi.cos(), r * sinth * phi.sin(), r * costh]
            })
            .collect()
    };
    let c1 = sample_cluster(&mut rng);
    let c2 = sample_cluster(&mut rng);
    (0..frames)
        .map(|f| {
            let t = if frames <= 1 {
                0.0
            } else {
                f as f64 / (frames - 1) as f64
            };
            // Clusters start ±1.2 apart and meet at t=1.
            let sep = 1.2 * (1.0 - t);
            let mut pos = Vec::with_capacity(2 * particles_per_cluster);
            for p in &c1 {
                pos.push([p[0] - sep, p[1], p[2]]);
            }
            for p in &c2 {
                pos.push([p[0] + sep, p[1], p[2]]);
            }
            let n = pos.len();
            ParticleSet {
                time: t,
                pos,
                mass: vec![1.0 / n as f64; n],
                smoothing: vec![0.08; n],
            }
        })
        .collect()
}

/// SPH column-density projection: each particle contributes its mass
/// through a 2-D cubic-spline kernel of radius `2h` around its projected
/// position.
pub fn render_column_density(particles: &ParticleSet, view: &View) -> (u32, u32, Vec<f64>) {
    let npix = view.pixels as usize;
    let mut image = vec![0.0f64; npix * npix];
    if npix == 0 {
        return (0, 0, image);
    }
    let scale = npix as f64 / (2.0 * view.half_width);
    let (ca, sa) = (view.angle.cos(), view.angle.sin());
    for i in 0..particles.len() {
        let p = particles.pos[i];
        // Rotate about z, project onto x–y.
        let x = p[0] * ca - p[1] * sa;
        let y = p[0] * sa + p[1] * ca;
        let h = particles.smoothing[i].max(1e-9);
        let m = particles.mass[i];
        // Pixel-space footprint.
        let px = (x + view.half_width) * scale;
        let py = (y + view.half_width) * scale;
        let r_pix = (2.0 * h * scale).max(0.5);
        let x0 = (px - r_pix).floor().max(0.0) as usize;
        let x1 = ((px + r_pix).ceil() as usize).min(npix.saturating_sub(1));
        let y0 = (py - r_pix).floor().max(0.0) as usize;
        let y1 = ((py + r_pix).ceil() as usize).min(npix.saturating_sub(1));
        if x0 > x1 || y0 > y1 || px < -r_pix || py < -r_pix {
            continue;
        }
        // 2-D cubic spline kernel W(q), q = r / h, support q < 2.
        let norm = 10.0 / (7.0 * std::f64::consts::PI * h * h);
        let mut contributed = 0.0;
        let mut weights: Vec<(usize, f64)> = Vec::new();
        for gy in y0..=y1 {
            for gx in x0..=x1 {
                let dx = (gx as f64 + 0.5 - px) / scale;
                let dy = (gy as f64 + 0.5 - py) / scale;
                let q = (dx * dx + dy * dy).sqrt() / h;
                let w = if q < 1.0 {
                    1.0 - 1.5 * q * q + 0.75 * q * q * q
                } else if q < 2.0 {
                    0.25 * (2.0 - q).powi(3)
                } else {
                    0.0
                };
                if w > 0.0 {
                    let val = norm * w;
                    weights.push((gy * npix + gx, val));
                    contributed += val;
                }
            }
        }
        if contributed > 0.0 {
            // Normalize so each particle deposits exactly its mass
            // (conserves total column density despite pixelization).
            let k = m / contributed;
            for (idx, w) in weights {
                image[idx] += w * k;
            }
        }
    }
    (view.pixels, view.pixels, image)
}

/// The frame-rendering unit: `Particles -> ImageFrame`.
pub struct RenderFrame {
    pub view: View,
}

impl RenderFrame {
    pub fn from_params(p: &Params) -> Result<Self, UnitError> {
        Ok(RenderFrame {
            view: View {
                angle: param_f64(p, "angle", 0.0)?,
                half_width: param_f64(p, "half_width", 2.0)?,
                pixels: param_usize(p, "pixels", 64)? as u32,
            },
        })
    }
}

impl Unit for RenderFrame {
    fn type_name(&self) -> &str {
        "RenderFrame"
    }
    fn input_types(&self) -> Vec<TypeSpec> {
        vec![TypeSpec::Exact(DataType::Particles)]
    }
    fn output_types(&self) -> Vec<DataType> {
        vec![DataType::ImageFrame]
    }
    fn process(&mut self, inputs: Vec<TrianaData>) -> Result<Vec<TrianaData>, UnitError> {
        match inputs.into_iter().next() {
            Some(TrianaData::Particles(p)) => {
                if !p.is_consistent() {
                    return Err(UnitError::Runtime("inconsistent particle set".into()));
                }
                let (width, height, pixels) = render_column_density(&p, &self.view);
                Ok(vec![TrianaData::ImageFrame {
                    width,
                    height,
                    pixels,
                }])
            }
            other => Err(UnitError::Runtime(format!(
                "RenderFrame expects Particles, got {other:?}"
            ))),
        }
    }
    fn work_estimate(&self, inputs: &[TrianaData]) -> f64 {
        // Kernel footprint dominates: ~particles × footprint pixels.
        if let Some(TrianaData::Particles(p)) = inputs.first() {
            let n = p.len() as f64;
            let scale = self.view.pixels as f64 / (2.0 * self.view.half_width);
            let mean_h = if p.is_empty() {
                0.0
            } else {
                p.smoothing.iter().sum::<f64>() / n
            };
            let footprint = (2.0 * mean_h * scale).max(1.0).powi(2);
            n * footprint * 60.0 / 1e9
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshots_have_consistent_shapes() {
        let snaps = synthesize_snapshots(5, 100, 42);
        assert_eq!(snaps.len(), 5);
        for (i, s) in snaps.iter().enumerate() {
            assert_eq!(s.len(), 200);
            assert!(s.is_consistent());
            let expect_t = i as f64 / 4.0;
            assert!((s.time - expect_t).abs() < 1e-12);
        }
    }

    #[test]
    fn clusters_converge_over_time() {
        let snaps = synthesize_snapshots(3, 200, 7);
        let spread_x = |s: &ParticleSet| {
            let mean: f64 = s.pos.iter().map(|p| p[0]).sum::<f64>() / s.len() as f64;
            s.pos.iter().map(|p| (p[0] - mean).abs()).sum::<f64>() / s.len() as f64
        };
        assert!(
            spread_x(&snaps[0]) > spread_x(&snaps[2]),
            "clusters should approach each other"
        );
    }

    #[test]
    fn render_conserves_total_mass() {
        let snaps = synthesize_snapshots(1, 300, 11);
        let view = View {
            half_width: 4.0, // wide enough to contain everything
            pixels: 128,
            angle: 0.0,
        };
        let (_, _, img) = render_column_density(&snaps[0], &view);
        let total: f64 = img.iter().sum();
        let mass: f64 = snaps[0].mass.iter().sum();
        assert!(
            (total - mass).abs() / mass < 0.05,
            "rendered {total}, expected ~{mass}"
        );
    }

    #[test]
    fn density_peaks_near_cluster_centres() {
        let snaps = synthesize_snapshots(1, 500, 3);
        let view = View::default();
        let (w, _, img) = render_column_density(&snaps[0], &view);
        // Clusters at x = ±1.2: brightest pixel should be off-centre in x.
        let (peak_idx, _) = img
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap();
        let px = (peak_idx % w as usize) as f64 / w as f64 * 4.0 - 2.0; // world x
        assert!(px.abs() > 0.5, "peak at x={px}, expected near ±1.2");
    }

    #[test]
    fn rotation_changes_the_image() {
        let snaps = synthesize_snapshots(1, 200, 5);
        let base = render_column_density(&snaps[0], &View::default()).2;
        let rot = render_column_density(
            &snaps[0],
            &View {
                angle: std::f64::consts::FRAC_PI_2,
                ..View::default()
            },
        )
        .2;
        let diff: f64 = base.iter().zip(&rot).map(|(a, b)| (a - b).abs()).sum();
        assert!(diff > 1e-3, "rotated view should differ");
    }

    #[test]
    fn render_unit_produces_image_frames() {
        let snaps = synthesize_snapshots(1, 50, 9);
        let mut unit = RenderFrame {
            view: View::default(),
        };
        let out = unit
            .process(vec![TrianaData::Particles(snaps[0].clone())])
            .unwrap()
            .pop()
            .unwrap();
        match out {
            TrianaData::ImageFrame {
                width,
                height,
                pixels,
            } => {
                assert_eq!((width, height), (64, 64));
                assert_eq!(pixels.len(), 64 * 64);
                assert!(pixels.iter().any(|&p| p > 0.0));
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(unit.process(vec![TrianaData::Scalar(1.0)]).is_err());
    }

    #[test]
    fn work_estimate_grows_with_particles_and_resolution() {
        let small = synthesize_snapshots(1, 50, 1).pop().unwrap();
        let big = synthesize_snapshots(1, 500, 1).pop().unwrap();
        let lo_res = RenderFrame {
            view: View {
                pixels: 32,
                ..View::default()
            },
        };
        let hi_res = RenderFrame {
            view: View {
                pixels: 256,
                ..View::default()
            },
        };
        let w_small = lo_res.work_estimate(&[TrianaData::Particles(small.clone())]);
        let w_big = lo_res.work_estimate(&[TrianaData::Particles(big.clone())]);
        assert!(w_big > w_small * 5.0);
        let w_hi = hi_res.work_estimate(&[TrianaData::Particles(big)]);
        assert!(w_hi > w_big);
    }

    #[test]
    fn empty_particle_set_renders_black() {
        let empty = ParticleSet {
            time: 0.0,
            pos: vec![],
            mass: vec![],
            smoothing: vec![],
        };
        let (_, _, img) = render_column_density(&empty, &View::default());
        assert!(img.iter().all(|&p| p == 0.0));
    }
}
