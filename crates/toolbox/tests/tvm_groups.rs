//! Distributed execution of TVM-backed groups: transferred bytecode runs
//! through the same group-execution seam as built-in units, under both
//! distribution policies. Each farmed clone / pipeline stage instance
//! shares the one prepared (verify-once) module and owns only its private
//! execution context.

use p2p::DiscoveryMode;
use toolbox::tvm_unit::register_tvm_module;
use triana_core::data::TrianaData;
use triana_core::graph::{DistributionPolicy, TaskGraph};
use triana_core::grid::exec::{execute_group_parallel, execute_group_pipeline};
use triana_core::grid::{GridWorld, WorkerSetup};
use triana_core::unit::{Params, UnitRegistry};
use tvm::asm::assemble;
use tvm::SandboxPolicy;

const DOUBLER: &str = ".module Doubler 1 1 1\n.func main 2\n inlen 0\n store 0\n push 0\n \
                       store 1\nloop:\n load 1\n load 0\n lt\n jz end\n load 1\n inget 0\n \
                       push 2\n mul\n outpush 0\n load 1\n push 1\n add\n store 1\n jmp loop\n\
                       end:\n halt\n";

const ADD_TEN: &str = ".module AddTen 1 1 1\n.func main 2\n inlen 0\n store 0\n push 0\n \
                      store 1\nloop:\n load 1\n load 0\n lt\n jz end\n load 1\n inget 0\n \
                      push 10\n add\n outpush 0\n load 1\n push 1\n add\n store 1\n jmp loop\n\
                      end:\n halt\n";

/// Registry with the two TVM modules plus a plain source/sink unit.
fn tvm_registry() -> UnitRegistry {
    let mut reg = toolbox::standard_registry();
    let policy = SandboxPolicy::standard();
    register_tvm_module(
        &mut reg,
        "TvmDoubler",
        &assemble(DOUBLER).unwrap().to_blob(),
        policy,
    )
    .unwrap();
    register_tvm_module(
        &mut reg,
        "TvmAddTen",
        &assemble(ADD_TEN).unwrap().to_blob(),
        policy,
    )
    .unwrap();
    reg
}

/// src → [TvmDoubler → TvmAddTen] (group) → sink
fn build(policy: DistributionPolicy) -> (TaskGraph, triana_core::graph::GroupId, UnitRegistry) {
    let reg = tvm_registry();
    let mut g = TaskGraph::new("tvm-dist");
    let src = g.add_task(&reg, "Const", "src", Params::new()).unwrap();
    let d = g
        .add_task(&reg, "TvmDoubler", "dbl", Params::new())
        .unwrap();
    let a = g
        .add_task(&reg, "TvmAddTen", "add10", Params::new())
        .unwrap();
    let sink = g.add_task(&reg, "Scaler", "sink", Params::new()).unwrap();
    g.connect(src, 0, d, 0).unwrap();
    g.connect(d, 0, a, 0).unwrap();
    g.connect(a, 0, sink, 0).unwrap();
    let gid = g.add_group("grp", vec![d, a], policy).unwrap();
    (g, gid, reg)
}

fn expect_samples(data: &TrianaData) -> &[f64] {
    match data {
        TrianaData::SampleSet { samples, .. } => samples,
        other => panic!("expected SampleSet, got {other:?}"),
    }
}

#[test]
fn tvm_group_farms_in_parallel_with_real_results() {
    let (g, gid, reg) = build(DistributionPolicy::Parallel);
    let mut world = GridWorld::new(41, DiscoveryMode::Flooding);
    let (ctrl, _) = world.add_peer(netsim::HostSpec::lan_workstation());
    let horizon = netsim::SimTime::from_secs(1_000_000);
    let workers: Vec<WorkerSetup> = (0..3)
        .map(|_| {
            let spec = netsim::HostSpec::lan_workstation();
            let (peer, _) = world.add_peer(spec.clone());
            WorkerSetup {
                peer,
                spec,
                trace: netsim::avail::AvailabilityTrace::always(horizon),
                cache_bytes: 1 << 20,
            }
        })
        .collect();
    let tokens: Vec<TrianaData> = (0..6).map(|i| TrianaData::Scalar(i as f64)).collect();
    let run = execute_group_parallel(
        &mut world,
        &g,
        &reg,
        gid,
        ctrl,
        workers,
        tokens,
        triana_core::grid::farm::FarmConfig::default(),
    )
    .unwrap();
    assert_eq!(run.tokens.len(), 6);
    for (i, tr) in run.tokens.iter().enumerate() {
        // Token i: doubled then +10 ⇒ 2i + 10.
        assert_eq!(expect_samples(&tr.outputs[0]), &[2.0 * i as f64 + 10.0]);
        assert!(tr.latency > netsim::Duration::ZERO);
    }
}

#[test]
fn tvm_group_pipelines_peer_to_peer_with_real_results() {
    let (g, gid, reg) = build(DistributionPolicy::PeerToPeer);
    let mut world = GridWorld::new(42, DiscoveryMode::Flooding);
    let (ctrl, _) = world.add_peer(netsim::HostSpec::lan_workstation());
    let stage_peers: Vec<p2p::PeerId> = (0..2)
        .map(|_| world.add_peer(netsim::HostSpec::lan_workstation()).0)
        .collect();
    let tokens: Vec<TrianaData> = (0..5).map(|i| TrianaData::Scalar(i as f64)).collect();
    let run =
        execute_group_pipeline(&mut world, &g, &reg, gid, ctrl, &stage_peers, tokens).unwrap();
    assert_eq!(run.tokens.len(), 5);
    for (i, tr) in run.tokens.iter().enumerate() {
        assert_eq!(expect_samples(&tr.outputs[0]), &[2.0 * i as f64 + 10.0]);
    }
}

#[test]
fn sandbox_violations_surface_through_group_execution() {
    let mut reg = toolbox::standard_registry();
    let spin = assemble(".module Spin 1 1 0\n.func main 0\nloop:\n jmp loop\n")
        .unwrap()
        .to_blob();
    register_tvm_module(
        &mut reg,
        "TvmSpin",
        &spin,
        SandboxPolicy {
            max_instructions: 1_000,
            ..SandboxPolicy::standard()
        },
    )
    .unwrap();
    let mut g = TaskGraph::new("hostile");
    let src = g.add_task(&reg, "Const", "src", Params::new()).unwrap();
    let s = g.add_task(&reg, "TvmSpin", "spin", Params::new()).unwrap();
    g.connect(src, 0, s, 0).unwrap();
    let gid = g
        .add_group("grp", vec![s], DistributionPolicy::Parallel)
        .unwrap();
    let mut world = GridWorld::new(43, DiscoveryMode::Flooding);
    let (ctrl, _) = world.add_peer(netsim::HostSpec::lan_workstation());
    let horizon = netsim::SimTime::from_secs(1_000);
    let spec = netsim::HostSpec::lan_workstation();
    let (peer, _) = world.add_peer(spec.clone());
    let workers = vec![WorkerSetup {
        peer,
        spec,
        trace: netsim::avail::AvailabilityTrace::always(horizon),
        cache_bytes: 1 << 20,
    }];
    let r = execute_group_parallel(
        &mut world,
        &g,
        &reg,
        gid,
        ctrl,
        workers,
        vec![TrianaData::Scalar(0.0)],
        triana_core::grid::farm::FarmConfig::default(),
    );
    let err = r.expect_err("budget violation must surface");
    assert!(err.to_string().contains("budget"), "{err}");
}
