//! Per-peer behaviour profiles: learned speed, availability, and trust.
//!
//! A [`PeerProfile`] condenses a worker's observed history into three
//! numbers the scheduler can act on:
//!
//! * **expected runtime** — an EWMA of observed seconds-per-gigacycle,
//!   seeded from the advertised CPU clock (§3.7: the controller only knows
//!   "machine type, speed, memory"); workers whose *effective* bandwidth
//!   falls short of the advert ("computational bandwidth not reached") are
//!   found out after their first completions;
//! * **availability** — the prior-smoothed fraction of observed time the
//!   peer was up, fed by the farm's up/down transitions;
//! * **trust** — a decayed Beta-Bernoulli score over weighted success
//!   (completions, majority votes) and failure (abandons, dissents)
//!   observations. The Bayesian prior makes a fresh peer *neutral*: it can
//!   never outrank a proven-honest one, fixing the legacy
//!   `Reputation::score()` behaviour of treating the unknown as perfect.

use netsim::{Duration, SimTime};

/// Parameters of the profile estimators.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TrustConfig {
    /// EWMA smoothing for the seconds-per-gigacycle estimate (weight of the
    /// newest observation).
    pub ewma_alpha: f64,
    /// Beta prior pseudo-successes (α₀). With `prior_failures` this fixes
    /// the unobserved score at α₀/(α₀+β₀).
    pub prior_successes: f64,
    /// Beta prior pseudo-failures (β₀).
    pub prior_failures: f64,
    /// Multiplicative decay applied to both evidence counts on every new
    /// observation, so old behaviour fades.
    pub decay: f64,
    /// Evidence weight of one completed job.
    pub completion_weight: f64,
    /// Evidence weight of one abandoned (interrupted/churned) job.
    pub abandon_weight: f64,
    /// Evidence weight of one majority-agreeing replica vote.
    pub agree_weight: f64,
    /// Evidence weight of one dissenting replica vote. Dissent is weighted
    /// heavily: returning a wrong result is worse than churning away.
    pub dissent_weight: f64,
    /// Availability prior: pseudo-seconds of observed up-time...
    pub avail_prior_up: f64,
    /// ...and of observed down-time (together they pin the unobserved
    /// availability estimate and damp early flapping).
    pub avail_prior_down: f64,
}

impl Default for TrustConfig {
    fn default() -> Self {
        TrustConfig {
            ewma_alpha: 0.3,
            prior_successes: 1.0,
            prior_failures: 1.0,
            decay: 0.995,
            completion_weight: 1.0,
            abandon_weight: 1.0,
            agree_weight: 1.0,
            dissent_weight: 4.0,
            avail_prior_up: 600.0,
            avail_prior_down: 600.0,
        }
    }
}

/// Prior-smoothed Beta score: `(succ + 1) / (succ + fail + 2)` — Laplace's
/// rule of succession. Unobserved evidence gives 0.5 (neutral), and no
/// finite success count ever reaches 1.0, so a fresh peer cannot outrank a
/// proven one. This is the function the redundancy layer's `Reputation`
/// routes through.
pub fn beta_score(successes: f64, failures: f64) -> f64 {
    (successes + 1.0) / (successes + failures + 2.0)
}

/// Learned behaviour of one worker.
#[derive(Clone, Debug)]
pub struct PeerProfile {
    /// EWMA seconds-per-gigacycle; `None` until the first completion.
    secs_per_gc: Option<f64>,
    /// Advertised seconds-per-gigacycle (1 / advertised GHz): the estimate
    /// used before any completion is observed.
    advertised_secs_per_gc: f64,
    /// Jobs this worker completed (raw count, undecayed).
    pub completions: u64,
    /// Jobs interrupted on this worker by churn (raw count, undecayed).
    pub abandons: u64,
    /// Replica votes on the winning side (raw count, undecayed).
    pub votes_agreed: u64,
    /// Replica votes against the accepted result (raw count, undecayed).
    pub votes_dissented: u64,
    /// Decayed weighted success evidence.
    succ: f64,
    /// Decayed weighted failure evidence.
    fail: f64,
    /// Accumulated observed up-time.
    up: Duration,
    /// Accumulated observed down-time.
    down: Duration,
    /// When the current up/down stretch began.
    last_change: SimTime,
    /// Whether the peer is currently up.
    is_up: bool,
}

impl PeerProfile {
    fn new(advertised_cpu_ghz: f64, up_at_start: bool) -> Self {
        debug_assert!(advertised_cpu_ghz > 0.0);
        PeerProfile {
            secs_per_gc: None,
            advertised_secs_per_gc: 1.0 / advertised_cpu_ghz,
            completions: 0,
            abandons: 0,
            votes_agreed: 0,
            votes_dissented: 0,
            succ: 0.0,
            fail: 0.0,
            up: Duration::ZERO,
            down: Duration::ZERO,
            last_change: SimTime::ZERO,
            is_up: up_at_start,
        }
    }

    /// Expected runtime of `gigacycles` of work on this peer: learned EWMA
    /// when available, the advertised clock otherwise.
    pub fn expected_runtime(&self, gigacycles: f64) -> Duration {
        let spg = self.secs_per_gc.unwrap_or(self.advertised_secs_per_gc);
        Duration::from_secs_f64(spg * gigacycles.max(0.0))
    }

    /// Has at least one completion fed the runtime estimate?
    pub fn runtime_observed(&self) -> bool {
        self.secs_per_gc.is_some()
    }

    /// The decayed, prior-smoothed trust score in (0, 1).
    pub fn trust(&self, cfg: &TrustConfig) -> f64 {
        (self.succ + cfg.prior_successes)
            / (self.succ + self.fail + cfg.prior_successes + cfg.prior_failures)
    }

    /// Raw (undecayed) count of trust-bearing observations.
    pub fn observations(&self) -> u64 {
        self.completions + self.abandons + self.votes_agreed + self.votes_dissented
    }

    /// Prior-smoothed fraction of observed time this peer was up. The
    /// estimate only folds *closed* stretches in, so it is independent of
    /// query order; the farm closes stretches on every transition.
    pub fn availability(&self, cfg: &TrustConfig) -> f64 {
        let up = self.up.as_secs_f64() + cfg.avail_prior_up;
        let down = self.down.as_secs_f64() + cfg.avail_prior_down;
        up / (up + down)
    }

    fn observe(&mut self, cfg: &TrustConfig, success_w: f64, failure_w: f64) {
        self.succ = self.succ * cfg.decay + success_w;
        self.fail = self.fail * cfg.decay + failure_w;
    }

    fn fold_stretch(&mut self, now: SimTime) {
        let span = now.since(self.last_change.min(now));
        if self.is_up {
            self.up += span;
        } else {
            self.down += span;
        }
        self.last_change = now;
    }
}

/// Profiles for a scheduler's worker set, indexed by worker id.
#[derive(Clone, Debug)]
pub struct ProfileRegistry {
    cfg: TrustConfig,
    profiles: Vec<PeerProfile>,
}

impl ProfileRegistry {
    pub fn new(cfg: TrustConfig) -> Self {
        ProfileRegistry {
            cfg,
            profiles: Vec::new(),
        }
    }

    pub fn config(&self) -> &TrustConfig {
        &self.cfg
    }

    /// Register worker `w` (must be registered in id order) with its
    /// advertised clock and whether it starts up.
    pub fn register(&mut self, w: u32, advertised_cpu_ghz: f64, up_at_start: bool) {
        assert_eq!(w as usize, self.profiles.len(), "register in id order");
        self.profiles
            .push(PeerProfile::new(advertised_cpu_ghz, up_at_start));
    }

    pub fn len(&self) -> usize {
        self.profiles.len()
    }

    pub fn is_empty(&self) -> bool {
        self.profiles.is_empty()
    }

    pub fn get(&self, w: u32) -> &PeerProfile {
        &self.profiles[w as usize]
    }

    /// A completed job: `gigacycles` of work observed to take `took`.
    pub fn record_completion(&mut self, w: u32, gigacycles: f64, took: Duration) {
        let alpha = self.cfg.ewma_alpha;
        let weight = self.cfg.completion_weight;
        let p = &mut self.profiles[w as usize];
        p.completions += 1;
        if gigacycles > 0.0 {
            let spg = took.as_secs_f64() / gigacycles;
            p.secs_per_gc = Some(match p.secs_per_gc {
                None => spg,
                Some(old) => old + alpha * (spg - old),
            });
        }
        let cfg = self.cfg;
        self.profiles[w as usize].observe(&cfg, weight, 0.0);
    }

    /// A job lost to churn while assigned to this worker.
    pub fn record_abandon(&mut self, w: u32) {
        let cfg = self.cfg;
        let p = &mut self.profiles[w as usize];
        p.abandons += 1;
        p.observe(&cfg, 0.0, cfg.abandon_weight);
    }

    /// A replica-vote outcome from the redundancy layer.
    pub fn record_vote(&mut self, w: u32, agreed: bool) {
        let cfg = self.cfg;
        let p = &mut self.profiles[w as usize];
        if agreed {
            p.votes_agreed += 1;
            p.observe(&cfg, cfg.agree_weight, 0.0);
        } else {
            p.votes_dissented += 1;
            p.observe(&cfg, 0.0, cfg.dissent_weight);
        }
    }

    /// The peer transitioned to up at `now`.
    pub fn mark_up(&mut self, w: u32, now: SimTime) {
        let p = &mut self.profiles[w as usize];
        p.fold_stretch(now);
        p.is_up = true;
    }

    /// The peer transitioned to down at `now`.
    pub fn mark_down(&mut self, w: u32, now: SimTime) {
        let p = &mut self.profiles[w as usize];
        p.fold_stretch(now);
        p.is_up = false;
    }

    pub fn trust(&self, w: u32) -> f64 {
        self.profiles[w as usize].trust(&self.cfg)
    }

    pub fn availability(&self, w: u32) -> f64 {
        self.profiles[w as usize].availability(&self.cfg)
    }

    pub fn expected_runtime(&self, w: u32, gigacycles: f64) -> Duration {
        self.profiles[w as usize].expected_runtime(gigacycles)
    }

    /// Is `w` below the blacklist floor (with enough evidence to say so)?
    pub fn blacklisted(&self, w: u32, bl: &crate::BlacklistConfig) -> bool {
        let p = &self.profiles[w as usize];
        p.observations() >= bl.min_observations && p.trust(&self.cfg) < bl.floor
    }

    /// Number of currently blacklisted workers (for gauges).
    pub fn blacklisted_count(&self, bl: &crate::BlacklistConfig) -> u64 {
        (0..self.profiles.len() as u32)
            .filter(|&w| self.blacklisted(w, bl))
            .count() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BlacklistConfig;

    fn registry() -> ProfileRegistry {
        let mut r = ProfileRegistry::new(TrustConfig::default());
        r.register(0, 2.0, true);
        r.register(1, 2.0, true);
        r
    }

    #[test]
    fn beta_score_is_neutral_when_unobserved_and_bounded() {
        assert_eq!(beta_score(0.0, 0.0), 0.5);
        assert!(beta_score(1000.0, 0.0) < 1.0);
        assert!(beta_score(0.0, 1000.0) > 0.0);
        assert!(beta_score(10.0, 0.0) > beta_score(0.0, 0.0));
        assert!(beta_score(0.0, 10.0) < beta_score(0.0, 0.0));
    }

    #[test]
    fn fresh_peer_cannot_outrank_proven_honest_one() {
        let mut r = registry();
        for _ in 0..10 {
            r.record_vote(0, true);
        }
        assert!(r.trust(0) > r.trust(1), "{} vs {}", r.trust(0), r.trust(1));
        assert_eq!(r.trust(1), 0.5);
    }

    #[test]
    fn expected_runtime_starts_at_advert_then_tracks_observations() {
        let mut r = registry();
        // Advertised 2 GHz: 100 Gc should take 50 s before any observation.
        assert_eq!(r.expected_runtime(0, 100.0), Duration::from_secs_f64(50.0));
        // The worker is actually half as fast: 100 Gc takes 100 s.
        for _ in 0..30 {
            r.record_completion(0, 100.0, Duration::from_secs(100));
        }
        let est = r.expected_runtime(0, 100.0).as_secs_f64();
        assert!((est - 100.0).abs() < 1.0, "estimate {est}");
        // The other worker's estimate is untouched.
        assert_eq!(r.expected_runtime(1, 100.0), Duration::from_secs_f64(50.0));
    }

    #[test]
    fn dissent_costs_more_trust_than_agreement_earns() {
        let mut r = registry();
        r.record_vote(0, true);
        r.record_vote(0, false);
        assert!(
            r.trust(0) < 0.5,
            "one agree + one dissent must net negative: {}",
            r.trust(0)
        );
    }

    #[test]
    fn abandons_erode_trust_and_completions_rebuild_it() {
        let mut r = registry();
        for _ in 0..5 {
            r.record_abandon(0);
        }
        let low = r.trust(0);
        assert!(low < 0.5, "{low}");
        for _ in 0..20 {
            r.record_completion(0, 10.0, Duration::from_secs(5));
        }
        assert!(r.trust(0) > low);
    }

    #[test]
    fn decay_lets_old_sins_fade() {
        let cfg = TrustConfig {
            decay: 0.5, // aggressive decay to make the effect visible
            ..TrustConfig::default()
        };
        let mut r = ProfileRegistry::new(cfg);
        r.register(0, 2.0, true);
        for _ in 0..5 {
            r.record_vote(0, false);
        }
        let condemned = r.trust(0);
        for _ in 0..10 {
            r.record_vote(0, true);
        }
        assert!(
            r.trust(0) > 0.7,
            "redemption after decay: {} from {condemned}",
            r.trust(0)
        );
    }

    #[test]
    fn availability_tracks_observed_up_down_stretches() {
        let mut r = registry();
        // Starts up at t=0; down at 1000 s; up again at 3000 s; down 4000 s.
        r.mark_down(0, SimTime::from_secs(1_000));
        r.mark_up(0, SimTime::from_secs(3_000));
        r.mark_down(0, SimTime::from_secs(4_000));
        // 2000 s up, 2000 s down, plus the symmetric prior: 0.5.
        let a = r.availability(0);
        assert!((a - 0.5).abs() < 1e-9, "{a}");
        // An always-up stretch pulls the estimate above the unobserved one.
        r.mark_up(1, SimTime::ZERO);
        r.mark_down(1, SimTime::from_secs(100_000));
        assert!(r.availability(1) > 0.9);
    }

    #[test]
    fn blacklist_requires_evidence_and_low_trust() {
        let bl = BlacklistConfig {
            floor: 0.25,
            min_observations: 4,
        };
        let mut r = registry();
        assert!(!r.blacklisted(0, &bl), "fresh peers are never blacklisted");
        for _ in 0..2 {
            r.record_vote(0, false);
        }
        assert!(!r.blacklisted(0, &bl), "not enough observations yet");
        for _ in 0..2 {
            r.record_vote(0, false);
        }
        assert!(r.blacklisted(0, &bl), "trust {}", r.trust(0));
        assert_eq!(r.blacklisted_count(&bl), 1);
    }
}
