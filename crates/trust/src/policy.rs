//! Pluggable worker-selection policies for the farm scheduler.
//!
//! The scheduler builds the list of *eligible idle* workers for a job (in
//! worker-id order, so every policy is deterministic) and asks the policy
//! to pick one. Three strategies ship:
//!
//! * [`FirstIdle`] — the legacy memoryless behaviour: highest advertised
//!   clock wins, ties broken by worker id. What the paper's controller
//!   does with its "machine type, speed, memory" adverts (§3.7).
//! * [`FastestProfiled`] — minimise the *learned* expected runtime
//!   ([`ProfileRegistry`] EWMA), falling back to the advertised clock for
//!   unobserved peers.
//! * [`ReliabilityWeighted`] — discount learned speed by trust and
//!   availability, preferring the worker with the best expected *useful*
//!   throughput; flaky or dishonest peers sink in the ranking even when
//!   their clocks are fast.

use std::fmt;
use std::sync::Arc;

use crate::profile::ProfileRegistry;

/// One eligible idle worker, as the scheduler presents it to a policy.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Candidate {
    /// Worker id (index into the scheduler's worker table and the
    /// [`ProfileRegistry`]).
    pub worker: u32,
    /// Advertised CPU clock in GHz.
    pub cpu_ghz: f64,
}

/// A worker-selection strategy. Implementations must be deterministic:
/// same inputs, same choice.
pub trait SchedulingPolicy: Send + Sync {
    /// Policy name for configs, reports and metrics labels.
    fn name(&self) -> &'static str;

    /// Pick the index *into `candidates`* of the worker to assign a job of
    /// `work_gigacycles` to, or `None` to leave the job queued.
    /// `candidates` is non-empty and sorted by worker id.
    fn choose(
        &self,
        work_gigacycles: f64,
        candidates: &[Candidate],
        profiles: &ProfileRegistry,
    ) -> Option<usize>;
}

/// Legacy behaviour: fastest advertised clock among the idle workers,
/// first-listed on ties. History is ignored entirely.
#[derive(Clone, Copy, Debug, Default)]
pub struct FirstIdle;

impl SchedulingPolicy for FirstIdle {
    fn name(&self) -> &'static str {
        "first-idle"
    }

    fn choose(
        &self,
        _work_gigacycles: f64,
        candidates: &[Candidate],
        _profiles: &ProfileRegistry,
    ) -> Option<usize> {
        let mut best: Option<usize> = None;
        for (i, c) in candidates.iter().enumerate() {
            let better = match best {
                None => true,
                Some(b) => c.cpu_ghz > candidates[b].cpu_ghz,
            };
            if better {
                best = Some(i);
            }
        }
        best
    }
}

/// Minimise the profiled expected runtime.
#[derive(Clone, Copy, Debug, Default)]
pub struct FastestProfiled;

impl SchedulingPolicy for FastestProfiled {
    fn name(&self) -> &'static str {
        "fastest-profiled"
    }

    fn choose(
        &self,
        work_gigacycles: f64,
        candidates: &[Candidate],
        profiles: &ProfileRegistry,
    ) -> Option<usize> {
        let mut best: Option<(usize, u64)> = None;
        for (i, c) in candidates.iter().enumerate() {
            let est = profiles
                .expected_runtime(c.worker, work_gigacycles)
                .as_micros();
            if best.is_none_or(|(_, b)| est < b) {
                best = Some((i, est));
            }
        }
        best.map(|(i, _)| i)
    }
}

/// Maximise trust- and availability-discounted speed: the score of a
/// candidate is `trust × availability / expected_runtime`, i.e. expected
/// useful work per second, where "useful" means the peer stays up and its
/// result survives verification.
#[derive(Clone, Copy, Debug, Default)]
pub struct ReliabilityWeighted;

impl SchedulingPolicy for ReliabilityWeighted {
    fn name(&self) -> &'static str {
        "reliability-weighted"
    }

    fn choose(
        &self,
        work_gigacycles: f64,
        candidates: &[Candidate],
        profiles: &ProfileRegistry,
    ) -> Option<usize> {
        let mut best: Option<(usize, f64)> = None;
        for (i, c) in candidates.iter().enumerate() {
            let secs = profiles
                .expected_runtime(c.worker, work_gigacycles)
                .as_secs_f64()
                .max(1e-9);
            let score = profiles.trust(c.worker) * profiles.availability(c.worker) / secs;
            // Strict > keeps the first-listed candidate on exact ties,
            // mirroring FirstIdle's deterministic tie-break.
            if best.is_none_or(|(_, b)| score > b) {
                best = Some((i, score));
            }
        }
        best.map(|(i, _)| i)
    }
}

/// Cloneable, debuggable handle around a policy object, so scheduler
/// configs stay plain-old-data.
#[derive(Clone)]
pub struct PolicyHandle(Arc<dyn SchedulingPolicy>);

impl PolicyHandle {
    pub fn new(policy: impl SchedulingPolicy + 'static) -> Self {
        PolicyHandle(Arc::new(policy))
    }

    pub fn first_idle() -> Self {
        PolicyHandle::new(FirstIdle)
    }

    pub fn fastest_profiled() -> Self {
        PolicyHandle::new(FastestProfiled)
    }

    pub fn reliability_weighted() -> Self {
        PolicyHandle::new(ReliabilityWeighted)
    }

    pub fn name(&self) -> &'static str {
        self.0.name()
    }

    pub fn choose(
        &self,
        work_gigacycles: f64,
        candidates: &[Candidate],
        profiles: &ProfileRegistry,
    ) -> Option<usize> {
        self.0.choose(work_gigacycles, candidates, profiles)
    }
}

impl fmt::Debug for PolicyHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PolicyHandle({})", self.0.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::TrustConfig;
    use netsim::{Duration, SimTime};

    fn registry(clocks: &[f64]) -> ProfileRegistry {
        let mut r = ProfileRegistry::new(TrustConfig::default());
        for (i, &ghz) in clocks.iter().enumerate() {
            r.register(i as u32, ghz, true);
        }
        r
    }

    fn candidates(clocks: &[f64]) -> Vec<Candidate> {
        clocks
            .iter()
            .enumerate()
            .map(|(i, &cpu_ghz)| Candidate {
                worker: i as u32,
                cpu_ghz,
            })
            .collect()
    }

    #[test]
    fn first_idle_picks_highest_advertised_clock_first_on_ties() {
        let r = registry(&[2.0, 3.0, 3.0, 1.0]);
        let cands = candidates(&[2.0, 3.0, 3.0, 1.0]);
        assert_eq!(FirstIdle.choose(10.0, &cands, &r), Some(1));
    }

    #[test]
    fn fastest_profiled_prefers_learned_speed_over_advert() {
        let mut r = registry(&[3.0, 2.0]);
        let cands = candidates(&[3.0, 2.0]);
        // Unobserved: the 3 GHz advert wins.
        assert_eq!(FastestProfiled.choose(100.0, &cands, &r), Some(0));
        // Worker 0 turns out to deliver only 1 Gc/s.
        for _ in 0..20 {
            r.record_completion(0, 100.0, Duration::from_secs(100));
        }
        assert_eq!(FastestProfiled.choose(100.0, &cands, &r), Some(1));
    }

    #[test]
    fn reliability_weighted_demotes_flaky_and_dishonest_peers() {
        let mut r = registry(&[3.0, 2.0]);
        let cands = candidates(&[3.0, 2.0]);
        // Equal (neutral) history: the faster advert wins.
        assert_eq!(ReliabilityWeighted.choose(100.0, &cands, &r), Some(0));
        // Worker 0 keeps abandoning jobs and dissenting in votes.
        for _ in 0..6 {
            r.record_abandon(0);
            r.record_vote(0, false);
        }
        for _ in 0..6 {
            r.record_completion(1, 100.0, Duration::from_secs(50));
            r.record_vote(1, true);
        }
        assert_eq!(ReliabilityWeighted.choose(100.0, &cands, &r), Some(1));
    }

    #[test]
    fn reliability_weighted_uses_availability() {
        let mut r = registry(&[2.0, 2.0]);
        let cands = candidates(&[2.0, 2.0]);
        // Worker 0 was observed down for most of a long stretch.
        r.mark_down(0, SimTime::ZERO);
        r.mark_up(0, SimTime::from_secs(90_000));
        r.mark_down(1, SimTime::from_secs(90_000)); // long up stretch first
        r.mark_up(1, SimTime::from_secs(91_000));
        assert_eq!(ReliabilityWeighted.choose(10.0, &cands, &r), Some(1));
    }

    #[test]
    fn handle_is_cloneable_and_debuggable() {
        let h = PolicyHandle::reliability_weighted();
        let h2 = h.clone();
        assert_eq!(h2.name(), "reliability-weighted");
        assert_eq!(format!("{h:?}"), "PolicyHandle(reliability-weighted)");
    }

    #[test]
    fn empty_candidate_list_yields_none() {
        let r = registry(&[]);
        assert_eq!(FirstIdle.choose(1.0, &[], &r), None);
        assert_eq!(FastestProfiled.choose(1.0, &[], &r), None);
        assert_eq!(ReliabilityWeighted.choose(1.0, &[], &r), None);
    }
}
