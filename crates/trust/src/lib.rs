//! `triana-trust` — peer profiling, reputation, and adaptive scheduling.
//!
//! The paper leaves volunteer trust as an open problem (§3.7: a user "may
//! agree to contribute their resources" but nothing stops them returning
//! wrong results or vanishing mid-job) and sizes the Case 2 peer pool by
//! *guessing* how unreliable volunteers are ("connection lost, user
//! intervenes, computational bandwidth not reached"). This crate replaces
//! the guess with online learning:
//!
//! * [`PeerProfile`] / [`ProfileRegistry`] — per-worker EWMA runtime
//!   estimates, completion/abandon counts, an availability estimator, and a
//!   decayed trust score with a Bayesian prior, so a never-observed peer is
//!   *neutral* (0.5), not maximally trusted;
//! * [`SchedulingPolicy`] — a pluggable worker-selection strategy for the
//!   farm scheduler, with [`FirstIdle`] (the memoryless legacy behaviour),
//!   [`FastestProfiled`] (minimise learned expected runtime) and
//!   [`ReliabilityWeighted`] (discount learned speed by trust and
//!   availability) implementations;
//! * [`GridTrustConfig`] — the bundle the grid layer plugs into its
//!   scheduler: profile parameters, the policy, straggler speculation and
//!   the blacklist floor.
//!
//! Everything here is deterministic: no wall clock, no hidden RNG; the
//! scores are pure functions of the observation stream.

pub mod policy;
pub mod profile;

pub use policy::{
    Candidate, FastestProfiled, FirstIdle, PolicyHandle, ReliabilityWeighted, SchedulingPolicy,
};
pub use profile::{beta_score, PeerProfile, ProfileRegistry, TrustConfig};

use netsim::Duration;

/// Straggler-mitigation parameters: when a job has been running on a worker
/// for more than `factor` times its profiled expected runtime, the
/// scheduler speculatively re-dispatches it to a second worker; the first
/// completion wins and the loser's compute is metered as waste.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct StragglerConfig {
    /// Multiple of the profiled expected runtime before speculating.
    pub factor: f64,
    /// Never speculate before this much elapsed runtime (guards tiny jobs
    /// whose estimate noise would trigger useless duplicates).
    pub min_runtime: Duration,
}

impl Default for StragglerConfig {
    fn default() -> Self {
        StragglerConfig {
            factor: 2.0,
            min_runtime: Duration::from_secs(5),
        }
    }
}

/// Blacklist floor: workers whose trust falls below `floor` after at least
/// `min_observations` recorded outcomes stop receiving work entirely.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BlacklistConfig {
    pub floor: f64,
    pub min_observations: u64,
}

impl Default for BlacklistConfig {
    fn default() -> Self {
        BlacklistConfig {
            floor: 0.25,
            min_observations: 4,
        }
    }
}

/// Everything the grid scheduler needs to schedule on learned behaviour.
#[derive(Clone, Debug)]
pub struct GridTrustConfig {
    /// Profile/score parameters.
    pub profile: TrustConfig,
    /// Worker-selection policy.
    pub policy: PolicyHandle,
    /// Speculative re-dispatch of stragglers; `None` disables.
    pub straggler: Option<StragglerConfig>,
    /// Exclusion of distrusted workers; `None` disables.
    pub blacklist: Option<BlacklistConfig>,
}

impl Default for GridTrustConfig {
    fn default() -> Self {
        GridTrustConfig {
            profile: TrustConfig::default(),
            policy: PolicyHandle::first_idle(),
            straggler: None,
            blacklist: None,
        }
    }
}

/// Orchestrator eligibility: how suitable a peer is to *host replicated
/// scheduler state* and stand for controller election. Decentralised
/// orchestration (Jaradat et al.) partitions the task graph across the
/// peers best placed to coordinate it; we score a candidate by the same
/// learned signals the farm scheduler uses for workers — trust and
/// availability — weighted by its advertised clock (a faster orchestrator
/// host drains its uplink and bookkeeping faster).
///
/// The score is a pure function of its inputs, so two runs that observed
/// the same history elect the same orchestrators. Clock is normalised
/// against a 2 GHz reference so typical scores stay in `[0, ~2]`.
pub fn orchestrator_eligibility(cpu_ghz: f64, trust: f64, availability: f64) -> f64 {
    let clock = (cpu_ghz / 2.0).max(0.0);
    clock * trust.clamp(0.0, 1.0) * availability.clamp(0.0, 1.0)
}

impl GridTrustConfig {
    /// The full adaptive bundle: reliability-weighted selection, straggler
    /// speculation, and the blacklist floor, all at default parameters.
    pub fn adaptive() -> Self {
        GridTrustConfig {
            profile: TrustConfig::default(),
            policy: PolicyHandle::reliability_weighted(),
            straggler: Some(StragglerConfig::default()),
            blacklist: Some(BlacklistConfig::default()),
        }
    }

    /// Replace the policy, keeping the other knobs.
    pub fn with_policy(mut self, policy: PolicyHandle) -> Self {
        self.policy = policy;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let cfg = GridTrustConfig::default();
        assert_eq!(cfg.policy.name(), "first-idle");
        assert!(cfg.straggler.is_none());
        assert!(cfg.blacklist.is_none());
        let adaptive = GridTrustConfig::adaptive();
        assert_eq!(adaptive.policy.name(), "reliability-weighted");
        assert!(adaptive.straggler.is_some());
        assert!(adaptive.blacklist.is_some());
    }

    #[test]
    fn eligibility_orders_by_clock_trust_and_availability() {
        let fast_trusted = orchestrator_eligibility(2.0, 0.9, 1.0);
        let fast_shady = orchestrator_eligibility(2.0, 0.3, 1.0);
        let slow_trusted = orchestrator_eligibility(1.0, 0.9, 1.0);
        let flaky = orchestrator_eligibility(2.0, 0.9, 0.5);
        assert!(fast_trusted > fast_shady);
        assert!(fast_trusted > slow_trusted);
        assert!(fast_trusted > flaky);
        // Out-of-range inputs clamp instead of producing nonsense.
        assert_eq!(orchestrator_eligibility(2.0, 2.0, 1.0), 1.0);
        assert_eq!(orchestrator_eligibility(-1.0, 0.9, 1.0), 0.0);
    }

    #[test]
    fn with_policy_swaps_only_the_policy() {
        let cfg = GridTrustConfig::adaptive().with_policy(PolicyHandle::fastest_profiled());
        assert_eq!(cfg.policy.name(), "fastest-profiled");
        assert!(cfg.straggler.is_some());
    }
}
