//! Integration tests spanning crates: workflows authored as XML, executed
//! by the engine, distributed over the simulated Consumer Grid.

use consumer_grid::core::data::TrianaData;
use consumer_grid::core::unit::Params;
use consumer_grid::core::{run_graph, DistributionPolicy, EngineConfig, TaskGraph};
use consumer_grid::taskgraph_xml::{from_xml, to_xml};
use consumer_grid::toolbox::signal::spectrum_snr;
use consumer_grid::toolbox::standard_registry;

/// The exact workflow of Code Segment 1 — Wave → [Gaussian, FFT] grouped →
/// Grapher — authored directly as XML, then validated, type-checked and
/// executed.
#[test]
fn code_segment_1_xml_executes() {
    let xml = r#"<?xml version="1.0"?>
<taskgraph name="GroupTest">
  <task name="wave" type="Wave" in="0" out="1">
    <param name="freq" value="64"/>
  </task>
  <task name="gaussian" type="GaussianNoise" in="1" out="1"/>
  <task name="fft" type="PowerSpectrum" in="1" out="1"/>
  <task name="grapher" type="Grapher" in="1" out="1"/>
  <group name="GroupTask" policy="parallel">
    <member task="gaussian"/>
    <member task="fft"/>
  </group>
  <connection from="wave:0" to="gaussian:0"/>
  <connection from="gaussian:0" to="fft:0"/>
  <connection from="fft:0" to="grapher:0"/>
</taskgraph>
"#;
    let g = from_xml(xml).expect("parse Code Segment 1");
    let reg = standard_registry();
    g.validate().expect("valid");
    g.typecheck(&reg).expect("well typed");
    assert_eq!(g.groups.len(), 1);
    assert_eq!(g.groups[0].policy, DistributionPolicy::Parallel);
    let (incoming, outgoing) = g.group_boundary(g.groups[0].id);
    assert_eq!(incoming.len(), 1, "Wave feeds the group");
    assert_eq!(outgoing.len(), 1, "the group feeds the Grapher");

    let r = run_graph(
        &g,
        &reg,
        &EngineConfig {
            iterations: 5,
            threaded: true,
        },
    )
    .expect("executes");
    assert_eq!(r.of(&g, "grapher").len(), 5);
    for tok in r.of(&g, "grapher") {
        assert!(matches!(tok, TrianaData::Spectrum { .. }));
    }
}

/// Round-trip: build programmatically → XML → parse → run. The parsed
/// graph must produce exactly the same results as the original (the
/// "middleware independence" §3.3 asks of the representation).
#[test]
fn xml_round_trip_preserves_execution_results() {
    let reg = standard_registry();
    let mut g = TaskGraph::new("roundtrip");
    let wave = g
        .add_task(
            &reg,
            "Wave",
            "wave",
            Params::from([
                ("freq".to_string(), "32".to_string()),
                ("samples".to_string(), "256".to_string()),
            ]),
        )
        .expect("build");
    let ps = g
        .add_task(&reg, "PowerSpectrum", "pspec", Params::new())
        .expect("build");
    g.connect(wave, 0, ps, 0).expect("wire");

    let parsed = from_xml(&to_xml(&g)).expect("round trip");
    let cfg = EngineConfig {
        iterations: 3,
        threaded: false,
    };
    let direct = run_graph(&g, &reg, &cfg).expect("run original");
    let via_xml = run_graph(&parsed, &reg, &cfg).expect("run parsed");
    assert_eq!(direct.outputs, via_xml.outputs);
}

/// Threaded and sequential executors agree on a stateful, fanned-out
/// signal workflow (20 iterations of Figure 1 plus a parallel branch).
#[test]
fn executors_agree_on_fanned_out_figure1() {
    let reg = standard_registry();
    let mut g = TaskGraph::new("fan");
    let wave = g
        .add_task(
            &reg,
            "Wave",
            "wave",
            Params::from([("samples".to_string(), "512".to_string())]),
        )
        .expect("build");
    let noise = g
        .add_task(
            &reg,
            "GaussianNoise",
            "noise",
            Params::from([("seed".to_string(), "77".to_string())]),
        )
        .expect("build");
    let ps1 = g
        .add_task(&reg, "PowerSpectrum", "ps_noisy", Params::new())
        .expect("build");
    let ps2 = g
        .add_task(&reg, "PowerSpectrum", "ps_clean", Params::new())
        .expect("build");
    let acc = g
        .add_task(&reg, "AccumStat", "accum", Params::new())
        .expect("build");
    g.connect(wave, 0, noise, 0).expect("wire");
    g.connect(noise, 0, ps1, 0).expect("wire");
    g.connect(wave, 0, ps2, 0).expect("wire");
    g.connect(ps1, 0, acc, 0).expect("wire");

    let seq = run_graph(
        &g,
        &reg,
        &EngineConfig {
            iterations: 20,
            threaded: false,
        },
    )
    .expect("sequential");
    let par = run_graph(
        &g,
        &reg,
        &EngineConfig {
            iterations: 20,
            threaded: true,
        },
    )
    .expect("threaded");
    assert_eq!(seq.outputs, par.outputs);
}

/// The Figure 2 claim holds through the full public API path (facade crate
/// → toolbox → engine): averaging lifts the buried tone above the noise.
#[test]
fn figure2_through_public_api() {
    let reg = standard_registry();
    let mut g = TaskGraph::new("fig2");
    let wave = g
        .add_task(
            &reg,
            "Wave",
            "wave",
            Params::from([("amplitude".to_string(), "0.3".to_string())]),
        )
        .expect("build");
    let noise = g
        .add_task(
            &reg,
            "GaussianNoise",
            "noise",
            Params::from([("sigma".to_string(), "2".to_string())]),
        )
        .expect("build");
    let ps = g
        .add_task(&reg, "PowerSpectrum", "pspec", Params::new())
        .expect("build");
    let acc = g
        .add_task(&reg, "AccumStat", "accum", Params::new())
        .expect("build");
    g.connect(wave, 0, noise, 0).expect("wire");
    g.connect(noise, 0, ps, 0).expect("wire");
    g.connect(ps, 0, acc, 0).expect("wire");
    let snr_at = |iters: usize| {
        let r = run_graph(
            &g,
            &reg,
            &EngineConfig {
                iterations: iters,
                threaded: true,
            },
        )
        .expect("run");
        match r.last_of(&g, "accum") {
            Some(TrianaData::Spectrum { df_hz, power }) => spectrum_snr(power, *df_hz, 64.0),
            other => panic!("unexpected {other:?}"),
        }
    };
    assert!(snr_at(20) > snr_at(1) * 2.0);
}

/// Unknown units are caught by validation before execution, with the
/// offending name in the error.
#[test]
fn unknown_unit_rejected_before_run() {
    let xml = r#"<taskgraph name="bad">
  <task name="mystery" type="FluxCapacitor" in="0" out="1"/>
</taskgraph>"#;
    let g = from_xml(xml).expect("parses structurally");
    let reg = standard_registry();
    let err = g.typecheck(&reg).expect_err("must be rejected");
    assert!(err.to_string().contains("FluxCapacitor"));
}
