//! End-to-end tests of the `triana` CLI binary.

use std::process::Command;

fn triana(args: &[&str]) -> (bool, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_triana"))
        .args(args)
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .output()
        .expect("binary runs");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn units_lists_the_toolbox() {
    let (ok, stdout, _) = triana(&["units"]);
    assert!(ok);
    assert!(stdout.contains("27 toolbox units"));
    assert!(stdout.contains("Wave"));
    assert!(stdout.contains("MatchedFilter"));
}

#[test]
fn validate_accepts_shipped_samples() {
    for wf in [
        "workflows/figure1.xml",
        "workflows/group_test.xml",
        "workflows/signal_conditioning.xml",
        "workflows/inspiral.xml",
        "workflows/figure1.wsfl",
    ] {
        let (ok, stdout, stderr) = triana(&["validate", wf]);
        assert!(ok, "{wf}: {stderr}");
        assert!(stdout.starts_with("ok:"), "{wf}: {stdout}");
    }
}

#[test]
fn run_executes_figure1() {
    let (ok, stdout, stderr) = triana(&["run", "workflows/figure1.xml", "-n", "3"]);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("grapher:0"));
    assert!(stdout.contains("3 token(s)"));
    assert!(stdout.contains("Spectrum"));
}

#[test]
fn run_with_metrics_emits_deterministic_json() {
    let dir = std::env::temp_dir().join("triana_cli_metrics");
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let snapshots: Vec<String> = (0..2)
        .map(|i| {
            let out = dir.join(format!("m{i}.json"));
            let out_str = out.to_str().expect("utf8 path");
            let (ok, stdout, stderr) = triana(&[
                "run",
                "workflows/figure1.xml",
                "-n",
                "2",
                "--metrics",
                out_str,
            ]);
            assert!(ok, "{stderr}");
            assert!(stdout.contains("grapher:0"));
            assert!(stderr.contains("metrics written"), "{stderr}");
            std::fs::read_to_string(&out).expect("metrics file written")
        })
        .collect();
    assert_eq!(
        snapshots[0], snapshots[1],
        "same-seed runs must be byte-identical"
    );

    let doc = consumer_grid::obs::json::parse(&snapshots[0]).expect("valid JSON");
    let counters = doc.get("counters").expect("counters section");
    let fires = counters
        .get("engine.fire.wave")
        .and_then(|v| v.as_f64())
        .expect("engine fire counter present");
    assert_eq!(fires, 2.0, "wave fires once per iteration");
    let runs = counters
        .get("engine.runs")
        .and_then(|v| v.as_f64())
        .expect("engine.runs present");
    assert_eq!(runs, 1.0);
    assert!(
        counters.get("xml.parses").is_some(),
        "parse counters present"
    );
}

#[test]
fn run_without_metrics_writes_nothing_extra() {
    let (ok, _, stderr) = triana(&["run", "workflows/figure1.xml"]);
    assert!(ok, "{stderr}");
    assert!(!stderr.contains("metrics written"));
    // --metrics with no file argument is a usage error.
    let (ok, _, stderr) = triana(&["run", "workflows/figure1.xml", "--metrics"]);
    assert!(!ok);
    assert!(stderr.contains("usage"));
}

#[test]
fn convert_produces_parseable_dialects() {
    for dialect in ["xml", "wsfl", "bpel", "pnml"] {
        let (ok, stdout, stderr) = triana(&["convert", "workflows/group_test.xml", dialect]);
        assert!(ok, "{dialect}: {stderr}");
        assert!(stdout.starts_with("<?xml"), "{dialect}");
        consumer_grid::taskgraph_xml::parse(&stdout).expect("well-formed output");
    }
}

#[test]
fn bad_inputs_fail_cleanly() {
    let (ok, _, stderr) = triana(&["validate", "no/such/file.xml"]);
    assert!(!ok);
    assert!(stderr.contains("parse error"));
    let (ok, _, stderr) = triana(&["frobnicate"]);
    assert!(!ok);
    assert!(stderr.contains("usage"));
    let (ok, _, _) = triana(&["convert", "workflows/figure1.xml", "yaml"]);
    assert!(!ok);
}

#[test]
fn run_reports_unit_errors() {
    // A graph referencing a unit the toolbox doesn't have.
    let dir = std::env::temp_dir().join("triana_cli_test");
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let path = dir.join("bad.xml");
    std::fs::write(
        &path,
        "<taskgraph name=\"bad\"><task name=\"x\" type=\"FluxCapacitor\" in=\"0\" out=\"1\"/></taskgraph>",
    )
    .expect("write");
    let (ok, _, stderr) = triana(&["validate", path.to_str().expect("utf8 path")]);
    assert!(!ok);
    assert!(stderr.contains("FluxCapacitor"), "{stderr}");
}
