//! Consumer Grid scenario tests: determinism, churn robustness, discovery
//! + farm composition, and metering/billing across the full stack.

use consumer_grid::core::checkpoint::CheckpointPolicy;
use consumer_grid::core::data::TrianaData;
use consumer_grid::core::grid::exec::execute_group_parallel;
use consumer_grid::core::grid::farm::{run_farm, FarmConfig, FarmScheduler, JobSpec};
use consumer_grid::core::grid::service::{TrianaController, TrianaService};
use consumer_grid::core::grid::{GridWorld, WorkerSetup};
use consumer_grid::core::modules::ModuleKey;
use consumer_grid::core::unit::{Params, Unit};
use consumer_grid::core::{DistributionPolicy, TaskGraph};
use consumer_grid::netsim::avail::{AvailabilityModel, AvailabilityTrace};
use consumer_grid::netsim::{Duration, HostSpec, Pcg32, SimTime};
use consumer_grid::p2p::DiscoveryMode;
use consumer_grid::resources::account::VirtualAccount;
use consumer_grid::resources::trust::ResourcePolicy;
use consumer_grid::toolbox::galaxy::{render_column_density, synthesize_snapshots, View};
use consumer_grid::toolbox::standard_registry;
use consumer_grid::toolbox::tvm_unit::TvmUnit;
use consumer_grid::tvm::asm::assemble;
use consumer_grid::tvm::SandboxPolicy;

fn churny_farm(seed: u64, workers: usize) -> (GridWorld, FarmScheduler) {
    let horizon = SimTime::from_secs(7 * 86_400);
    let mut world = GridWorld::new(seed, DiscoveryMode::Flooding);
    let (ctrl, _) = world.add_peer(HostSpec::lan_workstation());
    let mut farm = FarmScheduler::new(
        &world,
        ctrl,
        FarmConfig {
            checkpoint: Some(CheckpointPolicy::every(Duration::from_secs(600), 100_000)),
            swarm: None,
            trust: None,
        },
    );
    let mut rng = Pcg32::new(seed, 0x5CE);
    for i in 0..workers {
        let spec = HostSpec::sample_consumer(&mut rng);
        let (peer, _) = world.add_peer(spec.clone());
        let model = AvailabilityModel::Exponential {
            mean_up: Duration::from_secs(2 * 3600),
            mean_down: Duration::from_secs(3600),
        };
        let mut r = rng.split(i as u64 + 100);
        farm.add_worker(
            &mut world,
            WorkerSetup {
                peer,
                spec,
                trace: model.trace(horizon, &mut r),
                cache_bytes: 1 << 20,
            },
        );
    }
    world.sim.set_horizon(horizon);
    (world, farm)
}

fn submit_jobs(world: &mut GridWorld, farm: &mut FarmScheduler, n: usize) {
    for _ in 0..n {
        farm.submit(
            world,
            JobSpec {
                work_gigacycles: 1_000.0, // ~10 min on a 2 GHz host
                input_bytes: 200_000,
                output_bytes: 50_000,
                module: None,
            },
        );
    }
}

/// Identical seeds produce bit-identical schedules and statistics — the
/// whole stack (RNG, event order, churn traces, link queues) is
/// deterministic.
#[test]
fn simulation_is_deterministic() {
    let run = || {
        let (mut world, mut farm) = churny_farm(4242, 12);
        submit_jobs(&mut world, &mut farm, 30);
        run_farm(&mut world, &mut farm);
        (
            farm.stats(),
            world.net.stats(),
            world.sim.processed(),
            world.now(),
        )
    };
    let a = run();
    let b = run();
    assert_eq!(a.0, b.0);
    assert_eq!(a.1, b.1);
    assert_eq!(a.2, b.2);
    assert_eq!(a.3, b.3);
}

/// Under heavy churn with checkpointing, no job is ever lost: everything
/// submitted eventually completes (within a generous horizon), despite
/// many migrations.
#[test]
fn churn_never_loses_jobs() {
    let (mut world, mut farm) = churny_farm(7, 16);
    submit_jobs(&mut world, &mut farm, 40);
    run_farm(&mut world, &mut farm);
    let s = farm.stats();
    assert_eq!(s.jobs_done, 40, "all jobs complete: {s:?}");
    assert!(
        s.attempts > 40,
        "churn at this rate must force at least some migrations: {s:?}"
    );
}

/// Discovery-driven enrolment composes with the farm: a controller finds
/// capable volunteer peers over the overlay, enrols exactly those as
/// workers, and the farmed jobs land only on them.
#[test]
fn discovery_feeds_the_farm() {
    let mut world = GridWorld::new(99, DiscoveryMode::Flooding);
    let (ctrl_peer, _) = world.add_peer(HostSpec::lan_workstation());
    let mut services = Vec::new();
    let mut rng = Pcg32::new(17, 0);
    for _ in 0..15 {
        let spec = HostSpec::sample_consumer(&mut rng);
        let (p, _) = world.add_peer(spec);
        services.push(TrianaService::new(
            p,
            &[],
            ResourcePolicy::sandbox_default(512),
        ));
    }
    let mut wiring = Pcg32::new(18, 1);
    world.p2p.wire_random(4, &mut wiring);
    for s in &services {
        s.advertise(&mut world, Duration::from_secs(24 * 3600));
    }
    let ctl = TrianaController::new(ctrl_peer, "scientist");
    let enrolled = ctl.enroll_workers(&mut world, 2.0, 6, 10);
    assert!(!enrolled.is_empty());
    for &p in &enrolled {
        let h = world.p2p.host_of(p);
        assert!(world.net.spec(h).cpu_ghz >= 2.0, "capability filter holds");
    }

    let mut farm = FarmScheduler::new(&world, ctrl_peer, FarmConfig::default());
    let horizon = SimTime::from_secs(100_000);
    let wids: Vec<_> = enrolled
        .iter()
        .map(|&peer| {
            let spec = world.net.spec(world.p2p.host_of(peer)).clone();
            farm.add_worker(
                &mut world,
                WorkerSetup {
                    peer,
                    spec,
                    trace: AvailabilityTrace::always(horizon),
                    cache_bytes: 1 << 20,
                },
            )
        })
        .collect();
    for _ in 0..12 {
        farm.submit(
            &mut world,
            JobSpec {
                work_gigacycles: 10.0,
                input_bytes: 10_000,
                output_bytes: 1_000,
                module: None,
            },
        );
    }
    run_farm(&mut world, &mut farm);
    assert!(farm.all_done());
    let total: u64 = wids.iter().map(|&w| farm.worker_jobs_completed(w)).sum();
    assert_eq!(total, 12, "all jobs ran on enrolled peers");
}

/// Full metering path: a TVM module executes under the sandbox on a
/// volunteer's Triana Service and the instruction count lands in the
/// billing ledger under the submitting user's virtual account.
#[test]
fn tvm_execution_is_metered_and_billed() {
    let mut world = GridWorld::new(55, DiscoveryMode::Flooding);
    let (_ctrl, _) = world.add_peer(HostSpec::lan_workstation());
    let (vol_peer, _) = world.add_peer(HostSpec::reference_pc());
    let mut volunteer = TrianaService::new(vol_peer, &[], ResourcePolicy::sandbox_default(256));

    // The guest module (shipped as a blob).
    let blob = assemble(
        ".module Sq 1 1 1\n.func main 2\n inlen 0\n store 0\n push 0\n store 1\nloop:\n load 1\n load 0\n lt\n jz end\n load 1\n inget 0\n dup\n mul\n outpush 0\n load 1\n push 1\n add\n store 1\n jmp loop\nend:\n halt\n",
    )
    .expect("assembles")
    .to_blob();
    let mut unit = TvmUnit::from_blob(&blob, SandboxPolicy::standard()).expect("admitted");
    let input = TrianaData::SampleSet {
        rate_hz: 1.0,
        samples: vec![1.0, 2.0, 3.0],
    };
    let bytes_in = input.wire_size();
    let out = unit.process(vec![input]).expect("runs");
    assert_eq!(
        out[0],
        TrianaData::SampleSet {
            rate_hz: 1.0,
            samples: vec![1.0, 4.0, 9.0]
        }
    );
    // The volunteer meters the execution.
    let account = VirtualAccount("alice".into());
    let spec = world.net.spec(world.p2p.host_of(vol_peer)).clone();
    let cpu = spec.exec_time(unit.work_estimate(&[out[0].clone()]));
    volunteer.meter(
        &account,
        world.now(),
        cpu,
        bytes_in,
        out[0].wire_size(),
        unit.last_stats.instructions,
    );
    let totals = volunteer.ledger.totals(&account);
    assert_eq!(totals.jobs, 1);
    assert_eq!(totals.instructions, unit.last_stats.instructions);
    assert!(totals.instructions > 0);
    assert_eq!(totals.bytes_in, bytes_in);
}

/// Certified-library policy: a peer configured for certified-only modules
/// refuses unknown hashes but admits listed ones.
#[test]
fn certified_only_policy_gates_modules() {
    let good = assemble(".module Good 1 0 0\n.func main 0\n halt\n")
        .expect("assembles")
        .to_blob();
    let evil = assemble(".module Evil 1 0 0\n.func main 0\n push 1\n pop\n halt\n")
        .expect("assembles")
        .to_blob();
    let policy = ResourcePolicy::certified([good.hash], 256);
    assert!(policy.admits_module(good.hash));
    assert!(!policy.admits_module(evil.hash));
    // Sandbox-default admits both (the paper's default trust model).
    let open = ResourcePolicy::sandbox_default(256);
    assert!(open.admits_module(evil.hash));
}

/// Module distribution under churn: jobs needing code still complete when
/// the worker pool churns, and the module travels at most once per worker
/// epoch of need.
#[test]
fn module_distribution_survives_churn() {
    let (mut world, mut farm) = churny_farm(21, 10);
    let key = ModuleKey::new("Analysis", 1);
    let blob = assemble(".module Analysis 1 0 0\n.func main 0\n halt\n")
        .expect("assembles")
        .to_blob();
    farm.library.publish(key.clone(), blob);
    for _ in 0..20 {
        farm.submit(
            &mut world,
            JobSpec {
                work_gigacycles: 500.0,
                input_bytes: 100_000,
                output_bytes: 10_000,
                module: Some(key.clone()),
            },
        );
    }
    run_farm(&mut world, &mut farm);
    let s = farm.stats();
    assert_eq!(s.jobs_done, 20, "{s:?}");
}

/// Case 1 through the full distribution stack: the RenderFrame group is
/// planned, farmed over simulated LAN peers, and the returned images are
/// bit-identical to rendering locally — real results, simulated timing.
#[test]
fn case1_group_farmed_with_real_rendering() {
    use consumer_grid::core::data::{DataType, TypeSpec};
    use consumer_grid::core::unit::{Unit, UnitError};

    // A snapshot source so the graph validates (the group entry must have
    // a driver).
    struct SnapshotSource {
        frames: Vec<consumer_grid::core::data::ParticleSet>,
        next: usize,
    }
    impl Unit for SnapshotSource {
        fn type_name(&self) -> &str {
            "SnapshotSource"
        }
        fn input_types(&self) -> Vec<TypeSpec> {
            vec![]
        }
        fn output_types(&self) -> Vec<DataType> {
            vec![DataType::Particles]
        }
        fn process(&mut self, _i: Vec<TrianaData>) -> Result<Vec<TrianaData>, UnitError> {
            let f = self.frames[self.next % self.frames.len()].clone();
            self.next += 1;
            Ok(vec![TrianaData::Particles(f)])
        }
    }
    let mut reg = standard_registry();
    reg.register("SnapshotSource", |_p| {
        Ok(Box::new(SnapshotSource {
            frames: synthesize_snapshots(4, 200, 42),
            next: 0,
        }))
    });

    let mut g = TaskGraph::new("case1");
    let src = g
        .add_task(&reg, "SnapshotSource", "src", Params::new())
        .expect("build");
    let render = g
        .add_task(
            &reg,
            "RenderFrame",
            "render",
            Params::from([("pixels".to_string(), "64".to_string())]),
        )
        .expect("build");
    g.connect(src, 0, render, 0).expect("wire");
    let gid = g
        .add_group("farm", vec![render], DistributionPolicy::Parallel)
        .expect("group");

    let mut world = GridWorld::new(91, DiscoveryMode::Flooding);
    let (ctrl, _) = world.add_peer(HostSpec::lan_workstation());
    let horizon = SimTime::from_secs(1_000_000);
    let workers: Vec<WorkerSetup> = (0..3)
        .map(|_| {
            let spec = HostSpec::lan_workstation();
            let (peer, _) = world.add_peer(spec.clone());
            WorkerSetup {
                peer,
                spec,
                trace: AvailabilityTrace::always(horizon),
                cache_bytes: 1 << 20,
            }
        })
        .collect();
    let snaps = synthesize_snapshots(4, 200, 42);
    let tokens: Vec<TrianaData> = snaps
        .iter()
        .map(|s| TrianaData::Particles(s.clone()))
        .collect();
    let run = execute_group_parallel(
        &mut world,
        &g,
        &reg,
        gid,
        ctrl,
        workers,
        tokens,
        consumer_grid::core::grid::farm::FarmConfig::default(),
    )
    .expect("distributed run");
    assert_eq!(run.tokens.len(), 4);
    let view = View {
        pixels: 64,
        ..View::default()
    };
    for (i, tr) in run.tokens.iter().enumerate() {
        // Distributed result == local render, exactly.
        let (_, _, expected) = render_column_density(&snaps[i], &view);
        match &tr.outputs[0] {
            TrianaData::ImageFrame {
                width,
                height,
                pixels,
            } => {
                assert_eq!((*width, *height), (64, 64));
                assert_eq!(pixels, &expected, "frame {i} differs from local render");
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(tr.latency > Duration::ZERO);
    }
}
