//! The shipped sample workflows in `workflows/` must parse, validate,
//! type-check against the standard toolbox, and execute.

use consumer_grid::core::data::TrianaData;
use consumer_grid::core::{run_graph, EngineConfig, TaskGraph};
use consumer_grid::taskgraph_xml::{from_wsfl, from_xml};
use consumer_grid::toolbox::standard_registry;

fn check_and_run(graph: &TaskGraph, iterations: usize) {
    let reg = standard_registry();
    graph.validate().expect("valid");
    graph.typecheck(&reg).expect("well typed");
    let r = run_graph(
        graph,
        &reg,
        &EngineConfig {
            iterations,
            threaded: true,
        },
    )
    .expect("executes");
    assert!(
        r.outputs.values().any(|v| !v.is_empty()),
        "produced no output tokens"
    );
}

#[test]
fn figure1_sample() {
    let g = from_xml(include_str!("../workflows/figure1.xml")).expect("parses");
    assert_eq!(g.name, "Figure1");
    check_and_run(&g, 5);
}

#[test]
fn group_test_sample_matches_code_segment_1() {
    let g = from_xml(include_str!("../workflows/group_test.xml")).expect("parses");
    assert_eq!(g.groups.len(), 1);
    assert_eq!(g.groups[0].name, "GroupTask");
    assert_eq!(g.groups[0].members.len(), 2);
    check_and_run(&g, 3);
}

#[test]
fn signal_conditioning_sample() {
    let g = from_xml(include_str!("../workflows/signal_conditioning.xml")).expect("parses");
    let reg = standard_registry();
    g.typecheck(&reg).expect("well typed");
    let r = run_graph(
        &g,
        &reg,
        &EngineConfig {
            iterations: 1,
            threaded: true,
        },
    )
    .expect("executes");
    // The dB spectrum peaks (0 dB) at the tone bin: 100 Hz at 1 Hz/bin.
    match r.last_of(&g, "db") {
        Some(TrianaData::Spectrum { df_hz, power }) => {
            let peak_bin = power
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
                .expect("nonempty")
                .0;
            let freq = peak_bin as f64 * df_hz;
            assert!((freq - 100.0).abs() < 2.0, "peak at {freq} Hz");
        }
        other => panic!("unexpected {other:?}"),
    }
    // The stats table reports the right sample count.
    match r.last_of(&g, "stats") {
        Some(TrianaData::Table(t)) => assert_eq!(t.rows[0][0], 2048.0),
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn wsfl_sample() {
    let g = from_wsfl(include_str!("../workflows/figure1.wsfl")).expect("parses");
    assert_eq!(g.tasks.len(), 3);
    check_and_run(&g, 2);
}

#[test]
fn inspiral_sample_detects_injections() {
    let g = from_xml(include_str!("../workflows/inspiral.xml")).expect("parses");
    let reg = standard_registry();
    g.typecheck(&reg).expect("well typed");
    let r = run_graph(
        &g,
        &reg,
        &EngineConfig {
            iterations: 4,
            threaded: true,
        },
    )
    .expect("executes");
    let reports = r.of(&g, "verify");
    assert_eq!(reports.len(), 4);
    for rep in reports {
        match rep {
            TrianaData::Text(t) => assert!(t.starts_with("OK"), "{t}"),
            other => panic!("unexpected {other:?}"),
        }
    }
}
