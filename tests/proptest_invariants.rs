//! Property-based tests on core data structures and invariants, spanning
//! the workspace crates.

use consumer_grid::core::modules::{ModuleCache, ModuleKey};
use consumer_grid::core::unit::Params;
use consumer_grid::core::TaskGraph;
use consumer_grid::netsim::avail::AvailabilityTrace;
use consumer_grid::netsim::stats::Summary;
use consumer_grid::netsim::{Pcg32, SimTime};
use consumer_grid::taskgraph_xml::{from_xml, to_xml};
use consumer_grid::toolbox::fft::{fft, ifft, power_spectrum};
use consumer_grid::tvm;
use consumer_grid::tvm::{Module, SandboxPolicy};
use proptest::prelude::*;

// ---------- netsim ----------

proptest! {
    /// `below(n)` is always in range, for any seed/stream.
    #[test]
    fn pcg_below_in_range(seed in any::<u64>(), stream in any::<u64>(), n in 1u64..1_000_000) {
        let mut rng = Pcg32::new(seed, stream);
        for _ in 0..32 {
            prop_assert!(rng.below(n) < n);
        }
    }

    /// `uniform()` stays in [0, 1).
    #[test]
    fn pcg_uniform_in_unit(seed in any::<u64>()) {
        let mut rng = Pcg32::new(seed, 1);
        for _ in 0..64 {
            let u = rng.uniform();
            prop_assert!((0.0..1.0).contains(&u));
        }
    }

    /// Interval normalization always yields sorted, disjoint, in-horizon
    /// intervals, and point queries agree with them.
    #[test]
    fn availability_normalization_invariants(
        raw in proptest::collection::vec((0u64..10_000, 0u64..10_000), 0..20),
        horizon in 1u64..10_000,
    ) {
        let intervals: Vec<(SimTime, SimTime)> = raw
            .iter()
            .map(|&(a, b)| (SimTime(a.min(b)), SimTime(a.max(b))))
            .collect();
        let tr = AvailabilityTrace::from_intervals(intervals, SimTime(horizon));
        let ivs = tr.intervals();
        for w in ivs.windows(2) {
            prop_assert!(w[0].1 < w[1].0, "disjoint and sorted: {ivs:?}");
        }
        for &(s, e) in ivs {
            prop_assert!(s < e);
            prop_assert!(e <= SimTime(horizon));
            prop_assert!(tr.is_up(s));
            if e < SimTime(horizon) {
                prop_assert!(!tr.is_up(e), "half-open end");
            }
        }
        let f = tr.uptime_fraction();
        prop_assert!((0.0..=1.0).contains(&f));
    }

    /// Welford summary matches a direct two-pass computation.
    #[test]
    fn summary_matches_two_pass(xs in proptest::collection::vec(-1e6f64..1e6, 1..200)) {
        let mut s = Summary::new();
        for &x in &xs {
            s.add(x);
        }
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
        prop_assert!((s.mean() - mean).abs() < 1e-6 * (1.0 + mean.abs()));
        prop_assert!((s.variance() - var).abs() < 1e-4 * (1.0 + var.abs()));
        prop_assert_eq!(s.count(), xs.len() as u64);
    }
}

// ---------- toolbox / fft ----------

proptest! {
    /// The inverse transform undoes the forward transform at any length.
    #[test]
    fn fft_inverts(re in proptest::collection::vec(-100.0f64..100.0, 1..160)) {
        let im = vec![0.0; re.len()];
        let (fr, fi) = fft(&re, &im);
        let (br, bi) = ifft(&fr, &fi);
        for i in 0..re.len() {
            prop_assert!((br[i] - re[i]).abs() < 1e-6, "re[{i}]");
            prop_assert!(bi[i].abs() < 1e-6, "im[{i}]");
        }
    }

    /// Parseval: time-domain and frequency-domain energies agree.
    #[test]
    fn fft_parseval(sig in proptest::collection::vec(-10.0f64..10.0, 2..120)) {
        let n = sig.len() as f64;
        let (re, im) = fft(&sig, &vec![0.0; sig.len()]);
        let t_energy: f64 = sig.iter().map(|x| x * x).sum();
        let f_energy: f64 = re.iter().zip(&im).map(|(r, i)| r * r + i * i).sum::<f64>() / n;
        prop_assert!((t_energy - f_energy).abs() < 1e-6 * (1.0 + t_energy));
    }

    /// Power spectra are non-negative with n/2 + 1 bins.
    #[test]
    fn power_spectrum_shape(sig in proptest::collection::vec(-10.0f64..10.0, 1..100)) {
        let ps = power_spectrum(&sig);
        prop_assert_eq!(ps.len(), sig.len() / 2 + 1);
        for p in ps {
            prop_assert!(p >= -1e-12);
        }
    }
}

// ---------- tvm ----------

/// Strategy: a random straight-line arithmetic program that never
/// underflows the stack and always halts.
fn arb_program() -> impl Strategy<Value = Vec<tvm::Op>> {
    use tvm::Op;
    proptest::collection::vec((0u8..8, -100.0f64..100.0), 1..60).prop_map(|steps| {
        let mut ops = Vec::new();
        let mut depth = 0usize;
        for (kind, val) in steps {
            match kind {
                0..=2 => {
                    ops.push(Op::Push(val));
                    depth += 1;
                }
                3 if depth >= 2 => {
                    ops.push(Op::Add);
                    depth -= 1;
                }
                4 if depth >= 2 => {
                    ops.push(Op::Mul);
                    depth -= 1;
                }
                5 if depth >= 1 => {
                    ops.push(Op::Dup);
                    depth += 1;
                }
                6 if depth >= 1 => {
                    ops.push(Op::Neg);
                }
                7 if depth >= 1 => {
                    ops.push(Op::OutPush(0));
                    depth -= 1;
                }
                _ => {
                    ops.push(Op::Push(val));
                    depth += 1;
                }
            }
        }
        ops.push(Op::Halt);
        ops
    })
}

proptest! {
    /// Any generated module round-trips through the blob format and passes
    /// the verifier; execution is deterministic and within the sandbox.
    #[test]
    fn tvm_blob_round_trip_and_determinism(code in arb_program(), version in 0u32..1000) {
        let module = Module {
            name: "prop".into(),
            version,
            n_inputs: 0,
            n_outputs: 1,
            functions: vec![tvm::Function {
                name: "main".into(),
                n_locals: 0,
                code,
            }],
        };
        let blob = module.to_blob();
        prop_assert!(blob.integrity_ok());
        let back = Module::from_blob(&blob).unwrap();
        prop_assert_eq!(&back, &module);
        let policy = SandboxPolicy::standard();
        let a = tvm::execute(&module, &[], &policy).unwrap();
        let b = tvm::execute(&module, &[], &policy).unwrap();
        prop_assert_eq!(a.0, b.0);
        prop_assert!(a.1.instructions <= policy.max_instructions);
        prop_assert!(a.1.max_stack <= policy.max_stack);
    }

    /// Corrupting any single byte of a blob is detected by the integrity
    /// hash (or, if it hits the hash-excluded path, still never panics on
    /// parse).
    #[test]
    fn tvm_blob_corruption_detected(code in arb_program(), flip in any::<(usize, u8)>()) {
        let module = Module {
            name: "prop".into(),
            version: 1,
            n_inputs: 0,
            n_outputs: 1,
            functions: vec![tvm::Function { name: "main".into(), n_locals: 0, code }],
        };
        let mut blob = module.to_blob();
        let idx = flip.0 % blob.bytes.len();
        let mask = if flip.1 == 0 { 1 } else { flip.1 };
        blob.bytes[idx] ^= mask;
        prop_assert!(!blob.integrity_ok());
        let _ = Module::from_blob(&blob); // must not panic
    }
}

// ---------- module cache ----------

proptest! {
    /// Resident bytes never exceed capacity; stats are consistent.
    #[test]
    fn module_cache_respects_capacity(
        capacity in 50u64..2_000,
        ops in proptest::collection::vec((0u8..4, 0u8..6), 1..60),
    ) {
        let blob = |i: u8| {
            let mut src = format!(".module M{i} 1 0 0\n.func main 0\n");
            for _ in 0..(i as usize * 12) {
                src.push_str(" push 1\n pop\n");
            }
            src.push_str(" halt\n");
            tvm::asm::assemble(&src).unwrap().to_blob()
        };
        let mut cache = ModuleCache::new(capacity);
        for (op, which) in ops {
            let key = ModuleKey::new(&format!("M{which}"), 1);
            match op {
                0 | 1 => {
                    cache.insert(key, blob(which));
                }
                2 => {
                    cache.get(&key);
                }
                _ => {
                    cache.release(&key);
                }
            }
            prop_assert!(cache.resident_bytes() <= capacity);
            prop_assert!(cache.stats().peak_resident <= capacity);
        }
    }
}

// ---------- taskgraph xml ----------

/// Strategy: a random DAG over up to 8 tasks (edges only point forward).
fn arb_graph() -> impl Strategy<Value = TaskGraph> {
    (
        2usize..8,
        proptest::collection::vec((any::<u8>(), any::<u8>()), 0..16),
    )
        .prop_map(|(n, raw_edges)| {
            let mut g = TaskGraph::new("prop");
            // Task i has 1 input (except task 0, a source) and 2 outputs.
            let mut ids = Vec::new();
            for i in 0..n {
                let n_in = usize::from(i != 0);
                let id = g
                    .add_task_raw(
                        &format!("Type{}", i % 3),
                        &format!("task{i}"),
                        Params::from([("p".to_string(), format!("{i}"))]),
                        n_in,
                        2,
                    )
                    .unwrap();
                ids.push(id);
            }
            for (a, b) in raw_edges {
                let from = a as usize % n;
                let to = b as usize % n;
                if from < to {
                    // one driver per input: only connect if input 0 is free
                    let _ = g.connect(ids[from], (a as usize / n) % 2, ids[to], 0);
                }
            }
            g
        })
}

proptest! {
    /// Any constructible task graph round-trips through XML exactly.
    #[test]
    fn taskgraph_xml_round_trips(g in arb_graph()) {
        let xml = to_xml(&g);
        let back = from_xml(&xml).unwrap();
        prop_assert_eq!(back, g);
    }

    /// Serialization is deterministic.
    #[test]
    fn taskgraph_xml_deterministic(g in arb_graph()) {
        prop_assert_eq!(to_xml(&g), to_xml(&g));
    }

    /// Topological order, when it exists, respects every cable.
    #[test]
    fn topo_order_respects_cables(g in arb_graph()) {
        if let Ok(order) = g.topo_order() {
            let pos = |t| order.iter().position(|&x| x == t).unwrap();
            for c in &g.cables {
                prop_assert!(pos(c.from.0) < pos(c.to.0));
            }
        }
    }
}

// ---------- xml text layer ----------

proptest! {
    /// Attribute values with arbitrary printable content survive escaping.
    #[test]
    fn xml_attr_escaping(value in "[ -~]{0,40}") {
        let node = consumer_grid::taskgraph_xml::XmlNode::new("n").with_attr("v", &value);
        let text = node.to_string_pretty();
        let back = consumer_grid::taskgraph_xml::parse(&text).unwrap();
        prop_assert_eq!(back.attr("v"), Some(value.as_str()));
    }
}
