//! `triana` — command-line front end to the Consumer Grid engine.
//!
//! The paper's Triana Controller "can be based either on a command line or
//! a GUI user interface" (§3.2); this is the command line. Workflows are
//! XML task graphs in either the native dialect or WSFL.
//!
//! ```text
//! triana units                       list the toolbox
//! triana validate <file>             structural + type check
//! triana run <file> [-n ITERS] [-s] [--metrics FILE]
//!                                    execute and print collected outputs;
//!                                    optionally dump a metrics JSON snapshot
//! triana convert <file> <xml|wsfl|bpel|pnml>   dialect conversion
//! ```

use consumer_grid::core::data::TrianaData;
use consumer_grid::core::unit::Params;
use consumer_grid::core::{run_graph_obs, EngineConfig, TaskGraph};
use consumer_grid::obs::Obs;
use consumer_grid::taskgraph_xml::{
    from_bpel, from_wsfl, from_xml_obs, to_bpel, to_pnml, to_wsfl, to_xml,
};
use consumer_grid::toolbox::standard_registry;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  triana units\n  triana validate <file>\n  triana run <file> [-n ITERS] [-s] [--metrics FILE]\n  triana convert <file> <xml|wsfl|bpel|pnml>"
    );
    ExitCode::from(2)
}

fn load(path: &str, observer: &Obs) -> Result<TaskGraph, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    // Dialect by root element.
    if text.contains("<flowModel") {
        from_wsfl(&text).map_err(|e| format!("{path}: {e}"))
    } else if text.contains("<process") {
        from_bpel(&text).map_err(|e| format!("{path}: {e}"))
    } else {
        from_xml_obs(&text, observer).map_err(|e| format!("{path}: {e}"))
    }
}

fn describe(token: &TrianaData) -> String {
    match token {
        TrianaData::Scalar(x) => format!("Scalar({x})"),
        TrianaData::Text(s) => format!("Text({:?})", s),
        TrianaData::SampleSet { rate_hz, samples } => {
            format!("SampleSet[{} @ {} Hz]", samples.len(), rate_hz)
        }
        TrianaData::Spectrum { df_hz, power } => {
            let peak = power
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite power"))
                .map(|(k, p)| format!("peak bin {k} ({:.3} Hz) = {p:.4}", k as f64 * df_hz))
                .unwrap_or_default();
            format!("Spectrum[{} bins, {peak}]", power.len())
        }
        TrianaData::ComplexSpectrum { re, .. } => format!("ComplexSpectrum[{}]", re.len()),
        TrianaData::ImageFrame { width, height, .. } => format!("ImageFrame[{width}x{height}]"),
        TrianaData::Particles(p) => format!("Particles[{} @ t={}]", p.len(), p.time),
        TrianaData::Table(t) => format!("Table[{}x{}]", t.n_rows(), t.n_cols()),
        TrianaData::Bytes(b) => format!("Bytes[{}]", b.len()),
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first().map(String::as_str) else {
        return usage();
    };
    match cmd {
        "units" => {
            let reg = standard_registry();
            println!("{} toolbox units:", reg.len());
            for name in reg.names() {
                match reg.signature(name, &Params::new()) {
                    Ok((ins, outs)) => {
                        println!("  {name:<16} {} in, {} out", ins.len(), outs.len())
                    }
                    Err(_) => println!("  {name:<16} (parameter-dependent signature)"),
                }
            }
            ExitCode::SUCCESS
        }
        "validate" => {
            let Some(path) = args.get(1) else {
                return usage();
            };
            let g = match load(path, &Obs::disabled()) {
                Ok(g) => g,
                Err(e) => {
                    eprintln!("parse error: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let reg = standard_registry();
            if let Err(e) = g.validate() {
                eprintln!("invalid: {e}");
                return ExitCode::FAILURE;
            }
            if let Err(e) = g.typecheck(&reg) {
                eprintln!("type error: {e}");
                return ExitCode::FAILURE;
            }
            println!(
                "ok: {} tasks, {} cables, {} group(s)",
                g.tasks.len(),
                g.cables.len(),
                g.groups.len()
            );
            ExitCode::SUCCESS
        }
        "run" => {
            let Some(path) = args.get(1) else {
                return usage();
            };
            let mut iterations = 1usize;
            let mut threaded = true;
            let mut metrics_path: Option<String> = None;
            let mut i = 2;
            while i < args.len() {
                match args[i].as_str() {
                    "-n" => {
                        iterations = match args.get(i + 1).and_then(|v| v.parse().ok()) {
                            Some(n) => n,
                            None => return usage(),
                        };
                        i += 2;
                    }
                    "-s" => {
                        threaded = false;
                        i += 1;
                    }
                    "--metrics" => {
                        metrics_path = match args.get(i + 1) {
                            Some(p) => Some(p.clone()),
                            None => return usage(),
                        };
                        i += 2;
                    }
                    _ => return usage(),
                }
            }
            let observer = if metrics_path.is_some() {
                Obs::enabled()
            } else {
                Obs::disabled()
            };
            let g = match load(path, &observer) {
                Ok(g) => g,
                Err(e) => {
                    eprintln!("parse error: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let reg = standard_registry();
            let run = run_graph_obs(
                &g,
                &reg,
                &EngineConfig {
                    iterations,
                    threaded,
                },
                &observer,
            );
            if let Some(out) = metrics_path {
                let json = observer.snapshot_json().expect("observer is enabled");
                if let Err(e) = std::fs::write(&out, json) {
                    eprintln!("cannot write metrics to {out}: {e}");
                    return ExitCode::FAILURE;
                }
                eprintln!("metrics written to {out}");
            }
            match run {
                Ok(result) => {
                    for ((task, port), tokens) in &result.outputs {
                        let name = &g.tasks[task.0 as usize].name;
                        println!("{name}:{port}  ({} token(s))", tokens.len());
                        if let Some(last) = tokens.last() {
                            println!("  last: {}", describe(last));
                        }
                    }
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("execution failed: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        "convert" => {
            let (Some(path), Some(to)) = (args.get(1), args.get(2)) else {
                return usage();
            };
            let g = match load(path, &Obs::disabled()) {
                Ok(g) => g,
                Err(e) => {
                    eprintln!("parse error: {e}");
                    return ExitCode::FAILURE;
                }
            };
            match to.as_str() {
                "xml" => print!("{}", to_xml(&g)),
                "wsfl" => print!("{}", to_wsfl(&g)),
                "bpel" => print!("{}", to_bpel(&g)),
                "pnml" => print!("{}", to_pnml(&g)),
                _ => return usage(),
            }
            ExitCode::SUCCESS
        }
        _ => usage(),
    }
}
