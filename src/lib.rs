//! `consumer-grid` — a Rust reproduction of *Supporting Peer-2-Peer
//! Interactions in the Consumer Grid* (Taylor, Rana, Philp, Wang, Shields;
//! IPPS 2003).
//!
//! This facade re-exports the workspace crates under one roof:
//!
//! * [`core`] — the Triana workflow engine: typed dataflow graphs, group
//!   units, distribution policies, local and grid executors;
//! * [`toolbox`] — the built-in unit library (signal, galaxy SPH, inspiral
//!   matched filter, database services, TVM adapter);
//! * [`p2p`] — the JXTA-like overlay (advertisements, discovery, pipes);
//! * [`store`] — content-addressed, peer-assisted blob distribution
//!   (chunked swarm downloads with verify-before-cache);
//! * [`tvm`] — the sandboxed bytecode VM used as transferable code;
//! * [`netsim`] — the deterministic discrete-event network/host simulator;
//! * [`resources`] — virtual accounts, billing, trust policy, local
//!   resource managers, and the enrolment-cost models;
//! * [`trust`] — peer profiling, reputation, and the adaptive scheduling
//!   policies (learned runtimes, availability, Bayesian trust scores);
//! * [`taskgraph_xml`] — the XML task-graph dialect (Code Segment 1);
//! * [`obs`] — opt-in metrics registry and structured event tracing used
//!   by `triana run --metrics` and the bench harness.
//!
//! # Quickstart
//!
//! Build the paper's Figure 1 network and run it for 20 iterations:
//!
//! ```
//! use consumer_grid::core::{run_graph, EngineConfig, TaskGraph};
//! use consumer_grid::core::unit::Params;
//! use consumer_grid::toolbox::standard_registry;
//!
//! let reg = standard_registry();
//! let mut g = TaskGraph::new("Figure1");
//! let wave = g.add_task(&reg, "Wave", "wave", Params::new()).unwrap();
//! let noise = g.add_task(&reg, "GaussianNoise", "noise", Params::new()).unwrap();
//! let ps = g.add_task(&reg, "PowerSpectrum", "pspec", Params::new()).unwrap();
//! let acc = g.add_task(&reg, "AccumStat", "accum", Params::new()).unwrap();
//! g.connect(wave, 0, noise, 0).unwrap();
//! g.connect(noise, 0, ps, 0).unwrap();
//! g.connect(ps, 0, acc, 0).unwrap();
//! let result = run_graph(&g, &reg, &EngineConfig { iterations: 20, threaded: true }).unwrap();
//! assert_eq!(result.of(&g, "accum").len(), 20);
//! ```

pub use netsim;
pub use obs;
pub use p2p;
pub use resources;
pub use store;
pub use taskgraph_xml;
pub use toolbox;
pub use triana_core as core;
pub use trust;
pub use tvm;
